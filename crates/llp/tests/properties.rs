//! Property-based tests for the loop-level parallelism runtime.

use llp::schedule::Policy;
use llp::{chunk_bounds, doacross, doacross_into, doacross_slabs, partition_processors, Workers};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Static chunks tile the range exactly, in order, non-empty.
    #[test]
    fn chunks_tile(n in 0usize..5_000, p in 1usize..256) {
        let chunks = chunk_bounds(n, p);
        let mut expect = 0;
        for c in &chunks {
            prop_assert_eq!(c.start, expect);
            prop_assert!(c.end > c.start);
            expect = c.end;
        }
        prop_assert_eq!(expect, n);
        prop_assert!(chunks.len() <= p);
    }

    /// The largest static chunk is exactly ceil(n/p).
    #[test]
    fn max_chunk_is_ceil(n in 1usize..5_000, p in 1usize..256) {
        let max = chunk_bounds(n, p).iter().map(|c| c.len()).max().unwrap();
        prop_assert_eq!(max, n.div_ceil(p));
    }

    /// A `StaticSchedule` covers `0..n` disjointly, its largest chunk
    /// is exactly `ceil(n/p)`, and its ideal speedup follows from it,
    /// never exceeding `min(n, p)`.
    #[test]
    fn static_schedule_invariants(n in 0usize..5_000, p in 1usize..256) {
        let s = llp::StaticSchedule::new(n, p);
        let mut covered = 0;
        for c in &s.chunks {
            prop_assert_eq!(c.start, covered, "chunks must be disjoint and in order");
            prop_assert!(c.end > c.start);
            covered = c.end;
        }
        prop_assert_eq!(covered, n);
        prop_assert_eq!(s.max_chunk(), if n == 0 { 0 } else { n.div_ceil(p) });
        if n > 0 {
            let ideal = n as f64 / s.max_chunk() as f64;
            prop_assert!((s.ideal_speedup() - ideal).abs() < 1e-12);
            prop_assert!(s.ideal_speedup() <= n.min(p) as f64 + 1e-12);
        }
    }

    /// Degenerate inputs (`p = 0`, `n = 0`, `p > n`) are total: no
    /// panic, no zero-length chunks, and the non-degenerate invariants
    /// still hold on whatever is returned.
    #[test]
    fn degenerate_inputs_never_emit_empty_chunks(n in 0usize..5_000, p in 0usize..512) {
        let chunks = chunk_bounds(n, p);
        prop_assert!(chunks.iter().all(|c| c.end > c.start));
        if n == 0 || p == 0 {
            prop_assert!(chunks.is_empty());
        } else {
            // p > n yields exactly n unit chunks, never padding.
            prop_assert_eq!(chunks.len(), n.min(p));
        }
        let s = llp::StaticSchedule::new(n, p);
        prop_assert_eq!(&s.chunks, &chunks);
        prop_assert!(s.ideal_speedup() >= 1.0 - 1e-12);
        for policy in [
            Policy::Static,
            Policy::Dynamic { chunk: 0 },
            Policy::Guided { min_chunk: 0 },
        ] {
            let pc = policy.chunks(n, p);
            prop_assert!(pc.iter().all(|c| c.end > c.start), "{:?}", policy);
            let covered: usize = pc.iter().map(std::ops::Range::len).sum();
            prop_assert_eq!(covered, if p == 0 { 0 } else { n }, "{:?}", policy);
        }
    }

    /// Every scheduling policy tiles the range.
    #[test]
    fn policies_tile(n in 0usize..2_000, p in 1usize..64, chunk in 1usize..50) {
        for policy in [
            Policy::Static,
            Policy::Dynamic { chunk },
            Policy::Guided { min_chunk: chunk },
        ] {
            let chunks = policy.chunks(n, p);
            let mut expect = 0;
            for c in &chunks {
                prop_assert_eq!(c.start, expect, "{:?}", policy);
                expect = c.end;
            }
            prop_assert_eq!(expect, n, "{:?}", policy);
        }
    }

    /// No policy's makespan beats the perfect split or exceeds serial.
    #[test]
    fn makespan_bounds(n in 1usize..2_000, p in 1usize..64, chunk in 1usize..50) {
        for policy in [
            Policy::Static,
            Policy::Dynamic { chunk },
            Policy::Guided { min_chunk: chunk },
        ] {
            let m = policy.ideal_makespan(n, p);
            prop_assert!(m >= n.div_ceil(p), "{:?}", policy);
            prop_assert!(m <= n, "{:?}", policy);
        }
    }

    /// Guided chunks shrink: each hand-out is no larger than the one
    /// before it (the remaining/p rule is monotone in the remaining
    /// work), and no chunk undercuts the `min_chunk` floor except the
    /// final remainder.
    #[test]
    fn guided_chunks_never_grow(n in 1usize..5_000, p in 1usize..64, min_chunk in 1usize..50) {
        let policy = Policy::Guided { min_chunk };
        let chunks = policy.chunks(n, p);
        for pair in chunks.windows(2) {
            prop_assert!(
                pair[1].len() <= pair[0].len(),
                "guided chunk grew: {:?} then {:?} (n={}, p={}, min={})",
                pair[0], pair[1], n, p, min_chunk
            );
        }
        // Every chunk honors the floor; only the last may be the
        // smaller remainder.
        for (i, c) in chunks.iter().enumerate() {
            if i + 1 < chunks.len() {
                prop_assert!(c.len() >= min_chunk, "{:?} under floor {}", c, min_chunk);
            }
        }
    }

    /// Guided scheduling covers every iteration exactly once, in
    /// order — the coverage contract a self-scheduled doacross region
    /// relies on.
    #[test]
    fn guided_chunks_cover_exactly_once(n in 0usize..5_000, p in 1usize..64, min_chunk in 1usize..50) {
        let chunks = Policy::Guided { min_chunk }.chunks(n, p);
        let mut expect = 0;
        for c in &chunks {
            prop_assert_eq!(c.start, expect, "gap or overlap before {:?}", c);
            prop_assert!(c.end > c.start, "empty chunk {:?}", c);
            expect = c.end;
        }
        prop_assert_eq!(expect, n, "iterations uncovered");
        // The hand-out count is what `scheduling_events` charges for.
        prop_assert_eq!(chunks.len(), Policy::Guided { min_chunk }.scheduling_events(n, p));
    }

    /// Guided degenerate inputs are total: `p = 0` and `n = 0` yield
    /// no chunks (no work, no hand-outs), and `p > n` still tiles
    /// without padding or empty chunks.
    #[test]
    fn guided_degenerate_inputs(n in 0usize..300, min_chunk in 0usize..8) {
        let policy = Policy::Guided { min_chunk };
        prop_assert!(policy.chunks(n, 0).is_empty());
        prop_assert!(policy.chunks(0, 7).is_empty());
        prop_assert_eq!(policy.ideal_makespan(n, 0), n);
        // p far beyond n: coverage still exact, chunks never empty.
        let oversubscribed = policy.chunks(n, n + 64);
        prop_assert!(oversubscribed.iter().all(|c| c.end > c.start));
        let covered: usize = oversubscribed.iter().map(std::ops::Range::len).sum();
        prop_assert_eq!(covered, n);
    }

    /// Team partitioning sums to the total with each team >= 1, and is
    /// monotone in the weights (a heavier team never gets fewer).
    #[test]
    fn partition_properties(
        total_extra in 0usize..200,
        w in prop::collection::vec(1.0f64..1000.0, 1..8)
    ) {
        let total = w.len() + total_extra;
        let alloc = partition_processors(total, &w);
        prop_assert_eq!(alloc.iter().sum::<usize>(), total);
        prop_assert!(alloc.iter().all(|&a| a >= 1));
        // Weak monotonicity up to largest-remainder rounding (±1).
        for i in 0..w.len() {
            for j in 0..w.len() {
                if w[i] >= w[j] {
                    prop_assert!(alloc[i] + 1 >= alloc[j], "{:?} {:?}", w, alloc);
                }
            }
        }
    }
}

proptest! {
    // Thread-spawning cases are more expensive; fewer of them.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// doacross visits every index exactly once for arbitrary sizes and
    /// worker counts.
    #[test]
    fn doacross_visits_once(n in 0usize..400, p in 1usize..6) {
        let w = Workers::new(p);
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        doacross(&w, n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    /// doacross_into equals the serial map.
    #[test]
    fn doacross_into_equals_serial(n in 0usize..400, p in 1usize..6, seed in 0u64..1000) {
        let w = Workers::new(p);
        let f = |i: usize| (i as u64).wrapping_mul(seed ^ 0x9E37).wrapping_add(7);
        let serial: Vec<u64> = (0..n).map(f).collect();
        let mut par = vec![0u64; n];
        doacross_into(&w, &mut par, f);
        prop_assert_eq!(serial, par);
    }

    /// doacross_slabs writes each slab with its own index, disjointly.
    #[test]
    fn slabs_disjoint(slabs in 1usize..40, slab_len in 1usize..16, p in 1usize..6) {
        let w = Workers::new(p);
        let mut data = vec![u32::MAX; slabs * slab_len];
        doacross_slabs(&w, &mut data, slab_len, |s, slab| {
            for v in slab.iter_mut() {
                *v = s as u32;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            prop_assert_eq!(v as usize, i / slab_len);
        }
    }

    /// Self-scheduled execution equals the serial map for arbitrary
    /// sizes, worker counts, and chunk parameters, at one sync event.
    #[test]
    fn dynamic_policies_equal_serial(
        n in 0usize..400,
        p in 1usize..6,
        chunk in 1usize..20,
        guided in 0usize..2,
        seed in 0u64..1000,
    ) {
        let mut w = Workers::new(p);
        w.set_policy(if guided == 1 {
            Policy::Guided { min_chunk: chunk }
        } else {
            Policy::Dynamic { chunk }
        });
        let f = |i: usize| (i as u64).wrapping_mul(seed ^ 0x51ED).wrapping_add(3);
        let serial: Vec<u64> = (0..n).map(f).collect();
        let mut par = vec![0u64; n];
        doacross_into(&w, &mut par, f);
        prop_assert_eq!(serial, par);
        prop_assert_eq!(w.sync_event_count(), u64::from(n > 0));
    }
}
