//! Flight-recorder timeline determinism: what the rings must contain
//! after real doacross regions under each scheduling policy.
//!
//! Static scheduling is fully deterministic — chunk `i` runs on lane
//! `i`, so the test pins exact event counts and ownership. The dynamic
//! policies are racy by design, so the tests pin the *invariants*
//! instead: every chunk starts and ends exactly once somewhere, every
//! claimant lane ends with one claim miss and one barrier wait, and
//! claim waits count wins plus the final losing attempt.

use llp::obs::chrome::chrome_trace;
use llp::obs::timeline::DEFAULT_EVENT_CAPACITY;
use llp::obs::EventKind;
use llp::{AttributionReport, FlightRecorder, Policy, Timeline, Workers};

/// A team of `p` workers with a private, enabled flight recorder.
fn instrumented(p: usize, policy: Policy) -> Workers {
    let mut w = Workers::new(p);
    w.set_policy(policy);
    w.set_flight(FlightRecorder::enabled(p, DEFAULT_EVENT_CAPACITY));
    w
}

fn count(t: &Timeline, lane: usize, kind: EventKind) -> usize {
    t.lanes[lane]
        .events
        .iter()
        .filter(|e| e.kind == kind)
        .count()
}

#[test]
fn static_timeline_is_exact() {
    for p in [1usize, 2, 4] {
        let w = instrumented(p, Policy::Static);
        llp::doacross(&w, 103, |i| {
            std::hint::black_box(i);
        });
        let t = w.flight().take_timeline();

        assert_eq!(t.regions.len(), 1, "p={p}");
        let region = &t.regions[0];
        assert_eq!(region.seq, 0);
        assert_eq!(region.iterations, 103);
        assert_eq!(region.chunks, p, "static: one chunk per worker");
        assert_eq!(region.lanes, p);
        assert_eq!(region.workers, p);
        assert_eq!(region.policy, "static");
        assert!(region.end_ns >= region.start_ns);

        // Lane i owns chunk i: exactly one start, one end (both naming
        // chunk i), and the coordinator's barrier wait. Nothing else.
        for lane in 0..p {
            assert_eq!(count(&t, lane, EventKind::ChunkStart), 1, "p={p}");
            assert_eq!(count(&t, lane, EventKind::ChunkEnd), 1, "p={p}");
            assert_eq!(count(&t, lane, EventKind::BarrierWait), 1, "p={p}");
            assert_eq!(count(&t, lane, EventKind::ClaimWait), 0, "p={p}");
            assert_eq!(count(&t, lane, EventKind::ClaimMiss), 0, "p={p}");
            assert_eq!(t.lanes[lane].events.len(), 3, "p={p}");
            for e in &t.lanes[lane].events {
                assert_eq!(e.region, 0);
                if e.kind != EventKind::BarrierWait {
                    assert_eq!(e.arg as usize, lane, "chunk must equal lane");
                }
            }
            // Timestamps are monotone within the lane's ring.
            let ts: Vec<u64> = t.lanes[lane].events.iter().map(|e| e.ts_ns).collect();
            assert!(ts.windows(2).all(|w| w[0] <= w[1]), "p={p} ts={ts:?}");
        }
        assert_eq!(t.dropped_events(), 0);
    }
}

#[test]
fn static_regions_number_sequentially() {
    let w = instrumented(3, Policy::Static);
    for _ in 0..4 {
        llp::doacross(&w, 30, |i| {
            std::hint::black_box(i);
        });
    }
    let t = w.flight().take_timeline();
    let seqs: Vec<u64> = t.regions.iter().map(|r| r.seq).collect();
    assert_eq!(seqs, vec![0, 1, 2, 3]);
    // Each lane saw all four regions, in order.
    for lane in 0..3 {
        let regions: Vec<u64> = t.lanes[lane].events.iter().map(|e| e.region).collect();
        assert!(regions.windows(2).all(|w| w[0] <= w[1]), "{regions:?}");
        assert_eq!(count(&t, lane, EventKind::ChunkStart), 4);
    }
    // Draining resets the sequence counter.
    llp::doacross(&w, 10, |_| {});
    let again = w.flight().take_timeline();
    assert_eq!(again.regions[0].seq, 0);
}

#[test]
fn dynamic_and_guided_timelines_hold_invariants() {
    for policy in [
        Policy::Dynamic { chunk: 1 },
        Policy::Dynamic { chunk: 7 },
        Policy::Guided { min_chunk: 2 },
    ] {
        for p in [1usize, 2, 4] {
            let w = instrumented(p, policy);
            llp::doacross(&w, 103, |i| {
                std::hint::black_box(i);
            });
            let t = w.flight().take_timeline();

            assert_eq!(t.regions.len(), 1, "{policy:?} p={p}");
            let region = &t.regions[0];
            let chunk_count = region.chunks;
            assert!(chunk_count >= 1);
            let claimants = p.min(chunk_count);
            assert_eq!(region.lanes, claimants, "{policy:?} p={p}");
            assert_eq!(region.iterations, 103);

            // Every chunk index started and ended exactly once, on the
            // same lane it started on (chunks never split mid-flight).
            let mut started = vec![0usize; chunk_count];
            let mut ended = vec![0usize; chunk_count];
            for (lane, data) in t.lanes.iter().enumerate() {
                let mut open: Option<u64> = None;
                for e in &data.events {
                    match e.kind {
                        EventKind::ChunkStart => {
                            assert!(open.is_none(), "{policy:?} p={p} lane {lane}");
                            open = Some(e.arg);
                            started[usize::try_from(e.arg).unwrap()] += 1;
                        }
                        EventKind::ChunkEnd => {
                            assert_eq!(open.take(), Some(e.arg), "{policy:?} p={p}");
                            ended[usize::try_from(e.arg).unwrap()] += 1;
                        }
                        _ => {}
                    }
                }
                assert!(open.is_none(), "chunk left open on lane {lane}");
            }
            assert!(
                started.iter().all(|&c| c == 1),
                "{policy:?} p={p} {started:?}"
            );
            assert!(ended.iter().all(|&c| c == 1), "{policy:?} p={p} {ended:?}");

            // Per claimant lane: one losing claim (the miss), one
            // barrier wait, and a claim wait for every attempt —
            // wins + the final miss.
            let mut total_wins = 0usize;
            for lane in 0..claimants {
                let wins = count(&t, lane, EventKind::ChunkStart);
                total_wins += wins;
                assert_eq!(count(&t, lane, EventKind::ClaimMiss), 1, "{policy:?} p={p}");
                assert_eq!(
                    count(&t, lane, EventKind::BarrierWait),
                    1,
                    "{policy:?} p={p}"
                );
                assert_eq!(
                    count(&t, lane, EventKind::ClaimWait),
                    wins + 1,
                    "{policy:?} p={p} lane {lane}"
                );
            }
            assert_eq!(total_wins, chunk_count, "{policy:?} p={p}");
            // Non-claimant lanes stay silent.
            for lane in claimants..p {
                assert!(t.lanes[lane].events.is_empty(), "{policy:?} p={p}");
            }
        }
    }
}

#[test]
fn ring_overflow_drops_oldest_and_counts_them() {
    let mut w = Workers::new(2);
    w.set_policy(Policy::Dynamic { chunk: 1 });
    // Tiny rings: 256 chunks generate far more than 8 events per lane.
    w.set_flight(FlightRecorder::enabled(2, 8));
    llp::doacross(&w, 256, |i| {
        std::hint::black_box(i);
    });
    let t = w.flight().take_timeline();
    assert!(t.dropped_events() > 0, "tiny ring must overflow");
    for lane in &t.lanes {
        assert!(lane.events.len() <= 8);
        // Survivors are the newest events: monotone and region-tagged.
        let ts: Vec<u64> = lane.events.iter().map(|e| e.ts_ns).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }
}

#[test]
fn attribution_and_chrome_ride_on_real_timelines() {
    for policy in [Policy::Static, Policy::Guided { min_chunk: 4 }] {
        let w = instrumented(4, policy);
        for _ in 0..3 {
            llp::doacross(&w, 400, |i| {
                std::hint::black_box((i as f64).sqrt());
            });
        }
        let t = w.flight().take_timeline();
        let attr = AttributionReport::from_timeline(&t);
        assert_eq!(attr.regions.len(), 3, "{policy:?}");
        assert!(attr.compute_ns() > 0, "{policy:?}");
        let fractions = attr.compute_fraction() + attr.barrier_fraction() + attr.claim_fraction();
        assert!((fractions - 1.0).abs() < 1e-9, "{policy:?}");
        assert!(attr.imbalance() >= 1.0, "{policy:?}");

        let doc = chrome_trace(&t);
        let events = doc
            .get("traceEvents")
            .and_then(llp::obs::json::Json::as_array)
            .unwrap();
        assert!(events.len() > 4, "{policy:?}");
    }
}

#[test]
fn reduce_and_slabs_record_regions_too() {
    let w = instrumented(3, Policy::Static);
    let _ = llp::doacross_reduce(&w, 90, 0u64, |i| i as u64, |a, b| a + b);
    let mut data = vec![0u8; 12 * 4];
    llp::doacross_slabs(&w, &mut data, 4, |_, _| {});
    let t = w.flight().take_timeline();
    assert_eq!(t.regions.len(), 2);
    assert_eq!(t.regions[0].iterations, 90);
    assert_eq!(t.regions[1].iterations, 12);
}
