//! Asserts the disabled-recorder fast path really is free: opening and
//! closing spans, attaching regions, and annotating chunk stats through
//! a disabled [`llp::Recorder`] must perform **zero heap allocations**
//! (and, structurally, touches no lock — a disabled recorder holds no
//! mutex at all). This is the contract that lets the `RiscStepper` hot
//! path stay instrumented unconditionally.
//!
//! This file holds exactly one test: the allocation counter is a
//! process-wide global, so a concurrently running sibling test would
//! pollute the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_recorder_allocates_nothing() {
    use llp::{Recorder, SpanKind};

    let rec = Recorder::disabled();
    assert!(!rec.is_enabled());

    // Warm up whatever lazy state the harness keeps, then measure.
    for _ in 0..8 {
        let _span = rec.span("warmup", SpanKind::Kernel);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        let _step = rec.span("step", SpanKind::Step);
        let _kernel = rec.span("rhs", SpanKind::Kernel);
        rec.attach_region(4, 0.0);
        rec.annotate_last_region(70, &[]);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled recorder must not allocate on the span/region path"
    );

    // Sanity: the counter does observe the enabled path.
    let enabled = Recorder::enabled();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    {
        let _span = enabled.span("step", SpanKind::Step);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(after > before, "enabled path should allocate span nodes");
}
