//! Asserts the disabled-recorder fast path really is free: opening and
//! closing spans, attaching regions, and annotating chunk stats through
//! a disabled [`llp::Recorder`] must perform **zero heap allocations**
//! (and, structurally, touches no lock — a disabled recorder holds no
//! mutex at all). This is the contract that lets the `RiscStepper` hot
//! path stay instrumented unconditionally.
//!
//! This file holds exactly one test: the allocation counter is a
//! process-wide global, so a concurrently running sibling test would
//! pollute the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_recorder_allocates_nothing() {
    use llp::{Recorder, SpanKind};

    let rec = Recorder::disabled();
    assert!(!rec.is_enabled());

    // Warm up whatever lazy state the harness keeps, then measure.
    for _ in 0..8 {
        let _span = rec.span("warmup", SpanKind::Kernel);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        let _step = rec.span("step", SpanKind::Step);
        let _kernel = rec.span("rhs", SpanKind::Kernel);
        rec.attach_region(4, 0.0);
        rec.annotate_last_region(70, &[]);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled recorder must not allocate on the span/region path"
    );

    // Sanity: the counter does observe the enabled path.
    let enabled = Recorder::enabled();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    {
        let _span = enabled.span("step", SpanKind::Step);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(after > before, "enabled path should allocate span nodes");

    disabled_flight_recorder_allocates_nothing();
    disabled_series_allocates_nothing();
}

/// Same contract for the flight recorder: every recording call on a
/// disabled [`llp::FlightRecorder`] is a single `None` branch — no
/// allocation, no clock read. Called from the one `#[test]` above
/// (the counter is process-global, tests must not run concurrently).
fn disabled_flight_recorder_allocates_nothing() {
    // `LLP_FLIGHT=1` force-enables a real flight recorder on every
    // team, which allocates by design; the disabled-path contract is
    // unmeasurable in that configuration (CI runs it separately).
    if std::env::var("LLP_FLIGHT").is_ok() {
        eprintln!("LLP_FLIGHT set: skipping disabled-flight allocation assertions");
        return;
    }

    let flight = llp::FlightRecorder::disabled();
    assert!(!flight.is_enabled());

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        let session = flight.begin_region(4, 4, 100, 4, "static");
        assert!(session.is_none(), "disabled recorder must yield no session");
        if let Some(s) = session {
            s.finish();
        }
    }
    let timeline = flight.take_timeline();
    assert!(timeline.is_empty());
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled flight recorder must not allocate"
    );

    // And through the real doacross hot path: a team without a flight
    // recorder must allocate exactly as much per region as it did
    // before the flight recorder existed. Two identical rounds must
    // cost the same (the region machinery itself allocates; the
    // disabled-flight branches must add nothing that scales).
    let workers = llp::Workers::new(2);
    assert!(!workers.flight().is_enabled());
    let warm = || {
        for _ in 0..16 {
            llp::doacross(&workers, 64, |i| {
                std::hint::black_box(i);
            });
        }
    };
    warm(); // warm up thread-spawn and scheduler state
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    warm();
    let mid = ALLOCATIONS.load(Ordering::Relaxed);
    warm();
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        mid - before,
        after - mid,
        "disabled-flight doacross rounds must have identical allocation counts"
    );

    // Sanity: the enabled flight recorder does allocate (on drain).
    let enabled = llp::FlightRecorder::enabled(2, 64);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    if let Some(s) = enabled.begin_region(2, 2, 10, 2, "static") {
        s.chunk_start(0, 0);
        s.chunk_end(0, 0);
        s.finish();
    }
    let _timeline = enabled.take_timeline();
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(
        after > before,
        "enabled flight path should allocate on drain"
    );
}

/// Same contract for the windowed time series: every record/tick call
/// on a disabled [`llp::obs::Series`] is a single `None` branch — no
/// allocation, no lock, no clock read. The per-kernel list is passed
/// as a closure precisely so a disabled series never builds it; this
/// loop would fail if that closure were ever invoked. Called from the
/// one `#[test]` above (the counter is process-global).
fn disabled_series_allocates_nothing() {
    let series = llp::obs::Series::disabled();
    assert!(!series.is_enabled());

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        series.record_request(200, 1.5);
        series.record_cache(i % 2 == 0);
        series.record_solve(0.01, Some(0.2), || {
            vec![("rhs".to_string(), 0.01)] // must never run when disabled
        });
        series.record_zone_job(4);
        series.tick(i);
    }
    assert_eq!(series.windows_sealed(), 0);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled series must not allocate on the record/tick path"
    );

    // Sanity: the enabled series does allocate when sealing windows.
    let enabled = llp::obs::Series::enabled(10, 4);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    enabled.record_request(200, 1.5);
    enabled.record_solve(0.01, None, || vec![("rhs".to_string(), 0.01)]);
    enabled.tick(20);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(after > before, "enabled series should allocate on seal");
}
