//! Property tests for the FDTD kernels' exactness contract: every
//! `vector_width` variant equals the scalar reference *bitwise*, on
//! random fields, random extents that are not multiples of the lane
//! width, both boundary closures, and every worker count / schedule
//! combination. All comparisons are `==` on `f64` — one ULP of drift
//! is a failure.

use fdtd::grid::{Boundary, TezGrid};
use fdtd::kernels::{update_e, update_h};
use llp::{Policy, Workers};
use proptest::prelude::*;
use solver::SUPPORTED_WIDTHS;

/// Largest tested extent: big enough to cover full lane groups plus a
/// remainder at every supported width (8k + r for the widest lanes).
const MAX_EXTENT: usize = 21;

fn boundary() -> impl Strategy<Value = Boundary> {
    (0usize..2).prop_map(|i| {
        if i == 0 {
            Boundary::PecBox
        } else {
            Boundary::Periodic
        }
    })
}

fn policy() -> impl Strategy<Value = Policy> {
    (0usize..3, 1usize..4).prop_map(|(kind, c)| match kind {
        0 => Policy::Static,
        1 => Policy::Dynamic { chunk: c },
        _ => Policy::Guided { min_chunk: c },
    })
}

/// A grid with every point of every field drawn at random — no
/// physical smoothness, so cancellation-order bugs cannot hide.
fn seeded_grid(
    nx: usize,
    ny: usize,
    b: Boundary,
    e0: &[(f64, f64)],
    hz0: &[f64],
) -> TezGrid {
    let mut g = TezGrid::new(nx, ny, b, 0.5);
    for (p, &(ex, ey)) in g.e.iter_mut().zip(e0) {
        *p = [ex, ey];
    }
    for (h, &v) in g.hz.iter_mut().zip(hz0) {
        *h = v;
    }
    g
}

fn advance(g: &mut TezGrid, pool: &Workers, steps: usize, width: usize) {
    for _ in 0..steps {
        update_h(pool, g, width);
        update_e(pool, g, width);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every supported width reproduces the scalar run bit-for-bit —
    /// including extents with remainders at every width, and a
    /// nonsense width (which must fall back to scalar).
    #[test]
    fn every_width_is_bit_exact_vs_scalar(
        nx in 2usize..=MAX_EXTENT,
        ny in 2usize..=MAX_EXTENT,
        b in boundary(),
        steps in 1usize..5,
        e0 in prop::collection::vec((-2.0f64..2.0, -2.0f64..2.0), MAX_EXTENT * MAX_EXTENT),
        hz0 in prop::collection::vec(-2.0f64..2.0, MAX_EXTENT * MAX_EXTENT),
    ) {
        let pool = Workers::serial();
        let mut reference = seeded_grid(nx, ny, b, &e0, &hz0);
        advance(&mut reference, &pool, steps, 1);

        for w in SUPPORTED_WIDTHS.into_iter().chain([3]) {
            let mut g = seeded_grid(nx, ny, b, &e0, &hz0);
            advance(&mut g, &pool, steps, w);
            prop_assert_eq!(&g.e, &reference.e, "e, width {}", w);
            prop_assert_eq!(&g.hz, &reference.hz, "hz, width {}", w);
        }
    }

    /// Width, worker count, and schedule compose without changing a
    /// bit: a wide run on a scheduled multi-worker pool equals the
    /// serial scalar run exactly.
    #[test]
    fn widths_compose_with_workers_and_schedules(
        nx in 2usize..=13,
        ny in 2usize..=13,
        b in boundary(),
        workers in 2usize..5,
        pol in policy(),
        e0 in prop::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 13 * 13),
        hz0 in prop::collection::vec(-2.0f64..2.0, 13 * 13),
    ) {
        let mut reference = seeded_grid(nx, ny, b, &e0, &hz0);
        advance(&mut reference, &Workers::serial(), 3, 1);

        let pool = Workers::new(workers).with_policy(pol);
        for &w in &SUPPORTED_WIDTHS {
            let mut g = seeded_grid(nx, ny, b, &e0, &hz0);
            advance(&mut g, &pool, 3, w);
            prop_assert_eq!(&g.e, &reference.e, "e, width {} pol {:?}", w, pol);
            prop_assert_eq!(&g.hz, &reference.hz, "hz, width {} pol {:?}", w, pol);
        }
    }
}
