//! Analytic regression for the FDTD physics: a plane wave on a
//! periodic domain.
//!
//! The leapfrogged Yee scheme has *exact* discrete eigenmodes. For a
//! TEz wave traveling in x, uniform in y (`Ex ≡ 0`), with spatial
//! wavenumber `k` and Courant number `S`, let
//!
//! ```text
//! a = 2 S sin(k/2),        ω = 2 asin(a/2).
//! ```
//!
//! Then the mode `Ey(i, n) = cos(ωn)·cos(ki)`,
//! `Hz(i, n+1/2) = sin(ω(n+1/2))·sin(k(i+1/2))` satisfies the update
//! equations *identically*: substituting into the discrete curls gives
//! the two-term recurrences `H += a·E` and `E -= a·H`, whose exact
//! solution is that sampled sinusoid. So the stepper must reproduce it
//! to rounding — not truncation — error: the first test asserts
//! machine precision over 100 steps.
//!
//! The numerical-dispersion error lives entirely in `ω ≠ S·k`: per
//! step the phase slips by `≈ S·k³(1−S²)/24`, the textbook
//! second-order bound. The second test pins the discrete run against
//! the *continuum* solution and asserts the accumulated error over
//! 100 steps stays within that bound's envelope.

use fdtd::grid::{Boundary, TezGrid};
use fdtd::kernels::{update_e, update_h};
use llp::Workers;
use std::f64::consts::PI;

const NX: usize = 64;
const NY: usize = 4;
const S: f64 = 0.5;
const STEPS: usize = 100;

/// Seed the exact discrete eigenmode at `n = 0`: `Ey = cos(ki)` with
/// `Hz` a half step behind at `sin(−ω/2)·sin(k(i+1/2))`.
fn eigenmode_grid(k: f64, omega: f64) -> TezGrid {
    let mut g = TezGrid::new(NX, NY, Boundary::Periodic, S);
    for j in 0..NY {
        for i in 0..NX {
            g.e[j * NX + i][1] = (k * i as f64).cos();
            g.hz[j * NX + i] = (-omega / 2.0).sin() * (k * (i as f64 + 0.5)).sin();
        }
    }
    g
}

fn dispersion(k: f64) -> (f64, f64) {
    let a = 2.0 * S * (k / 2.0).sin();
    let omega = 2.0 * (a / 2.0).asin();
    (a, omega)
}

#[test]
fn discrete_eigenmode_propagates_to_machine_precision() {
    let k = 2.0 * PI / NX as f64;
    let (_, omega) = dispersion(k);
    let mut g = eigenmode_grid(k, omega);
    let pool = Workers::new(3);
    for _ in 0..STEPS {
        update_h(&pool, &mut g, 4);
        update_e(&pool, &mut g, 4);
    }
    let n = STEPS as f64;
    let mut worst_e = 0.0f64;
    let mut worst_h = 0.0f64;
    for j in 0..NY {
        for i in 0..NX {
            let ey = (omega * n).cos() * (k * i as f64).cos();
            let hz = (omega * (n - 0.5)).sin() * (k * (i as f64 + 0.5)).sin();
            worst_e = worst_e.max((g.e[j * NX + i][1] - ey).abs());
            worst_h = worst_h.max((g.hz[j * NX + i] - hz).abs());
            assert_eq!(g.e[j * NX + i][0], 0.0, "Ex must stay identically zero");
        }
    }
    // 100 steps of pure rounding accumulation: comfortably below 1e-10
    // (the analytic recurrence is satisfied exactly in real
    // arithmetic).
    assert!(worst_e < 1e-10, "Ey eigenmode error {worst_e:e}");
    assert!(worst_h < 1e-10, "Hz eigenmode error {worst_h:e}");
}

#[test]
fn numerical_dispersion_stays_within_the_textbook_bound() {
    let k = 2.0 * PI / NX as f64;
    let (_, omega) = dispersion(k);

    // The per-step phase slip of the discrete scheme vs the continuum.
    let slip = (omega - S * k).abs();
    let textbook = S * k.powi(3) * (1.0 - S * S) / 24.0;
    assert!(
        slip < 1.5 * textbook,
        "per-step dispersion {slip:e} exceeds bound {textbook:e}"
    );

    // And the accumulated field error over the full run stays inside
    // the phase-slip envelope (error amplitude ≤ accumulated phase
    // error for a unit-amplitude mode, plus margin).
    let mut g = eigenmode_grid(k, omega);
    let pool = Workers::new(2);
    for _ in 0..STEPS {
        update_h(&pool, &mut g, 2);
        update_e(&pool, &mut g, 2);
    }
    let n = STEPS as f64;
    let mut worst = 0.0f64;
    for i in 0..NX {
        let continuum = (S * k * n).cos() * (k * i as f64).cos();
        worst = worst.max((g.e[i][1] - continuum).abs());
    }
    let envelope = 1.5 * STEPS as f64 * textbook;
    assert!(
        worst < envelope,
        "field error vs continuum {worst:e} exceeds envelope {envelope:e}"
    );
    assert!(worst > 0.0, "the discrete and continuum solutions differ");
}
