//! A 2-D FDTD Maxwell solver (TEz polarization on a Yee grid) — the
//! second physics workload of the multi-physics serving stack.
//!
//! The paper's claim is that its loop-level parallelization machinery
//! is workload-agnostic: the doacross/scheduling laws were derived on
//! a CFD code but apply to any vectorizable nest. This crate is the
//! proof by construction. The finite-difference time-domain method
//! marches Maxwell's curl equations on a staggered (Yee) grid — for
//! the TEz polarization the fields are `Ex`, `Ey`, `Hz`, leapfrogged
//! in time — and its two update sweeps are exactly the paper's shape:
//! outer loops over grid rows carry the doacross parallelism, inner
//! loops over the contiguous x direction are vectorizable but short.
//!
//! The update kernels (`update_e`, `update_h`) run on the same
//! [`llp::Workers`] pool as F3D, dispatch per-kernel schedule
//! overrides through [`llp::ScheduleMap`] and SLP lane widths through
//! [`solver::WidthMap`], and emit the same span/flight-recorder
//! vocabulary — so the autotuner, drift watchdog, and Prometheus
//! telemetry apply unchanged.
//!
//! **Exactness policy**, inherited from the suite: every wide kernel
//! variant vectorizes across *independent outputs* (points of a row)
//! and never across a reduction, so results are bit-exact at every
//! width, worker count, and schedule — pinned by the `simd_props`
//! property suite. The physics is pinned separately by an analytic
//! plane-wave regression: the discrete scheme's exact eigenmode
//! propagates to machine precision, and its numerical dispersion
//! stays within the textbook bound.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod kernels;
pub mod service;

pub use grid::{Boundary, FieldChecksum, TezGrid};
pub use service::{FdtdCase, FdtdRun, FdtdSolver, MAX_SIZE, MAX_STEPS, MIN_SIZE};
