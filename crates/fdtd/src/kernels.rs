//! The two FDTD update sweeps as width-parameterized doacross
//! kernels.
//!
//! Each sweep parallelizes its *outer* loop over grid rows with
//! [`llp::doacross_slabs`] — one row is one slab, the paper's
//! loop-level discipline — and runs its inner x loop through a
//! const-generic lane kernel (`W ∈ {1, 2, 4, 8}` points per lane
//! group, `chunks_exact_mut` + scalar remainder) that rustc can lower
//! to SIMD.
//!
//! **Exactness.** The lane kernels vectorize across *independent
//! outputs* (points of a row) and never across a reduction: every
//! point executes the identical floating-point operation sequence at
//! every width, so results are bit-exact across `W` — the suite-wide
//! policy, pinned for these kernels by `tests/simd_props.rs`. They
//! are equally bit-exact across worker counts and schedules, because
//! a row's updates depend only on the *previous* half-step's other
//! field, never on a concurrently mutated row.
//!
//! The aliasing discipline makes that structurally true: `update_h`
//! mutates only `hz` while reading `e`, `update_e` mutates only `e`
//! while reading `hz` — each doacross body takes `&mut` to its own
//! row and shared references to the other array.

use crate::grid::{Boundary, TezGrid};
use llp::{doacross_slabs, Workers};
use solver::Variant;

/// Advance `Hz` one half-step: `∂Hz/∂t = ∂Ex/∂y − ∂Ey/∂x`, parallel
/// over rows at SLP lane width `width` (one of
/// [`solver::SUPPORTED_WIDTHS`]; anything else runs scalar).
pub fn update_h(workers: &Workers, grid: &mut TezGrid, width: usize) {
    let TezGrid {
        nx,
        ny,
        e,
        hz,
        boundary,
        courant,
    } = grid;
    let (nx, ny, s) = (*nx, *ny, *courant);
    let periodic = *boundary == Boundary::Periodic;
    let e: &[[f64; 2]] = e;
    let variant = Variant::from_width(width).unwrap_or_default();
    doacross_slabs(workers, hz.as_mut_slice(), nx, move |j, row| {
        // PEC: the top Hz row sits outside the staggered interior.
        if !periodic && j == ny - 1 {
            return;
        }
        let jp1 = if j + 1 == ny { 0 } else { j + 1 };
        let e_row = &e[j * nx..(j + 1) * nx];
        let e_up = &e[jp1 * nx..jp1 * nx + nx];
        let end = nx - 1;
        match variant {
            Variant::Scalar => h_row_lanes::<1>(row, e_row, e_up, s, end),
            Variant::Wide2 => h_row_lanes::<2>(row, e_row, e_up, s, end),
            Variant::Wide4 => h_row_lanes::<4>(row, e_row, e_up, s, end),
            Variant::Wide8 => h_row_lanes::<8>(row, e_row, e_up, s, end),
        }
        if periodic {
            // Wrap column: Ey neighbor comes from i = 0.
            let i = nx - 1;
            row[i] += s * ((e_up[i][0] - e_row[i][0]) - (e_row[0][1] - e_row[i][1]));
        }
    });
}

/// Advance `E` one half-step: `∂Ex/∂t = ∂Hz/∂y`, `∂Ey/∂t = −∂Hz/∂x`,
/// parallel over rows at SLP lane width `width`. PEC walls keep
/// tangential `E` clamped by never updating it.
pub fn update_e(workers: &Workers, grid: &mut TezGrid, width: usize) {
    let TezGrid {
        nx,
        ny,
        e,
        hz,
        boundary,
        courant,
    } = grid;
    let (nx, ny, s) = (*nx, *ny, *courant);
    let periodic = *boundary == Boundary::Periodic;
    let hz: &[f64] = hz;
    let variant = Variant::from_width(width).unwrap_or_default();
    doacross_slabs(workers, e.as_mut_slice(), nx, move |j, row| {
        let hz_row = &hz[j * nx..(j + 1) * nx];
        let jm1 = if j == 0 { ny - 1 } else { j - 1 };
        let hz_dn = &hz[jm1 * nx..jm1 * nx + nx];
        // Which components this row updates (see the grid's stagger
        // docs): under PEC, Ex is tangential to the y walls and Ey's
        // top row sits outside the box.
        let do_ex = periodic || (j >= 1 && j < ny - 1);
        let do_ey = periodic || j < ny - 1;
        if !do_ex && !do_ey {
            return;
        }
        // Scalar prologue at the x edge, lanes over the interior.
        let (start, end) = if periodic {
            // i = 0 wraps Ey's neighbor to nx-1; Ex has no x stencil.
            if do_ex {
                row[0][0] += s * (hz_row[0] - hz_dn[0]);
            }
            if do_ey {
                row[0][1] -= s * (hz_row[0] - hz_row[nx - 1]);
            }
            (1, nx)
        } else {
            // PEC: Ex also lives at i = 0 (interior in x); Ey starts
            // at i = 1 and both stop short of the right wall.
            if do_ex {
                row[0][0] += s * (hz_row[0] - hz_dn[0]);
            }
            (1, nx - 1)
        };
        match variant {
            Variant::Scalar => e_row_lanes::<1>(row, hz_row, hz_dn, s, start, end, do_ex, do_ey),
            Variant::Wide2 => e_row_lanes::<2>(row, hz_row, hz_dn, s, start, end, do_ex, do_ey),
            Variant::Wide4 => e_row_lanes::<4>(row, hz_row, hz_dn, s, start, end, do_ex, do_ey),
            Variant::Wide8 => e_row_lanes::<8>(row, hz_row, hz_dn, s, start, end, do_ex, do_ey),
        }
    });
}

/// `Hz` lane kernel over `i ∈ [0, end)`: `W` independent points per
/// group, identical per-point operation sequence at every `W`.
fn h_row_lanes<const W: usize>(
    hz: &mut [f64],
    e_row: &[[f64; 2]],
    e_up: &[[f64; 2]],
    s: f64,
    end: usize,
) {
    let span = &mut hz[..end];
    let mut chunks = span.chunks_exact_mut(W);
    let mut base = 0;
    for chunk in &mut chunks {
        for (l, out) in chunk.iter_mut().enumerate() {
            let i = base + l;
            *out += s * ((e_up[i][0] - e_row[i][0]) - (e_row[i + 1][1] - e_row[i][1]));
        }
        base += W;
    }
    for (off, out) in chunks.into_remainder().iter_mut().enumerate() {
        let i = base + off;
        *out += s * ((e_up[i][0] - e_row[i][0]) - (e_row[i + 1][1] - e_row[i][1]));
    }
}

/// `E` lane kernel over `i ∈ [start, end)`: both components of `W`
/// independent points per group, identical per-point operation
/// sequence at every `W`.
#[allow(clippy::too_many_arguments)]
fn e_row_lanes<const W: usize>(
    e: &mut [[f64; 2]],
    hz_row: &[f64],
    hz_dn: &[f64],
    s: f64,
    start: usize,
    end: usize,
    do_ex: bool,
    do_ey: bool,
) {
    let span = &mut e[start..end];
    let mut chunks = span.chunks_exact_mut(W);
    let mut base = start;
    for chunk in &mut chunks {
        for (l, p) in chunk.iter_mut().enumerate() {
            let i = base + l;
            if do_ex {
                p[0] += s * (hz_row[i] - hz_dn[i]);
            }
            if do_ey {
                p[1] -= s * (hz_row[i] - hz_row[i - 1]);
            }
        }
        base += W;
    }
    for (off, p) in chunks.into_remainder().iter_mut().enumerate() {
        let i = base + off;
        if do_ex {
            p[0] += s * (hz_row[i] - hz_dn[i]);
        }
        if do_ey {
            p[1] -= s * (hz_row[i] - hz_row[i - 1]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Boundary;

    fn pulsed(nx: usize, ny: usize, boundary: Boundary) -> TezGrid {
        let mut g = TezGrid::new(nx, ny, boundary, 0.5);
        g.inject_soft_source(10); // peak amplitude at the center
        g
    }

    #[test]
    fn pec_walls_keep_tangential_e_clamped() {
        let mut g = pulsed(12, 9, Boundary::PecBox);
        let w = Workers::serial();
        for _ in 0..40 {
            update_h(&w, &mut g, 1);
            update_e(&w, &mut g, 1);
        }
        let (nx, ny) = (g.nx, g.ny);
        for i in 0..nx {
            assert_eq!(g.e[i][0], 0.0, "Ex bottom wall, i={i}");
            assert_eq!(g.e[(ny - 1) * nx + i][0], 0.0, "Ex top wall, i={i}");
        }
        for j in 0..ny {
            assert_eq!(g.e[j * nx][1], 0.0, "Ey left wall, j={j}");
            assert_eq!(g.e[j * nx + nx - 1][1], 0.0, "Ey right wall, j={j}");
        }
        // The pulse spread: interior fields moved.
        assert!(g.energy() > 0.0);
    }

    #[test]
    fn pec_cavity_conserves_energy_after_the_source_dies() {
        let mut g = pulsed(16, 16, Boundary::PecBox);
        let w = Workers::serial();
        for _ in 0..30 {
            update_h(&w, &mut g, 1);
            update_e(&w, &mut g, 1);
        }
        let before = g.energy();
        for _ in 0..100 {
            update_h(&w, &mut g, 1);
            update_e(&w, &mut g, 1);
        }
        let after = g.energy();
        // Leapfrog energy is not exactly the continuum energy, but it
        // is bounded: a lossy (unstable) scheme would drift far.
        assert!(
            (after - before).abs() < 0.05 * before.max(1e-12),
            "energy drifted: {before} -> {after}"
        );
    }

    #[test]
    fn results_are_bit_exact_across_worker_counts_and_schedules() {
        let reference = {
            let mut g = pulsed(13, 7, Boundary::PecBox);
            let w = Workers::serial();
            for _ in 0..20 {
                update_h(&w, &mut g, 1);
                update_e(&w, &mut g, 1);
            }
            g
        };
        for workers in [2, 3] {
            for policy in [
                llp::Policy::Static,
                llp::Policy::Dynamic { chunk: 1 },
                llp::Policy::Guided { min_chunk: 2 },
            ] {
                let mut g = pulsed(13, 7, Boundary::PecBox);
                let w = Workers::new(workers).with_policy(policy);
                for _ in 0..20 {
                    update_h(&w, &mut g, 1);
                    update_e(&w, &mut g, 1);
                }
                assert_eq!(g.e, reference.e, "{workers} workers, {policy:?}");
                assert_eq!(g.hz, reference.hz, "{workers} workers, {policy:?}");
            }
        }
    }

    #[test]
    fn periodic_wrap_preserves_a_uniform_field() {
        // A spatially uniform Ey has zero curl everywhere under
        // periodic closure: nothing may move, including at the wrap
        // columns a PEC box would clamp.
        let mut g = TezGrid::new(9, 5, Boundary::Periodic, 0.5);
        for p in &mut g.e {
            p[1] = 3.0;
        }
        let w = Workers::serial();
        for _ in 0..10 {
            update_h(&w, &mut g, 1);
            update_e(&w, &mut g, 1);
        }
        assert!(g.hz.iter().all(|&h| h == 0.0));
        assert!(g.e.iter().all(|p| p[0] == 0.0 && p[1] == 3.0));
    }
}
