//! Bounded, validated FDTD solves for the serving layer — the same
//! contract [`f3d::service`] exposes, implemented over the generic
//! [`solver::Solver`] driver.

use crate::grid::{Boundary, FieldChecksum, TezGrid};
use crate::kernels;
use llp::{ObsReport, Policy, ScheduleMap, SpanKind, Timeline, Workers};
use solver::{validate_width, Solver, SolverInstance, SolverSpec, WidthMap};

/// Smallest served grid edge: below this the doacross rows cannot
/// cover even a modest worker count and the case tests nothing.
pub const MIN_SIZE: usize = 8;
/// Largest served grid edge (`size × size` points), keeping a maximal
/// case well under a second.
pub const MAX_SIZE: usize = 128;
/// Largest served step count.
pub const MAX_STEPS: usize = 64;
/// Largest served worker count (matches the F3D service cap).
pub const MAX_WORKERS: usize = 64;
/// Largest chunk / min-chunk parameter a schedule may carry.
pub const MAX_CHUNK: usize = 1024;

/// Courant number every served case runs at — safely inside the 2-D
/// stability bound `1/√2` and pinned so cached results never depend on
/// an ambient default.
pub const SERVICE_COURANT: f64 = 0.5;

/// A validated request for one bounded FDTD run: a `size × size` PEC
/// cavity excited by the deterministic center source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdtdCase {
    /// Grid edge in points ([`MIN_SIZE`]..=[`MAX_SIZE`]; the domain is
    /// `size × size`).
    pub size: usize,
    /// Number of leapfrog steps (1..=[`MAX_STEPS`]).
    pub steps: usize,
    /// Worker count to run with (1..=[`MAX_WORKERS`]).
    pub workers: usize,
    /// Chunk-scheduling policy for the two doacross sweeps
    /// ([`Policy::Static`] unless the request selects otherwise; chunk
    /// parameters are capped at [`MAX_CHUNK`]).
    pub schedule: Policy,
    /// SLP lane width the update kernels run at (one of
    /// [`solver::SUPPORTED_WIDTHS`]; 1 is the scalar reference).
    /// Bit-exact at every width — a pure performance knob.
    pub vector_width: usize,
}

impl FdtdCase {
    /// Check every field against its cap.
    ///
    /// # Errors
    /// Returns a message naming the offending field and its bound.
    pub fn validate(&self) -> Result<(), String> {
        if !(MIN_SIZE..=MAX_SIZE).contains(&self.size) {
            return Err(format!(
                "size must be in {MIN_SIZE}..={MAX_SIZE}, got {}",
                self.size
            ));
        }
        let check = |name: &str, v: usize, max: usize| {
            if (1..=max).contains(&v) {
                Ok(())
            } else {
                Err(format!("{name} must be in 1..={max}, got {v}"))
            }
        };
        check("steps", self.steps, MAX_STEPS)?;
        check("workers", self.workers, MAX_WORKERS)?;
        validate_width(self.vector_width)?;
        match self.schedule.chunk_param() {
            None => Ok(()),
            Some(chunk) => check("chunk", chunk, MAX_CHUNK),
        }
    }

    /// Stable label for this case, the obs-report case name — same
    /// suffix grammar as the F3D labels (`-dyn{chunk}` / `-gui{min}` /
    /// `-vw{width}`).
    #[must_use]
    pub fn label(&self) -> String {
        let base = format!("fdtd/n{}s{}w{}", self.size, self.steps, self.workers);
        let base = match self.schedule {
            Policy::Static => base,
            Policy::Dynamic { chunk } => format!("{base}-dyn{chunk}"),
            Policy::Guided { min_chunk } => format!("{base}-gui{min_chunk}"),
        };
        if self.vector_width > 1 {
            format!("{base}-vw{}", self.vector_width)
        } else {
            base
        }
    }

    /// Canonical content string: every semantic field in a fixed order
    /// with a fixed spelling (the schedule grammar shared with F3D), so
    /// equal cases canonicalize byte-identically whatever their JSON
    /// spelling, and `vector_width` always appears — explicitly, even
    /// at the scalar default.
    #[must_use]
    pub fn canonical_string(&self) -> String {
        let schedule = match self.schedule {
            Policy::Static => "static".to_string(),
            Policy::Dynamic { chunk } => format!("dynamic,chunk={chunk}"),
            Policy::Guided { min_chunk } => format!("guided,chunk={min_chunk}"),
        };
        format!(
            "size={};steps={};workers={};schedule={};vector_width={}",
            self.size, self.steps, self.workers, schedule, self.vector_width
        )
    }
}

impl SolverSpec for FdtdCase {
    fn validate(&self) -> Result<(), String> {
        FdtdCase::validate(self)
    }
    fn canonical_string(&self) -> String {
        FdtdCase::canonical_string(self)
    }
    fn label(&self) -> String {
        FdtdCase::label(self)
    }
    fn workers(&self) -> usize {
        self.workers
    }
    fn schedule(&self) -> Policy {
        self.schedule
    }
    fn steps(&self) -> usize {
        self.steps
    }
    fn vector_width(&self) -> usize {
        self.vector_width
    }
}

/// The FDTD Maxwell workload as a [`solver::Solver`]: the marker type
/// the generic run driver and the serving layer dispatch on.
pub struct FdtdSolver;

/// One allocated FDTD solve: the Yee-grid state, the per-kernel lane
/// widths, and the per-step energy history the output carries.
pub struct FdtdInstance {
    grid: TezGrid,
    w_e: usize,
    w_h: usize,
    energy: Vec<f64>,
}

/// The physics half of a completed FDTD run.
pub struct FdtdOutput {
    /// Total field energy after each step — the residual-history
    /// analogue (for a soft-sourced PEC cavity it rises during the
    /// pulse, then stays bounded).
    pub energy: Vec<f64>,
    /// Per-field checksums (`ex`, `ey`, `hz`) after the final step.
    pub checksums: Vec<FieldChecksum>,
}

impl Solver for FdtdSolver {
    type Config = FdtdCase;
    type Instance = FdtdInstance;

    fn kind() -> &'static str {
        "fdtd"
    }

    fn kernel_names() -> &'static [&'static str] {
        // The two parallel sweeps, sorted — the vocabulary the tune
        // database and the metrics labels use. The serial `source`
        // phase is deliberately absent, like F3D's `bc`.
        &["update_e", "update_h"]
    }

    fn memory_usage_estimate(case: &FdtdCase) -> u64 {
        // Three scalar fields of f64 per point (Ex, Ey, Hz) dominate;
        // the pool's per-worker footprint for these kernels is a few
        // control words, budgeted generously. Deterministic by
        // construction — the admission contract only needs it to scale
        // with the request.
        const FIELDS: u64 = 3;
        const F64: u64 = 8;
        const PER_WORKER: u64 = 4096;
        (case.size as u64) * (case.size as u64) * FIELDS * F64
            + (case.workers as u64) * PER_WORKER
    }

    fn create_instance(case: &FdtdCase, widths: &WidthMap) -> FdtdInstance {
        FdtdInstance {
            grid: TezGrid::new(case.size, case.size, Boundary::PecBox, SERVICE_COURANT),
            w_e: widths.get("update_e"),
            w_h: widths.get("update_h"),
            energy: Vec::with_capacity(case.steps),
        }
    }
}

impl SolverInstance for FdtdInstance {
    type Output = FdtdOutput;

    fn step(&mut self, pool: &Workers, step: usize, schedules: Option<&ScheduleMap>) {
        let rec = pool.recorder();
        // Kernels named in the schedule map run on a kernel_view
        // carrying their tuned worker count and policy; everything
        // else inherits the pool's configuration — the same dispatch
        // seam as the F3D stepper.
        let kernel_pool = |name: &str| match schedules.and_then(|m| m.get(name)) {
            Some((p, policy)) => pool.kernel_view(p, policy),
            None => pool.kernel_view(pool.processors(), pool.policy()),
        };
        {
            let _span = rec.span("source", SpanKind::Kernel);
            self.grid.inject_soft_source(step);
        }
        {
            let _span = rec.span("update_h", SpanKind::Kernel);
            let kw = kernel_pool("update_h");
            kernels::update_h(&kw, &mut self.grid, self.w_h);
        }
        {
            let _span = rec.span("update_e", SpanKind::Kernel);
            let kw = kernel_pool("update_e");
            kernels::update_e(&kw, &mut self.grid, self.w_e);
        }
        self.energy.push(self.grid.energy());
    }

    fn finish(self) -> FdtdOutput {
        FdtdOutput {
            energy: self.energy,
            checksums: self.grid.checksums(),
        }
    }
}

/// Everything one bounded FDTD run produces — the FDTD analogue of
/// [`f3d::service::ServiceRun`], carrying the identical observability
/// payload so the serving layer treats both uniformly.
#[derive(Debug, Clone)]
pub struct FdtdRun {
    /// The case that was run.
    pub case: FdtdCase,
    /// Total field energy after each step.
    pub energy: Vec<f64>,
    /// Per-field checksums (`ex`, `ey`, `hz`) after the final step.
    pub checksums: Vec<FieldChecksum>,
    /// Synchronization events this run added to the pool.
    pub sync_events: u64,
    /// Span report drained from the pool's recorder (empty when the
    /// pool does not record).
    pub report: ObsReport,
    /// Flight-recorder timeline drained from the pool (empty when the
    /// pool carries no flight recorder).
    pub timeline: Timeline,
}

/// Execute a validated case on `pool` and collect the results.
///
/// Deterministic in `(size, steps)`: the source is a fixed Gaussian
/// pulse and the kernels are worker-count-invariant, so checksum
/// equality across invocations is exact.
///
/// # Errors
/// Returns the [`FdtdCase::validate`] error for out-of-bounds cases.
pub fn run(case: &FdtdCase, pool: &Workers) -> Result<FdtdRun, String> {
    run_tuned(case, pool, None, None)
}

/// [`run`] with per-kernel schedule and SLP-width overrides — the
/// `"schedule": "auto"` path, fed from the tune database exactly as
/// for F3D. Both axes are bit-exact, so tuning never changes a result.
///
/// # Errors
/// Returns the [`FdtdCase::validate`] error for out-of-bounds cases.
pub fn run_tuned(
    case: &FdtdCase,
    pool: &Workers,
    schedules: Option<&ScheduleMap>,
    widths: Option<&WidthMap>,
) -> Result<FdtdRun, String> {
    let run = solver::run_instrumented::<FdtdSolver>(case, pool, schedules, widths)?;
    let out = run.output;
    Ok(FdtdRun {
        case: *case,
        energy: out.energy,
        checksums: out.checksums,
        sync_events: run.sync_events,
        report: run.report,
        timeline: run.timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_case() -> FdtdCase {
        FdtdCase {
            size: 16,
            steps: 8,
            workers: 2,
            schedule: Policy::Static,
            vector_width: 1,
        }
    }

    #[test]
    fn validation_enforces_caps() {
        assert!(base_case().validate().is_ok());
        for (case, needle) in [
            (
                FdtdCase {
                    size: MIN_SIZE - 1,
                    ..base_case()
                },
                "size",
            ),
            (
                FdtdCase {
                    size: MAX_SIZE + 1,
                    ..base_case()
                },
                "size",
            ),
            (
                FdtdCase {
                    steps: MAX_STEPS + 1,
                    ..base_case()
                },
                "steps",
            ),
            (
                FdtdCase {
                    workers: 0,
                    ..base_case()
                },
                "workers",
            ),
            (
                FdtdCase {
                    vector_width: 3,
                    ..base_case()
                },
                "vector_width",
            ),
            (
                FdtdCase {
                    schedule: Policy::Dynamic {
                        chunk: MAX_CHUNK + 1,
                    },
                    ..base_case()
                },
                "chunk",
            ),
        ] {
            let err = case.validate().unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle}");
        }
    }

    #[test]
    fn canonical_string_is_fixed_and_total() {
        let case = FdtdCase {
            size: 32,
            steps: 4,
            workers: 3,
            schedule: Policy::Guided { min_chunk: 2 },
            vector_width: 4,
        };
        assert_eq!(
            case.canonical_string(),
            "size=32;steps=4;workers=3;schedule=guided,chunk=2;vector_width=4"
        );
        // The scalar default still spells its width.
        assert!(base_case().canonical_string().ends_with("vector_width=1"));
        assert_eq!(case.label(), "fdtd/n32s4w3-gui2-vw4");
        assert_eq!(base_case().label(), "fdtd/n16s8w2");
    }

    #[test]
    fn runs_are_deterministic_and_billed() {
        let pool = Workers::recorded(2);
        let a = run(&base_case(), &pool).unwrap();
        let b = run(&base_case(), &pool).unwrap();
        assert_eq!(a.checksums, b.checksums);
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.energy.len(), base_case().steps);
        // Two doacross sweeps per step, each one synchronization.
        assert_eq!(a.sync_events, 2 * base_case().steps as u64);
        // The report carries all three spans under the case label.
        let spans: Vec<&str> = a.report.spans.iter().map(|s| s.name.as_str()).collect();
        for name in ["source", "update_h", "update_e"] {
            assert!(spans.contains(&name), "missing span {name}: {spans:?}");
        }
        assert_eq!(a.report.case, base_case().label());
    }

    #[test]
    fn tuned_overrides_never_change_results() {
        let pool = Workers::recorded(3);
        let reference = run(&base_case(), &pool).unwrap();

        let mut schedules = ScheduleMap::new();
        schedules.set("update_h", 2, Policy::Dynamic { chunk: 1 });
        schedules.set("update_e", 1, Policy::Static);
        let mut widths = WidthMap::new();
        widths.set("update_h", 8);
        widths.set("update_e", 2);
        let tuned = run_tuned(&base_case(), &pool, Some(&schedules), Some(&widths)).unwrap();
        assert_eq!(tuned.checksums, reference.checksums);
        assert_eq!(tuned.energy, reference.energy);

        // The case-level width knob is equally inert on results.
        let wide = FdtdCase {
            vector_width: 4,
            ..base_case()
        };
        let wide_run = run(&wide, &pool).unwrap();
        assert_eq!(wide_run.checksums, reference.checksums);
    }

    #[test]
    fn memory_estimate_scales_with_the_request() {
        let small = FdtdSolver::memory_usage_estimate(&base_case());
        let big = FdtdSolver::memory_usage_estimate(&FdtdCase {
            size: MAX_SIZE,
            ..base_case()
        });
        assert!(big > small);
        // 3 f64 fields on a size² grid, plus the per-worker term.
        assert_eq!(small, 16 * 16 * 3 * 8 + 2 * 4096);
    }
}
