//! The TEz Yee-grid state: field storage, boundaries, energy, and
//! checksums.
//!
//! Storage is row-major with x contiguous — the vectorizable inner
//! direction — and y as the slab (outer, doacross) direction, the
//! same layout discipline as the F3D pencils. The two electric
//! components are interleaved per point (`[ex, ey]`), so each update
//! sweep mutates exactly one array while reading the other: the
//! aliasing shape [`llp::doacross_slabs`] wants.
//!
//! Yee staggering is implicit in the indices: `Ex(i, j)` sits at
//! `(i, j+1/2)`… no — the convention used throughout is `Ex` at
//! `(i+1/2, j)`, `Ey` at `(i, j+1/2)`, `Hz` at `(i+1/2, j+1/2)`, with
//! every array allocated `nx × ny` and the unused staggered edge
//! entries simply never updated (PEC) or wrapped (periodic).

/// How the domain closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Boundary {
    /// Perfect electric conductor box: tangential `E` clamped to zero
    /// on the walls (the served configuration — a closed cavity).
    #[default]
    PecBox,
    /// Fully periodic domain — the analytic plane-wave test bed.
    Periodic,
}

/// One scalar field's order-independent summary, the serving layer's
/// "diff" primitive for FDTD solves: byte-equality of two checksum
/// sets certifies two runs produced identical fields.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldChecksum {
    /// Field name (`ex`, `ey`, `hz`).
    pub field: String,
    /// Sum of all values (fixed iteration order, so exact).
    pub sum: f64,
    /// Sum of squares.
    pub sum_sq: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl FieldChecksum {
    fn of(name: &str, values: impl Iterator<Item = f64>) -> Self {
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in values {
            sum += v;
            sum_sq += v * v;
            min = min.min(v);
            max = max.max(v);
        }
        FieldChecksum {
            field: name.to_string(),
            sum,
            sum_sq,
            min,
            max,
        }
    }
}

/// The full TEz state: `nx × ny` points of `[Ex, Ey]` plus `Hz`.
#[derive(Debug, Clone)]
pub struct TezGrid {
    /// Points in x (contiguous storage direction).
    pub nx: usize,
    /// Points in y (the doacross slab direction).
    pub ny: usize,
    /// Electric field, interleaved `[ex, ey]` per point, row-major.
    pub e: Vec<[f64; 2]>,
    /// Magnetic field `Hz`, row-major.
    pub hz: Vec<f64>,
    /// How the domain closes.
    pub boundary: Boundary,
    /// Courant number `c·Δt/Δx` (the scheme's single nondimensional
    /// knob; 2-D stability needs `≤ 1/√2`).
    pub courant: f64,
}

impl TezGrid {
    /// A zero-initialized `nx × ny` grid.
    ///
    /// # Panics
    /// Both extents must be at least 2.
    #[must_use]
    pub fn new(nx: usize, ny: usize, boundary: Boundary, courant: f64) -> Self {
        assert!(nx >= 2 && ny >= 2, "grid extents must be at least 2");
        TezGrid {
            nx,
            ny,
            e: vec![[0.0; 2]; nx * ny],
            hz: vec![0.0; nx * ny],
            boundary,
            courant,
        }
    }

    /// Inject the deterministic soft source: a Gaussian pulse in time
    /// added to `Hz` at the grid center. Serial by design (one point),
    /// like F3D's boundary-condition phase.
    pub fn inject_soft_source(&mut self, step: usize) {
        let center = (self.ny / 2) * self.nx + self.nx / 2;
        let t = step as f64;
        let (t0, w) = (10.0, 4.0);
        self.hz[center] += (-((t - t0) / w).powi(2)).exp();
    }

    /// Total electromagnetic field energy `Σ (Ex² + Ey² + Hz²) / 2`,
    /// accumulated in a fixed serial order so it is exactly
    /// reproducible — the residual-history analogue for FDTD solves.
    #[must_use]
    pub fn energy(&self) -> f64 {
        let mut acc = 0.0;
        for (e, h) in self.e.iter().zip(&self.hz) {
            acc += e[0] * e[0] + e[1] * e[1] + h * h;
        }
        acc / 2.0
    }

    /// Order-independent per-field checksums (`ex`, `ey`, `hz`).
    #[must_use]
    pub fn checksums(&self) -> Vec<FieldChecksum> {
        vec![
            FieldChecksum::of("ex", self.e.iter().map(|p| p[0])),
            FieldChecksum::of("ey", self.e.iter().map(|p| p[1])),
            FieldChecksum::of("hz", self.hz.iter().copied()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_grids_are_zero_energy() {
        let g = TezGrid::new(8, 4, Boundary::PecBox, 0.5);
        assert_eq!(g.energy(), 0.0);
        let sums = g.checksums();
        assert_eq!(sums.len(), 3);
        assert_eq!(sums[0].field, "ex");
        assert_eq!(sums[2].field, "hz");
        assert_eq!(sums[1].sum, 0.0);
    }

    #[test]
    fn source_injection_is_deterministic() {
        let mut a = TezGrid::new(8, 8, Boundary::PecBox, 0.5);
        let mut b = TezGrid::new(8, 8, Boundary::PecBox, 0.5);
        a.inject_soft_source(10);
        b.inject_soft_source(10);
        assert_eq!(a.hz, b.hz);
        // The pulse peaks at t0 = 10.
        assert_eq!(a.hz[(8 / 2) * 8 + 4], 1.0);
        assert!(a.energy() > 0.0);
    }
}
