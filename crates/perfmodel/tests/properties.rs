//! Property-based tests for the analytic models.

use perfmodel::overhead::{max_efficient_processors, min_work_for_overhead};
use perfmodel::stairstep::{ideal_speedup, max_units_per_processor, plateau_edges};
use perfmodel::work_per_sync::{GridNest, LoopLevel};
use perfmodel::{amdahl_speedup, serial_fraction_limit};
use proptest::prelude::*;

proptest! {
    /// The stair-step law never exceeds either bound: min(P, U).
    #[test]
    fn stairstep_bounded(units in 1u64..10_000, p in 1u32..1024) {
        let s = ideal_speedup(units, p);
        prop_assert!(s <= f64::from(p) + 1e-9);
        prop_assert!(s <= units as f64 + 1e-9);
        prop_assert!(s >= 1.0 - 1e-9);
    }

    /// Static assignment covers all units: P * ceil(U/P) >= U, and no
    /// over-assignment beyond one extra chunk per processor.
    #[test]
    fn stairstep_assignment_covers(units in 1u64..10_000, p in 1u32..1024) {
        let m = max_units_per_processor(units, p);
        prop_assert!(m * u64::from(p) >= units);
        // Removing a full round would under-cover.
        prop_assert!((m - 1) * u64::from(p) < units);
    }

    /// Speedup is monotone non-decreasing in the processor count.
    #[test]
    fn stairstep_monotone(units in 1u64..5_000, p in 1u32..512) {
        prop_assert!(ideal_speedup(units, p + 1) >= ideal_speedup(units, p) - 1e-12);
    }

    /// Plateau edges always start at P=1 and are strictly increasing.
    #[test]
    fn plateau_edges_strictly_increasing(units in 1u64..2_000, pmax in 1u32..256) {
        let edges = plateau_edges(units, pmax);
        prop_assert_eq!(edges[0], 1);
        for w in edges.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
    }

    /// The overhead bound is exactly the break-even point.
    #[test]
    fn overhead_bound_tight(sync in 1u64..10_000_000, p in 1u32..1024) {
        let w = min_work_for_overhead(sync, p, 0.01);
        // At the bound, overhead = sync / (w / p) <= 1%.
        let frac = sync as f64 / (w as f64 / f64::from(p));
        prop_assert!(frac <= 0.01 + 1e-12);
        // One cycle less violates the bound (when the division is exact).
        if w > 1 {
            let frac_less = sync as f64 / ((w - 1) as f64 / f64::from(p));
            prop_assert!(frac_less > 0.01 - 1e-9);
        }
    }

    /// max_efficient_processors is consistent with min_work_for_overhead.
    #[test]
    fn overhead_inverse_consistent(sync in 1u64..1_000_000, p in 1u32..512) {
        let w = min_work_for_overhead(sync, p, 0.01);
        let back = max_efficient_processors(w, sync, 0.01);
        prop_assert!(back >= p);
    }

    /// Amdahl speedup is bounded by both P and 1/s.
    #[test]
    fn amdahl_bounded(s in 0.0f64..=1.0, p in 1u32..1024) {
        let sp = amdahl_speedup(s, p);
        prop_assert!(sp <= f64::from(p) + 1e-9);
        if s > 0.0 {
            prop_assert!(sp <= 1.0 / s + 1e-9);
        }
        prop_assert!(sp >= 1.0 - 1e-9);
    }

    /// serial_fraction_limit round-trips through amdahl_speedup.
    #[test]
    fn amdahl_limit_roundtrip(target in 1.0f64..100.0, p in 2u32..512) {
        prop_assume!(target <= f64::from(p));
        let s = serial_fraction_limit(target, p).unwrap();
        let achieved = amdahl_speedup(s, p);
        prop_assert!((achieved - target).abs() < 1e-6,
            "target {} p {} s {} achieved {}", target, p, s, achieved);
    }

    /// Work-per-sync never exceeds the whole-nest work and the outer
    /// level always attains it.
    #[test]
    fn work_per_sync_bounds(
        outer in 1u64..200, middle in 1u64..200, inner in 1u64..200, w in 1u64..1000
    ) {
        let nest = GridNest::ThreeD { outer, middle, inner };
        let total = nest.points() * w;
        for lv in [LoopLevel::Inner, LoopLevel::Middle, LoopLevel::Outer,
                   LoopLevel::BoundaryInner, LoopLevel::BoundaryOuter] {
            if let Some(pps) = nest.points_per_sync(lv) {
                prop_assert!(pps * w <= total);
            }
        }
        prop_assert_eq!(nest.points_per_sync(LoopLevel::Outer), Some(nest.points()));
    }

    /// Available parallelism at each level equals the loop extent.
    #[test]
    fn available_parallelism_extent(
        outer in 1u64..300, middle in 1u64..300, inner in 1u64..300
    ) {
        let nest = GridNest::ThreeD { outer, middle, inner };
        prop_assert_eq!(nest.available_parallelism(LoopLevel::Outer), Some(outer));
        prop_assert_eq!(nest.available_parallelism(LoopLevel::Middle), Some(middle));
        prop_assert_eq!(nest.available_parallelism(LoopLevel::Inner), Some(inner));
    }
}
