//! Analytic performance models from ARL-TR-2556 ("Using Loop-Level
//! Parallelism to Parallelize Vectorizable Programs").
//!
//! This crate contains the closed-form models the paper develops in
//! Sections 3 and 4 and uses throughout its evaluation:
//!
//! * [`overhead`] — the synchronization-overhead bound behind Table 1:
//!   how much work a parallelized loop must contain before the cost of
//!   exiting the parallel region becomes negligible.
//! * [`work_per_sync`] — the work-per-synchronization-event accounting
//!   behind Table 2: how much work each loop level of a 1-D/2-D/3-D grid
//!   nest makes available between barriers.
//! * [`stairstep`] — the stair-step speedup law behind Table 3 and
//!   Figure 1: the ideal speedup of a loop with a finite number of
//!   parallel units under static scheduling.
//! * [`batch`] — validated, non-panicking batch evaluation of the three
//!   models above, for callers relaying untrusted queries (the `llpd`
//!   HTTP service).
//! * [`amdahl`] — Amdahl's-law helpers used when boundary-condition
//!   routines are deliberately left serial.
//! * [`metrics`] — the reporting metrics the paper argues for
//!   (time steps/hour, delivered MFLOPS) and against (raw speedup).
//!
//! Everything here is pure arithmetic: no threads, no I/O. The
//! discrete-event machine model in the `smpsim` crate and the runtime
//! library in `llp` both build on these primitives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amdahl;
pub mod batch;
pub mod metrics;
pub mod overhead;
pub mod stairstep;
pub mod work_per_sync;

pub use amdahl::{amdahl_speedup, serial_fraction_limit};
pub use batch::{
    overhead_batch, stairstep_batch, work_per_sync_batch, OverheadPoint, StairstepPoint,
    WorkPerSyncPoint,
};
pub use metrics::{delivered_mflops, time_steps_per_hour, Efficiency};
pub use overhead::{
    max_efficient_processors, min_work_for_overhead, OverheadBound, PAPER_OVERHEAD_FRACTION,
};
pub use stairstep::{ideal_speedup, max_units_per_processor, plateau_edges, speedup_curve};
pub use work_per_sync::{GridNest, LoopLevel, WorkPerSync};
