//! Synchronization-overhead bounds (paper Section 3, Table 1).
//!
//! When a loop is parallelized with loop-level parallelism, the main cost
//! of parallelization is the synchronization cost paid when exiting the
//! parallel region. The paper observes that on scalable shared-memory
//! systems this cost ranges from roughly 2,000 to 1,000,000 cycles
//! depending on machine design and load, and argues that it should be
//! kept below 1 % of the (parallel) runtime of the loop.
//!
//! With `W` cycles of single-processor work in the loop, `P` processors,
//! and a synchronization cost of `S` cycles, the parallel runtime is
//! approximately `W / P + S` and the efficiency condition
//! `S <= f * (W / P)` (with `f = 0.01` for 1 %) rearranges to
//!
//! ```text
//! W >= P * S / f
//! ```
//!
//! which for `f = 0.01` is the `100 * P * S` rule that generates every
//! entry of Table 1.

/// The fraction of runtime the paper is willing to spend on
/// synchronization ("it is preferable to keep these costs below 1% of
/// the runtime", Section 3).
pub const PAPER_OVERHEAD_FRACTION: f64 = 0.01;

/// The hypothetical synchronization costs used for the columns of
/// Table 1, in cycles.
pub const TABLE1_SYNC_COSTS: [u64; 3] = [10_000, 100_000, 1_000_000];

/// The processor counts used for the rows of Table 1.
pub const TABLE1_PROCESSOR_COUNTS: [u32; 4] = [2, 8, 32, 128];

/// A synchronization-overhead bound: the tolerable overhead fraction
/// together with the machine's synchronization cost.
///
/// This is the policy object consumed by `llp`'s incremental
/// parallelization advisor: a loop is worth parallelizing on `P`
/// processors only if its serial work exceeds
/// [`OverheadBound::min_work`]`(P)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadBound {
    /// Synchronization cost per parallel region exit, in cycles.
    pub sync_cost_cycles: u64,
    /// Maximum tolerable fraction of runtime spent synchronizing
    /// (the paper uses 0.01).
    pub max_overhead_fraction: f64,
}

impl OverheadBound {
    /// Bound with the paper's 1 % overhead target.
    #[must_use]
    pub fn paper_default(sync_cost_cycles: u64) -> Self {
        Self {
            sync_cost_cycles,
            max_overhead_fraction: PAPER_OVERHEAD_FRACTION,
        }
    }

    /// Minimum single-processor work (in cycles) a loop must contain for
    /// the synchronization cost to stay within the overhead budget when
    /// run on `processors` processors.
    ///
    /// # Panics
    /// Panics if `processors == 0` or the overhead fraction is not in
    /// `(0, 1]`.
    #[must_use]
    pub fn min_work(&self, processors: u32) -> u64 {
        min_work_for_overhead(
            self.sync_cost_cycles,
            processors,
            self.max_overhead_fraction,
        )
    }

    /// Whether a loop with `work_cycles` of serial work meets the
    /// overhead budget on `processors` processors.
    #[must_use]
    pub fn is_efficient(&self, work_cycles: u64, processors: u32) -> bool {
        work_cycles >= self.min_work(processors)
    }

    /// The actual overhead fraction incurred by a loop with
    /// `work_cycles` of serial work on `processors` processors:
    /// `S / (W / P)`.
    #[must_use]
    pub fn overhead_fraction(&self, work_cycles: u64, processors: u32) -> f64 {
        assert!(processors > 0, "processor count must be positive");
        if work_cycles == 0 {
            return f64::INFINITY;
        }
        self.sync_cost_cycles as f64 / (work_cycles as f64 / f64::from(processors))
    }

    /// The largest processor count a loop with `work_cycles` of serial
    /// work can use within this bound's budget — the Table 1 rule
    /// inverted, as an autotuner needs it to prune candidate worker
    /// counts ([`max_efficient_processors`] with this bound's `S` and
    /// `f`). Returns 0 if even one processor cannot stay in budget.
    #[must_use]
    pub fn max_processors(&self, work_cycles: u64) -> u32 {
        max_efficient_processors(
            work_cycles,
            self.sync_cost_cycles,
            self.max_overhead_fraction,
        )
    }
}

/// Minimum single-processor work (in cycles) required for a parallelized
/// loop to keep synchronization below `max_fraction` of its parallel
/// runtime: `W >= P * S / f`.
///
/// With `max_fraction = 0.01` this reproduces Table 1 exactly:
///
/// ```
/// use perfmodel::min_work_for_overhead;
/// assert_eq!(min_work_for_overhead(10_000, 2, 0.01), 2_000_000);
/// assert_eq!(min_work_for_overhead(1_000_000, 128, 0.01), 12_800_000_000);
/// ```
///
/// # Panics
/// Panics if `processors == 0` or `max_fraction` is not in `(0, 1]`.
#[must_use]
pub fn min_work_for_overhead(sync_cost_cycles: u64, processors: u32, max_fraction: f64) -> u64 {
    assert!(processors > 0, "processor count must be positive");
    assert!(
        max_fraction > 0.0 && max_fraction <= 1.0,
        "overhead fraction must be in (0, 1], got {max_fraction}"
    );
    let w = u64::from(processors) as f64 * sync_cost_cycles as f64 / max_fraction;
    // The model values divide exactly for the paper's parameters; ceil so
    // the bound is conservative for fractions that do not.
    w.ceil() as u64
}

/// The largest processor count on which a loop with `work_cycles` of
/// serial work can run while keeping synchronization below
/// `max_fraction` of runtime. Returns 0 if even one processor cannot
/// (i.e. `work_cycles` is smaller than `S / f`).
#[must_use]
pub fn max_efficient_processors(work_cycles: u64, sync_cost_cycles: u64, max_fraction: f64) -> u32 {
    assert!(
        max_fraction > 0.0 && max_fraction <= 1.0,
        "overhead fraction must be in (0, 1], got {max_fraction}"
    );
    if sync_cost_cycles == 0 {
        return u32::MAX;
    }
    let p = work_cycles as f64 * max_fraction / sync_cost_cycles as f64;
    if p >= f64::from(u32::MAX) {
        u32::MAX
    } else {
        p.floor() as u32
    }
}

/// Generate the full Table 1 of the paper: for each processor count and
/// each hypothetical synchronization cost, the minimum amount of work
/// (in cycles) per parallelized loop required for efficient execution.
///
/// Rows are processor counts in [`TABLE1_PROCESSOR_COUNTS`] order;
/// columns are sync costs in [`TABLE1_SYNC_COSTS`] order.
#[must_use]
pub fn table1() -> Vec<(u32, Vec<u64>)> {
    TABLE1_PROCESSOR_COUNTS
        .iter()
        .map(|&p| {
            let row = TABLE1_SYNC_COSTS
                .iter()
                .map(|&s| min_work_for_overhead(s, p, PAPER_OVERHEAD_FRACTION))
                .collect();
            (p, row)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every value printed in Table 1 of the paper.
    const PAPER_TABLE1: [(u32, [u64; 3]); 4] = [
        (2, [2_000_000, 20_000_000, 200_000_000]),
        (8, [8_000_000, 80_000_000, 800_000_000]),
        (32, [32_000_000, 320_000_000, 3_200_000_000]),
        (128, [128_000_000, 1_280_000_000, 12_800_000_000]),
    ];

    #[test]
    fn table1_matches_paper_exactly() {
        let got = table1();
        assert_eq!(got.len(), PAPER_TABLE1.len());
        for ((gp, grow), (pp, prow)) in got.iter().zip(PAPER_TABLE1.iter()) {
            assert_eq!(gp, pp);
            assert_eq!(grow.as_slice(), prow.as_slice(), "row for P={pp}");
        }
    }

    #[test]
    fn min_work_scales_linearly_in_processors() {
        let base = min_work_for_overhead(10_000, 1, 0.01);
        for p in [2u32, 3, 7, 64, 128] {
            assert_eq!(min_work_for_overhead(10_000, p, 0.01), base * u64::from(p));
        }
    }

    #[test]
    fn min_work_scales_inversely_in_fraction() {
        // Tolerating 2% halves the required work relative to 1%.
        assert_eq!(
            min_work_for_overhead(10_000, 8, 0.02) * 2,
            min_work_for_overhead(10_000, 8, 0.01)
        );
    }

    #[test]
    fn bound_is_tight() {
        let b = OverheadBound::paper_default(10_000);
        let w = b.min_work(8);
        assert!(b.is_efficient(w, 8));
        assert!(!b.is_efficient(w - 1, 8));
        // At exactly the bound the overhead is exactly the budget.
        let f = b.overhead_fraction(w, 8);
        assert!((f - 0.01).abs() < 1e-12, "got {f}");
    }

    #[test]
    fn max_efficient_processors_inverts_min_work() {
        for &s in &TABLE1_SYNC_COSTS {
            for &p in &TABLE1_PROCESSOR_COUNTS {
                let w = min_work_for_overhead(s, p, 0.01);
                assert_eq!(max_efficient_processors(w, s, 0.01), p);
                assert_eq!(max_efficient_processors(w - 1, s, 0.01), p - 1);
                // The bound's method form agrees with the free function.
                assert_eq!(OverheadBound::paper_default(s).max_processors(w), p);
            }
        }
    }

    #[test]
    fn zero_work_has_infinite_overhead() {
        let b = OverheadBound::paper_default(2_000);
        assert!(b.overhead_fraction(0, 4).is_infinite());
        assert!(!b.is_efficient(0, 1));
    }

    #[test]
    fn zero_sync_cost_is_always_efficient() {
        assert_eq!(max_efficient_processors(1, 0, 0.01), u32::MAX);
        let b = OverheadBound::paper_default(0);
        assert!(b.is_efficient(1, 128));
    }

    #[test]
    #[should_panic(expected = "processor count must be positive")]
    fn zero_processors_panics() {
        let _ = min_work_for_overhead(10_000, 0, 0.01);
    }

    #[test]
    #[should_panic(expected = "overhead fraction must be in (0, 1]")]
    fn bad_fraction_panics() {
        let _ = min_work_for_overhead(10_000, 2, 0.0);
    }
}
