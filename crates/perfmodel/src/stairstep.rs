//! The stair-step speedup law (paper Section 4, Table 3, Figure 1).
//!
//! Loop-level parallelism frequently parallelizes loops with between 10
//! and 1,000 iterations — the "available parallelism" `U`. Under static
//! scheduling, some processor must execute `ceil(U / P)` of those units,
//! so the ideal speedup of the loop on `P` processors is
//!
//! ```text
//! speedup(P; U) = U / ceil(U / P)
//! ```
//!
//! When `P` is within roughly a factor of 10 of `U` this curve is not
//! linear but a distinct stair step: it is flat wherever increasing `P`
//! does not decrease `ceil(U / P)`, and jumps at `P = ceil(U / n)` for
//! integer `n` — i.e. near `U/5, U/4, U/3, U/2, U` as the paper notes in
//! Section 5.

/// The number of units of parallelism used in Table 3.
pub const TABLE3_UNITS: u32 = 15;

/// The unit counts plotted in Figure 1.
pub const FIG1_UNIT_COUNTS: [u32; 5] = [5, 15, 25, 35, 45];

/// The maximum processor count plotted in Figure 1.
pub const FIG1_MAX_PROCESSORS: u32 = 50;

/// The largest number of parallelism units statically assigned to any
/// single processor: `ceil(units / processors)`.
///
/// # Panics
/// Panics if `processors == 0` or `units == 0`.
#[must_use]
pub fn max_units_per_processor(units: u64, processors: u32) -> u64 {
    assert!(processors > 0, "processor count must be positive");
    assert!(units > 0, "unit count must be positive");
    units.div_ceil(u64::from(processors))
}

/// Ideal (overhead-free) speedup of a loop with `units` units of
/// parallelism on `processors` processors under static scheduling:
/// `units / ceil(units / processors)`.
///
/// For `units = 15` this reproduces Table 3 of the paper:
///
/// ```
/// use perfmodel::ideal_speedup;
/// assert_eq!(ideal_speedup(15, 4), 3.75);
/// assert_eq!(ideal_speedup(15, 8), 7.5);
/// // ...and the plateau: 8 through 14 processors all give 7.5.
/// assert_eq!(ideal_speedup(15, 14), 7.5);
/// assert_eq!(ideal_speedup(15, 15), 15.0);
/// ```
#[must_use]
pub fn ideal_speedup(units: u64, processors: u32) -> f64 {
    units as f64 / max_units_per_processor(units, processors) as f64
}

/// The speedup curve for `processors = 1..=max_processors`, as used to
/// draw Figure 1.
#[must_use]
pub fn speedup_curve(units: u64, max_processors: u32) -> Vec<f64> {
    (1..=max_processors)
        .map(|p| ideal_speedup(units, p))
        .collect()
}

/// The processor counts at which the stair-step curve jumps (the left
/// edge of each plateau): the smallest `P` for each distinct value of
/// `ceil(units / P)`, in increasing order of `P`.
///
/// For `units = 70` this includes 35 (ceil = 2) and 70 (ceil = 1) —
/// explaining the paper's observed flat performance between 48 and 64
/// processors for the 1-million-point case.
#[must_use]
pub fn plateau_edges(units: u64, max_processors: u32) -> Vec<u32> {
    let mut edges = Vec::new();
    let mut last = None;
    for p in 1..=max_processors {
        let m = max_units_per_processor(units, p);
        if last != Some(m) {
            edges.push(p);
            last = Some(m);
        }
    }
    edges
}

/// True if the curve is flat (no speedup change) over the closed
/// processor-count interval `[lo, hi]`.
#[must_use]
pub fn is_plateau(units: u64, lo: u32, hi: u32) -> bool {
    assert!(lo <= hi, "interval must be ordered");
    max_units_per_processor(units, lo) == max_units_per_processor(units, hi)
}

/// Generate Table 3: for each processor count 1..=15, the maximum units
/// assigned to a single processor and the predicted speedup, with a loop
/// of [`TABLE3_UNITS`] units.
#[must_use]
pub fn table3() -> Vec<(u32, u64, f64)> {
    (1..=TABLE3_UNITS)
        .map(|p| {
            let m = max_units_per_processor(u64::from(TABLE3_UNITS), p);
            (p, m, ideal_speedup(u64::from(TABLE3_UNITS), p))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper() {
        // Paper Table 3 (units = 15): rows grouped by plateau.
        let expect = [
            (1u32, 15u64, 1.0f64),
            (2, 8, 15.0 / 8.0),
            (3, 5, 3.0),
            (4, 4, 3.75),
            (5, 3, 5.0),
            (6, 3, 5.0),
            (7, 3, 5.0),
            (8, 2, 7.5),
            (14, 2, 7.5),
            (15, 1, 15.0),
        ];
        for (p, m, s) in expect {
            assert_eq!(max_units_per_processor(15, p), m, "P={p}");
            let got = ideal_speedup(15, p);
            assert!((got - s).abs() < 1e-12, "P={p}: got {got}, want {s}");
        }
    }

    #[test]
    fn speedup_is_monotone_nondecreasing() {
        for units in [5u64, 15, 25, 35, 45, 70, 350, 1000] {
            let curve = speedup_curve(units, 130);
            for w in curve.windows(2) {
                assert!(w[1] >= w[0] - 1e-12, "units={units}: {w:?}");
            }
        }
    }

    #[test]
    fn speedup_bounded_by_processors_and_units() {
        for units in [5u64, 15, 45, 350] {
            for p in 1..=60u32 {
                let s = ideal_speedup(units, p);
                assert!(s <= f64::from(p) + 1e-12);
                assert!(s <= units as f64 + 1e-12);
                assert!(s >= 1.0 - 1e-12);
            }
        }
    }

    #[test]
    fn full_parallelism_reaches_unit_count() {
        for units in [1u64, 5, 15, 70, 350] {
            let s = ideal_speedup(units, u32::try_from(units).unwrap());
            assert!((s - units as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_plateau_1m_case() {
        // 1-million-point case: limiting loop dimension ~70 (L of the
        // 15/87/89 x 75 x 70 zones): flat between 48 and 64 processors.
        assert!(is_plateau(70, 48, 64));
        assert!(!is_plateau(70, 64, 70));
    }

    #[test]
    fn paper_plateau_59m_case() {
        // 59-million-point case: limiting dimension ~350: flat between
        // 88 and 104 processors (ceil(350/88)=4=ceil(350/104)).
        assert!(is_plateau(350, 88, 104));
        // ...and rises again by 117 (ceil=3).
        assert!(!is_plateau(350, 104, 117));
    }

    #[test]
    fn plateau_edges_are_jump_points() {
        let edges = plateau_edges(15, 15);
        assert_eq!(edges, vec![1, 2, 3, 4, 5, 8, 15]);
    }

    #[test]
    fn plateau_edges_near_u_over_n() {
        // Jumps occur at P = ceil(U/n): for U=70 expect ... 14(=70/5),
        // 18(=ceil(70/4)), 24, 35, 70 among the edges.
        let edges = plateau_edges(70, 70);
        for e in [14u32, 18, 24, 35, 70] {
            assert!(edges.contains(&e), "edge {e} missing from {edges:?}");
        }
    }

    #[test]
    fn curve_length_matches() {
        assert_eq!(speedup_curve(45, 50).len(), 50);
    }

    #[test]
    #[should_panic(expected = "processor count must be positive")]
    fn zero_processors_panics() {
        let _ = ideal_speedup(15, 0);
    }

    #[test]
    #[should_panic(expected = "unit count must be positive")]
    fn zero_units_panics() {
        let _ = ideal_speedup(0, 1);
    }
}
