//! Amdahl's-law helpers (paper Sections 3–4).
//!
//! The paper repeatedly weighs the overhead of parallelizing cheap
//! boundary-condition routines against the Amdahl penalty of leaving
//! them serial: "the more time is spent in serial code, the harder it is
//! to show benefit from using larger (e.g., 50+) numbers of processors."
//! These helpers quantify that trade.

/// Speedup of a program whose serial fraction is `serial_fraction`
/// (of single-processor runtime) on `processors` processors, with the
/// parallel portion scaling ideally:
/// `1 / (s + (1 - s) / P)`.
///
/// # Panics
/// Panics if `processors == 0` or `serial_fraction` is outside `[0, 1]`.
#[must_use]
pub fn amdahl_speedup(serial_fraction: f64, processors: u32) -> f64 {
    assert!(processors > 0, "processor count must be positive");
    assert!(
        (0.0..=1.0).contains(&serial_fraction),
        "serial fraction must be in [0, 1], got {serial_fraction}"
    );
    1.0 / (serial_fraction + (1.0 - serial_fraction) / f64::from(processors))
}

/// The asymptotic speedup limit `1 / s` as `P -> inf`.
///
/// Returns `f64::INFINITY` for a zero serial fraction.
#[must_use]
pub fn asymptotic_speedup(serial_fraction: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&serial_fraction),
        "serial fraction must be in [0, 1], got {serial_fraction}"
    );
    if serial_fraction == 0.0 {
        f64::INFINITY
    } else {
        1.0 / serial_fraction
    }
}

/// The largest serial fraction that still permits a target speedup on a
/// given processor count. Solves Amdahl for `s`:
/// `s = (P / S - 1) / (P - 1)` where `S` is the target speedup.
///
/// Returns `None` if the target is unachievable even with `s = 0`
/// (i.e. `target > P`), or if `processors == 1` and `target > 1`.
#[must_use]
pub fn serial_fraction_limit(target_speedup: f64, processors: u32) -> Option<f64> {
    assert!(processors > 0, "processor count must be positive");
    assert!(target_speedup >= 1.0, "target speedup must be >= 1");
    let p = f64::from(processors);
    if target_speedup > p {
        return None;
    }
    if processors == 1 {
        return Some(1.0); // Any serial fraction achieves speedup 1.
    }
    let s = (p / target_speedup - 1.0) / (p - 1.0);
    Some(s.clamp(0.0, 1.0))
}

/// Given per-phase serial runtimes, the serial fraction of the phases
/// that are flagged serial. `phases` is `(runtime, is_serial)`.
///
/// Returns 0 for an empty phase list.
#[must_use]
pub fn serial_fraction_of_phases(phases: &[(f64, bool)]) -> f64 {
    let total: f64 = phases.iter().map(|&(t, _)| t).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let serial: f64 = phases
        .iter()
        .filter(|&&(_, is_serial)| is_serial)
        .map(|&(t, _)| t)
        .sum();
    serial / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_serial_code_is_linear() {
        for p in [1u32, 2, 32, 128] {
            assert!((amdahl_speedup(0.0, p) - f64::from(p)).abs() < 1e-12);
        }
    }

    #[test]
    fn all_serial_code_never_speeds_up() {
        for p in [1u32, 2, 32, 128] {
            assert!((amdahl_speedup(1.0, p) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn one_percent_serial_caps_at_100() {
        assert!((asymptotic_speedup(0.01) - 100.0).abs() < 1e-9);
        // On 128 processors, 1% serial already costs >35% of ideal.
        let s = amdahl_speedup(0.01, 128);
        assert!(s < 0.45 * 128.0, "got {s}");
        assert!(s > 56.0, "got {s}");
    }

    #[test]
    fn serial_fraction_limit_round_trips() {
        for &(target, p) in &[(10.0f64, 16u32), (50.0, 64), (100.0, 128)] {
            let s = serial_fraction_limit(target, p).unwrap();
            let achieved = amdahl_speedup(s, p);
            assert!((achieved - target).abs() < 1e-9, "{achieved} vs {target}");
        }
    }

    #[test]
    fn unachievable_target_is_none() {
        assert_eq!(serial_fraction_limit(9.0, 8), None);
        assert!(serial_fraction_limit(8.0, 8).is_some());
    }

    #[test]
    fn phase_fraction() {
        let phases = [(90.0, false), (10.0, true)];
        assert!((serial_fraction_of_phases(&phases) - 0.1).abs() < 1e-12);
        assert_eq!(serial_fraction_of_phases(&[]), 0.0);
    }

    #[test]
    fn speedup_monotone_in_processors() {
        let mut last = 0.0;
        for p in 1..=256u32 {
            let s = amdahl_speedup(0.03, p);
            assert!(s >= last);
            last = s;
        }
    }
}
