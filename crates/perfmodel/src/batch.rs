//! Validated batch evaluation of the analytic models, for callers that
//! relay untrusted queries (the `llpd` HTTP service's `/v1/model/*`
//! endpoints).
//!
//! The scalar entry points in [`crate::stairstep`], [`crate::overhead`]
//! and [`crate::work_per_sync`] follow library convention and panic on
//! parameter-domain errors (`processors == 0`, an overhead fraction
//! outside `(0, 1]`). A service cannot afford that: a hostile request
//! must come back as a clean error, never a worker-thread panic. The
//! functions here validate every point of a batch up front — including
//! arithmetic overflow on hostile grid dimensions — and return
//! `Err(message)` naming the offending value, so panics in the
//! underlying models become unreachable.

use crate::overhead::min_work_for_overhead;
use crate::stairstep::{ideal_speedup, max_units_per_processor};
use crate::work_per_sync::{GridNest, LoopLevel};

/// Largest number of points one batch may request. Far above any
/// plotting need, low enough that a hostile batch cannot tie up the
/// service building a giant response.
pub const MAX_BATCH_POINTS: usize = 4096;

/// Check the common batch-shape constraints: non-empty, bounded size.
fn check_batch_shape(len: usize) -> Result<(), String> {
    if len == 0 {
        return Err("batch must contain at least one point".to_string());
    }
    if len > MAX_BATCH_POINTS {
        return Err(format!(
            "batch of {len} points exceeds limit {MAX_BATCH_POINTS}"
        ));
    }
    Ok(())
}

/// One evaluated point of the stair-step law.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StairstepPoint {
    /// Processor count the point was evaluated at.
    pub processors: u32,
    /// Ideal speedup `units / ceil(units / P)`.
    pub speedup: f64,
    /// The plateau denominator `ceil(units / P)`.
    pub max_units_per_processor: u64,
}

/// Evaluate the stair-step speedup law at each processor count.
///
/// # Errors
/// Rejects `units == 0`, any `processors == 0`, and empty or oversized
/// batches, with a message naming the offending value.
pub fn stairstep_batch(units: u64, processors: &[u32]) -> Result<Vec<StairstepPoint>, String> {
    check_batch_shape(processors.len())?;
    if units == 0 {
        return Err("units must be positive".to_string());
    }
    processors
        .iter()
        .map(|&p| {
            if p == 0 {
                return Err("processors must be positive".to_string());
            }
            Ok(StairstepPoint {
                processors: p,
                speedup: ideal_speedup(units, p),
                max_units_per_processor: max_units_per_processor(units, p),
            })
        })
        .collect()
}

/// One evaluated point of the synchronization-overhead bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadPoint {
    /// Processor count the point was evaluated at.
    pub processors: u32,
    /// Minimum serial work (cycles) to keep synchronization within the
    /// overhead budget: `ceil(P * S / f)`.
    pub min_work_cycles: u64,
}

/// Evaluate the overhead bound `W >= P * S / f` at each processor count.
///
/// # Errors
/// Rejects non-finite or out-of-range `max_overhead_fraction` (must be
/// in `(0, 1]`), any `processors == 0`, and empty or oversized batches.
pub fn overhead_batch(
    sync_cost_cycles: u64,
    max_overhead_fraction: f64,
    processors: &[u32],
) -> Result<Vec<OverheadPoint>, String> {
    check_batch_shape(processors.len())?;
    if !(max_overhead_fraction > 0.0 && max_overhead_fraction <= 1.0) {
        return Err(format!(
            "overhead fraction must be in (0, 1], got {max_overhead_fraction}"
        ));
    }
    processors
        .iter()
        .map(|&p| {
            if p == 0 {
                return Err("processors must be positive".to_string());
            }
            Ok(OverheadPoint {
                processors: p,
                min_work_cycles: min_work_for_overhead(sync_cost_cycles, p, max_overhead_fraction),
            })
        })
        .collect()
}

/// One evaluated (nest, level) row of the Table 2 accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkPerSyncPoint {
    /// The parallelized loop level.
    pub level: LoopLevel,
    /// Grid points covered per parallel-region execution.
    pub points_per_sync: u64,
    /// Work available between synchronization events, in cycles.
    pub cycles: u64,
    /// Iteration count of the parallelized loop.
    pub available_parallelism: u64,
}

/// Evaluate work-per-synchronization for each requested loop level of
/// one nest.
///
/// # Errors
/// Rejects `work_per_point == 0`, levels the nest does not have (e.g.
/// `Middle` of a 2-D nest), products that overflow `u64`, and empty or
/// oversized batches.
pub fn work_per_sync_batch(
    nest: GridNest,
    work_per_point: u64,
    levels: &[LoopLevel],
) -> Result<Vec<WorkPerSyncPoint>, String> {
    check_batch_shape(levels.len())?;
    if work_per_point == 0 {
        return Err("work_per_point must be positive".to_string());
    }
    levels
        .iter()
        .map(|&level| {
            let points = nest
                .points_per_sync(level)
                .ok_or_else(|| format!("nest has no {} loop level", level.name()))?;
            let cycles = points
                .checked_mul(work_per_point)
                .ok_or_else(|| format!("work per sync overflows at {} level", level.name()))?;
            let avail = nest
                .available_parallelism(level)
                .ok_or_else(|| format!("nest has no {} loop level", level.name()))?;
            Ok(WorkPerSyncPoint {
                level,
                points_per_sync: points,
                cycles,
                available_parallelism: avail,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stairstep_batch_matches_scalar_model() {
        let pts = stairstep_batch(15, &[1, 4, 8, 14, 15]).unwrap();
        let speedups: Vec<f64> = pts.iter().map(|p| p.speedup).collect();
        assert_eq!(speedups, vec![1.0, 3.75, 7.5, 7.5, 15.0]);
        assert_eq!(pts[1].max_units_per_processor, 4);
    }

    #[test]
    fn stairstep_batch_rejects_bad_input() {
        assert!(stairstep_batch(0, &[1]).is_err());
        assert!(stairstep_batch(15, &[]).is_err());
        assert!(stairstep_batch(15, &[4, 0]).is_err());
        assert!(stairstep_batch(15, &vec![1; MAX_BATCH_POINTS + 1]).is_err());
        assert!(stairstep_batch(15, &vec![1; MAX_BATCH_POINTS]).is_ok());
    }

    #[test]
    fn overhead_batch_reproduces_table1_column() {
        let pts = overhead_batch(10_000, 0.01, &[2, 8, 32, 128]).unwrap();
        let works: Vec<u64> = pts.iter().map(|p| p.min_work_cycles).collect();
        assert_eq!(works, vec![2_000_000, 8_000_000, 32_000_000, 128_000_000]);
    }

    #[test]
    fn overhead_batch_rejects_bad_input() {
        assert!(overhead_batch(10_000, 0.0, &[2]).is_err());
        assert!(overhead_batch(10_000, 1.5, &[2]).is_err());
        assert!(overhead_batch(10_000, f64::NAN, &[2]).is_err());
        assert!(overhead_batch(10_000, f64::INFINITY, &[2]).is_err());
        assert!(overhead_batch(10_000, 0.01, &[0]).is_err());
        assert!(overhead_batch(10_000, 0.01, &[]).is_err());
    }

    #[test]
    fn work_per_sync_batch_reproduces_table2_rows() {
        let nest = GridNest::ThreeD {
            outer: 100,
            middle: 100,
            inner: 100,
        };
        let pts = work_per_sync_batch(
            nest,
            10,
            &[LoopLevel::Inner, LoopLevel::Middle, LoopLevel::Outer],
        )
        .unwrap();
        let cycles: Vec<u64> = pts.iter().map(|p| p.cycles).collect();
        assert_eq!(cycles, vec![1_000, 100_000, 10_000_000]);
        assert_eq!(pts[2].available_parallelism, 100);
    }

    #[test]
    fn work_per_sync_batch_rejects_bad_input() {
        let two_d = GridNest::TwoD {
            outer: 10,
            inner: 10,
        };
        assert!(work_per_sync_batch(two_d, 10, &[LoopLevel::Middle]).is_err());
        assert!(work_per_sync_batch(two_d, 0, &[LoopLevel::Outer]).is_err());
        assert!(work_per_sync_batch(two_d, 10, &[]).is_err());
        // Hostile dimensions must error, not overflow.
        let huge = GridNest::TwoD {
            outer: u64::MAX / 2,
            inner: 2,
        };
        assert!(work_per_sync_batch(huge, 1_000, &[LoopLevel::Outer]).is_err());
    }
}
