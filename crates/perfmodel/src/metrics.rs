//! Reporting metrics (paper Section 5).
//!
//! The paper deliberately avoids raw speedup as a headline metric ("the
//! lower the serial performance, the easier it is to show good speedup")
//! and reports **time steps/hour** — which lets a user estimate run time
//! directly and degenerates to the familiar linear curve for problems
//! with abundant parallelism — and **delivered MFLOPS**, which exposes
//! both parallel *and* serial efficiency.

/// Seconds per hour, as an f64.
pub const SECONDS_PER_HOUR: f64 = 3600.0;

/// Time steps per hour given the wall-clock seconds consumed by one time
/// step (start-up and termination costs excluded, as in the paper).
///
/// # Panics
/// Panics if `seconds_per_step` is not positive and finite.
#[must_use]
pub fn time_steps_per_hour(seconds_per_step: f64) -> f64 {
    assert!(
        seconds_per_step.is_finite() && seconds_per_step > 0.0,
        "seconds per step must be positive and finite, got {seconds_per_step}"
    );
    SECONDS_PER_HOUR / seconds_per_step
}

/// Delivered MFLOPS: floating-point operations executed divided by wall
/// time, in units of 10^6 ops/second.
///
/// # Panics
/// Panics if `seconds` is not positive and finite.
#[must_use]
pub fn delivered_mflops(flops: u64, seconds: f64) -> f64 {
    assert!(
        seconds.is_finite() && seconds > 0.0,
        "seconds must be positive and finite, got {seconds}"
    );
    flops as f64 / seconds / 1.0e6
}

/// Parallel and serial efficiency of a run, following the paper's
/// "compare products based on their delivered performance, not their
/// peak performance" discussion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Efficiency {
    /// Delivered MFLOPS of the run.
    pub delivered_mflops: f64,
    /// Peak MFLOPS of one processor.
    pub peak_mflops_per_processor: f64,
    /// Number of processors used.
    pub processors: u32,
}

impl Efficiency {
    /// Delivered MFLOPS per processor.
    #[must_use]
    pub fn per_processor(&self) -> f64 {
        self.delivered_mflops / f64::from(self.processors)
    }

    /// Fraction of aggregate peak achieved (`0.0..=1.0` for sane inputs).
    #[must_use]
    pub fn fraction_of_peak(&self) -> f64 {
        self.delivered_mflops / (self.peak_mflops_per_processor * f64::from(self.processors))
    }
}

/// Speedup relative to a single-processor run, for completeness (the
/// paper computes it but prefers not to lead with it).
#[must_use]
pub fn speedup(serial_seconds: f64, parallel_seconds: f64) -> f64 {
    assert!(serial_seconds > 0.0 && parallel_seconds > 0.0);
    serial_seconds / parallel_seconds
}

/// Convert a (flops/step, seconds/step) pair into the paper's Table 4
/// row entries: (time steps/hour, delivered MFLOPS).
#[must_use]
pub fn table4_entries(flops_per_step: u64, seconds_per_step: f64) -> (f64, f64) {
    (
        time_steps_per_hour(seconds_per_step),
        delivered_mflops(flops_per_step, seconds_per_step),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_per_hour_inverse_of_seconds() {
        assert!((time_steps_per_hour(3600.0) - 1.0).abs() < 1e-12);
        assert!((time_steps_per_hour(1.0) - 3600.0).abs() < 1e-12);
        // The paper's SUN 1p run: 138 steps/hr -> ~26 s/step.
        let s = SECONDS_PER_HOUR / 138.0;
        assert!((time_steps_per_hour(s) - 138.0).abs() < 1e-9);
    }

    #[test]
    fn mflops_units() {
        assert!((delivered_mflops(1_000_000, 1.0) - 1.0).abs() < 1e-12);
        assert!((delivered_mflops(600_000_000, 1.0) - 600.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_per_processor() {
        // Paper: SGI R12000 peak 600 MFLOPS, delivered 237 serial.
        let e = Efficiency {
            delivered_mflops: 237.0,
            peak_mflops_per_processor: 600.0,
            processors: 1,
        };
        assert!((e.per_processor() - 237.0).abs() < 1e-9);
        assert!((e.fraction_of_peak() - 0.395).abs() < 1e-9);
    }

    #[test]
    fn efficiency_scales_with_processors() {
        let e = Efficiency {
            delivered_mflops: 4830.0,
            peak_mflops_per_processor: 600.0,
            processors: 64,
        };
        assert!((e.per_processor() - 75.46875).abs() < 1e-9);
        assert!(e.fraction_of_peak() < 0.2);
    }

    #[test]
    fn table4_pair() {
        let (steps, mflops) = table4_entries(2_370_000_000, 10.0);
        assert!((steps - 360.0).abs() < 1e-9);
        assert!((mflops - 237.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_basic() {
        assert!((speedup(100.0, 10.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "seconds per step must be positive")]
    fn zero_step_time_panics() {
        let _ = time_steps_per_hour(0.0);
    }
}
