//! Work available per synchronization event (paper Section 3, Table 2).
//!
//! Table 2 of the paper tabulates, for a one-million-grid-point zone, how
//! many cycles of work are available between synchronization events when
//! different loop levels of the nest are parallelized. Parallelizing the
//! outer loop of a 3-D nest gives six orders of magnitude more work per
//! synchronization than parallelizing the inner loop of a boundary
//! condition — which is the paper's quantitative argument for
//! (a) parallelizing outer loops and (b) leaving boundary-condition
//! routines serial.
//!
//! The accounting is simple: one synchronization event terminates each
//! execution of the parallel region, so
//!
//! ```text
//! work per sync = (grid points covered by one parallel region) * w
//! ```
//!
//! where `w` is the work per grid point in cycles.

/// Which loop of the nest carries the parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopLevel {
    /// The innermost loop (what vectorization uses).
    Inner,
    /// The middle loop of a 3-D nest.
    Middle,
    /// The outermost loop.
    Outer,
    /// The inner loop of a boundary-condition (surface) routine.
    BoundaryInner,
    /// The outer loop of a boundary-condition (surface) routine.
    BoundaryOuter,
}

impl LoopLevel {
    /// Every loop level, in the order Table 2 discusses them.
    pub const ALL: [LoopLevel; 5] = [
        LoopLevel::Inner,
        LoopLevel::Middle,
        LoopLevel::Outer,
        LoopLevel::BoundaryInner,
        LoopLevel::BoundaryOuter,
    ];

    /// Stable lower-snake name, used in query/response wire formats.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LoopLevel::Inner => "inner",
            LoopLevel::Middle => "middle",
            LoopLevel::Outer => "outer",
            LoopLevel::BoundaryInner => "boundary_inner",
            LoopLevel::BoundaryOuter => "boundary_outer",
        }
    }

    /// Inverse of [`LoopLevel::name`]; `None` for unknown names.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|lv| lv.name() == name)
    }
}

/// A grid loop nest of one, two, or three dimensions, with the iteration
/// counts ordered outermost-first (e.g. `ThreeD { l: 100, k: 100, j: 100 }`
/// is `DO L / DO K / DO J`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridNest {
    /// A single loop over `n` points.
    OneD {
        /// Iteration count.
        n: u64,
    },
    /// A doubly-nested loop; `outer` × `inner` points.
    TwoD {
        /// Outer iteration count.
        outer: u64,
        /// Inner iteration count.
        inner: u64,
    },
    /// A triply-nested loop; `outer` × `middle` × `inner` points.
    ThreeD {
        /// Outer iteration count.
        outer: u64,
        /// Middle iteration count.
        middle: u64,
        /// Inner iteration count.
        inner: u64,
    },
}

impl GridNest {
    /// Build a nest from outermost-first dimensions, validating that
    /// there are one to three of them, each positive, and that the
    /// total point count fits in `u64` (so the per-sync products in
    /// [`GridNest::points_per_sync`] cannot overflow). `None` on any
    /// violation — the untrusted-input constructor for services.
    #[must_use]
    pub fn from_dims(dims: &[u64]) -> Option<Self> {
        if dims.contains(&0) {
            return None;
        }
        let nest = match *dims {
            [n] => GridNest::OneD { n },
            [outer, inner] => {
                outer.checked_mul(inner)?;
                GridNest::TwoD { outer, inner }
            }
            [outer, middle, inner] => {
                outer.checked_mul(middle)?.checked_mul(inner)?;
                GridNest::ThreeD {
                    outer,
                    middle,
                    inner,
                }
            }
            _ => return None,
        };
        Some(nest)
    }

    /// Total number of grid points in the nest.
    #[must_use]
    pub fn points(&self) -> u64 {
        match *self {
            GridNest::OneD { n } => n,
            GridNest::TwoD { outer, inner } => outer * inner,
            GridNest::ThreeD {
                outer,
                middle,
                inner,
            } => outer * middle * inner,
        }
    }

    /// Number of grid points on a boundary face of the nest: the product
    /// of all dimensions except the outermost (the paper's boundary
    /// condition routines operate on one face of the zone).
    #[must_use]
    pub fn boundary_points(&self) -> u64 {
        match *self {
            GridNest::OneD { .. } => 1,
            GridNest::TwoD { inner, .. } => inner,
            GridNest::ThreeD { middle, inner, .. } => middle * inner,
        }
    }

    /// Grid points covered by one execution of the parallel region when
    /// `level` is the parallelized loop, or `None` if the nest has no
    /// such level (e.g. `Middle` of a 1-D or 2-D nest).
    ///
    /// * `Outer`: one synchronization for the whole nest → all points.
    /// * `Middle` (3-D): one synchronization per outer iteration →
    ///   `middle * inner` points.
    /// * `Inner`: one synchronization per (outer×middle) iteration →
    ///   `inner` points.
    /// * `BoundaryOuter` / `BoundaryInner`: same accounting applied to a
    ///   face of the zone.
    #[must_use]
    pub fn points_per_sync(&self, level: LoopLevel) -> Option<u64> {
        match (*self, level) {
            (GridNest::OneD { n }, LoopLevel::Outer | LoopLevel::Inner) => Some(n),
            (GridNest::OneD { .. }, _) => None,
            (GridNest::TwoD { outer, inner }, LoopLevel::Outer) => Some(outer * inner),
            (GridNest::TwoD { inner, .. }, LoopLevel::Inner) => Some(inner),
            // A 2-D zone's boundary is a line of `inner` points; the
            // paper's single 2-D "Boundary condition" row parallelizes it
            // as one loop.
            (GridNest::TwoD { inner, .. }, LoopLevel::BoundaryInner | LoopLevel::BoundaryOuter) => {
                Some(inner)
            }
            (GridNest::TwoD { .. }, LoopLevel::Middle) => None,
            (
                GridNest::ThreeD {
                    outer,
                    middle,
                    inner,
                },
                LoopLevel::Outer,
            ) => Some(outer * middle * inner),
            (GridNest::ThreeD { middle, inner, .. }, LoopLevel::Middle) => Some(middle * inner),
            (GridNest::ThreeD { inner, .. }, LoopLevel::Inner) => Some(inner),
            (GridNest::ThreeD { middle, inner, .. }, LoopLevel::BoundaryOuter) => {
                Some(middle * inner)
            }
            (GridNest::ThreeD { inner, .. }, LoopLevel::BoundaryInner) => Some(inner),
        }
    }

    /// Available parallelism (iteration count of the parallelized loop)
    /// for `level`, or `None` if the nest has no such level.
    #[must_use]
    pub fn available_parallelism(&self, level: LoopLevel) -> Option<u64> {
        match (*self, level) {
            (GridNest::OneD { n }, LoopLevel::Outer | LoopLevel::Inner) => Some(n),
            (GridNest::OneD { .. }, _) => None,
            (GridNest::TwoD { outer, .. }, LoopLevel::Outer) => Some(outer),
            (GridNest::TwoD { inner, .. }, LoopLevel::Inner) => Some(inner),
            (GridNest::TwoD { inner, .. }, LoopLevel::BoundaryInner | LoopLevel::BoundaryOuter) => {
                Some(inner)
            }
            (GridNest::TwoD { .. }, LoopLevel::Middle) => None,
            (GridNest::ThreeD { outer, .. }, LoopLevel::Outer) => Some(outer),
            (GridNest::ThreeD { middle, .. }, LoopLevel::Middle) => Some(middle),
            (GridNest::ThreeD { inner, .. }, LoopLevel::Inner) => Some(inner),
            (GridNest::ThreeD { middle, .. }, LoopLevel::BoundaryOuter) => Some(middle),
            (GridNest::ThreeD { inner, .. }, LoopLevel::BoundaryInner) => Some(inner),
        }
    }
}

/// Work available per synchronization event for one (nest, level, w)
/// combination — one cell of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkPerSync {
    /// Grid points covered per parallel-region execution.
    pub points_per_sync: u64,
    /// Work per grid point in cycles.
    pub work_per_point: u64,
}

impl WorkPerSync {
    /// Compute for a given nest, loop level, and per-point work; `None`
    /// if the nest has no such loop level.
    #[must_use]
    pub fn compute(nest: GridNest, level: LoopLevel, work_per_point: u64) -> Option<Self> {
        nest.points_per_sync(level).map(|points_per_sync| Self {
            points_per_sync,
            work_per_point,
        })
    }

    /// The cycles of work available between synchronization events.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.points_per_sync * self.work_per_point
    }
}

/// The per-point work columns of Table 2, in cycles.
pub const TABLE2_WORK_PER_POINT: [u64; 3] = [10, 100, 1000];

/// The three one-million-point problem configurations of Table 2.
#[must_use]
pub fn table2_nests() -> [(&'static str, GridNest); 3] {
    [
        ("1-D", GridNest::OneD { n: 1_000_000 }),
        (
            "2-D",
            GridNest::TwoD {
                outer: 1_000,
                inner: 1_000,
            },
        ),
        (
            "3-D",
            GridNest::ThreeD {
                outer: 100,
                middle: 100,
                inner: 100,
            },
        ),
    ]
}

/// One row of Table 2: a labelled (nest, loop-level) combination and the
/// work per sync event for each per-point work column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2Row {
    /// Problem type label ("1-D", "2-D", "3-D").
    pub problem: &'static str,
    /// Loop-level label as printed in the paper.
    pub label: &'static str,
    /// Work per sync event in cycles, one entry per
    /// [`TABLE2_WORK_PER_POINT`] column.
    pub cycles: Vec<u64>,
}

/// Generate the full Table 2 of the paper.
#[must_use]
pub fn table2() -> Vec<Table2Row> {
    let mut rows = Vec::new();
    let mut push = |problem: &'static str, label: &'static str, nest: GridNest, lv: LoopLevel| {
        let cycles = TABLE2_WORK_PER_POINT
            .iter()
            .map(|&w| {
                WorkPerSync::compute(nest, lv, w)
                    .expect("level must exist for this nest")
                    .cycles()
            })
            .collect();
        rows.push(Table2Row {
            problem,
            label,
            cycles,
        });
    };

    let [(l1, n1), (l2, n2), (l3, n3)] = table2_nests();
    push(l1, "Whole loop", n1, LoopLevel::Outer);
    push(l2, "Inner loop", n2, LoopLevel::Inner);
    push(l2, "Outer loop", n2, LoopLevel::Outer);
    push(l2, "Boundary condition", n2, LoopLevel::BoundaryInner);
    push(l3, "Inner loop", n3, LoopLevel::Inner);
    push(l3, "Middle loop", n3, LoopLevel::Middle);
    push(l3, "Outer loop", n3, LoopLevel::Outer);
    push(
        l3,
        "Boundary condition - inner loop",
        n3,
        LoopLevel::BoundaryInner,
    );
    push(
        l3,
        "Boundary condition - outer loop",
        n3,
        LoopLevel::BoundaryOuter,
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_level_names_round_trip() {
        for lv in LoopLevel::ALL {
            assert_eq!(LoopLevel::from_name(lv.name()), Some(lv));
        }
        assert_eq!(LoopLevel::from_name("galaxy"), None);
    }

    #[test]
    fn from_dims_validates() {
        assert_eq!(GridNest::from_dims(&[7]), Some(GridNest::OneD { n: 7 }));
        assert_eq!(
            GridNest::from_dims(&[3, 4]),
            Some(GridNest::TwoD { outer: 3, inner: 4 })
        );
        assert_eq!(
            GridNest::from_dims(&[2, 3, 4]),
            Some(GridNest::ThreeD {
                outer: 2,
                middle: 3,
                inner: 4
            })
        );
        assert_eq!(GridNest::from_dims(&[]), None);
        assert_eq!(GridNest::from_dims(&[1, 2, 3, 4]), None);
        assert_eq!(GridNest::from_dims(&[0, 5]), None);
        assert_eq!(GridNest::from_dims(&[u64::MAX, u64::MAX]), None);
        assert_eq!(GridNest::from_dims(&[u64::MAX, 2, 2]), None);
    }

    #[test]
    fn table2_matches_paper() {
        // Every number printed in Table 2 of the paper, in row order.
        let expect: [(&str, [u64; 3]); 9] = [
            ("1-D/Whole loop", [10_000_000, 100_000_000, 1_000_000_000]),
            ("2-D/Inner loop", [10_000, 100_000, 1_000_000]),
            ("2-D/Outer loop", [10_000_000, 100_000_000, 1_000_000_000]),
            ("2-D/Boundary condition", [10_000, 100_000, 1_000_000]),
            ("3-D/Inner loop", [1_000, 10_000, 100_000]),
            ("3-D/Middle loop", [100_000, 1_000_000, 10_000_000]),
            ("3-D/Outer loop", [10_000_000, 100_000_000, 1_000_000_000]),
            (
                "3-D/Boundary condition - inner loop",
                [1_000, 10_000, 100_000],
            ),
            (
                "3-D/Boundary condition - outer loop",
                [100_000, 1_000_000, 10_000_000],
            ),
        ];
        let rows = table2();
        assert_eq!(rows.len(), expect.len());
        for (row, (name, vals)) in rows.iter().zip(expect.iter()) {
            let full = format!("{}/{}", row.problem, row.label);
            assert_eq!(&full, name);
            assert_eq!(row.cycles.as_slice(), vals.as_slice(), "{name}");
        }
    }

    #[test]
    fn outer_loop_always_covers_all_points() {
        for (_, nest) in table2_nests() {
            assert_eq!(nest.points_per_sync(LoopLevel::Outer), Some(nest.points()));
        }
    }

    #[test]
    fn points_are_one_million() {
        for (_, nest) in table2_nests() {
            assert_eq!(nest.points(), 1_000_000);
        }
    }

    #[test]
    fn middle_level_missing_for_low_dims() {
        assert_eq!(
            GridNest::OneD { n: 10 }.points_per_sync(LoopLevel::Middle),
            None
        );
        assert_eq!(
            GridNest::TwoD { outer: 3, inner: 4 }.points_per_sync(LoopLevel::Middle),
            None
        );
    }

    #[test]
    fn available_parallelism_matches_loop_extent() {
        let nest = GridNest::ThreeD {
            outer: 70,
            middle: 75,
            inner: 89,
        };
        assert_eq!(nest.available_parallelism(LoopLevel::Outer), Some(70));
        assert_eq!(nest.available_parallelism(LoopLevel::Middle), Some(75));
        assert_eq!(nest.available_parallelism(LoopLevel::Inner), Some(89));
        assert_eq!(
            nest.available_parallelism(LoopLevel::BoundaryOuter),
            Some(75)
        );
    }

    #[test]
    fn work_per_sync_cycles_product() {
        let w = WorkPerSync {
            points_per_sync: 123,
            work_per_point: 7,
        };
        assert_eq!(w.cycles(), 861);
    }

    #[test]
    fn boundary_points_are_a_face() {
        let nest = GridNest::ThreeD {
            outer: 100,
            middle: 100,
            inner: 100,
        };
        assert_eq!(nest.boundary_points(), 10_000);
    }
}
