//! Executing a step DAG: sequential sweep, explicit-order replay, and
//! sharded dispatch over an [`llp::Workers`] pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use llp::{FlightRecorder, Recorder, Workers};

use crate::dag::{StepDag, Task};
use crate::topology::Topology;

/// What one sharded step did — deterministic, derived from the
/// topology and the shard count alone, so it can ride on cached solve
/// responses without breaking content-addressed reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepStats {
    /// Zone shards the step dispatched over (after clamping).
    pub shards: usize,
    /// Inner loop workers each shard's team carried.
    pub loop_workers: usize,
    /// Compute tasks executed (one per block).
    pub zone_tasks: u64,
    /// Exchange tasks executed (one per interface).
    pub exchange_tasks: u64,
    /// Waves in the serialized exchange tail.
    pub exchange_waves: u64,
    /// Peak simultaneously-ready tasks — the step's `U_zones`.
    pub peak_ready: u64,
}

impl StepStats {
    fn new(topo: &Topology, shards: usize, loop_workers: usize) -> Self {
        let dag = StepDag::build(topo);
        Self {
            shards,
            loop_workers,
            zone_tasks: topo.blocks() as u64,
            exchange_tasks: topo.interfaces().len() as u64,
            exchange_waves: dag.exchange_waves() as u64,
            peak_ready: dag.peak_ready() as u64,
        }
    }
}

/// The canonical sequential sweep: computes in block order, then
/// exchanges in interface order — the order every zonal solver has
/// always used, and always a topological order of the step DAG.
///
/// # Panics
/// Panics if `blocks.len() != topo.blocks()`.
pub fn run_sequential<Z>(
    blocks: &mut [Z],
    topo: &Topology,
    mut compute: impl FnMut(usize, &mut Z),
    mut exchange: impl FnMut(usize, &mut Z, &mut Z),
) {
    assert_eq!(blocks.len(), topo.blocks(), "one block per topology node");
    for (b, block) in blocks.iter_mut().enumerate() {
        compute(b, block);
    }
    apply_exchanges(blocks, topo, &mut exchange);
}

/// Replay a step in an explicit task order — the determinism harness
/// behind the exchange-ordering-invariance property: any topological
/// order must leave `blocks` bit-identical to [`run_sequential`].
///
/// # Errors
/// Rejects an order that is not a topological order of the step DAG.
///
/// # Panics
/// Panics if `blocks.len() != topo.blocks()`.
pub fn run_in_order<Z>(
    blocks: &mut [Z],
    topo: &Topology,
    order: &[Task],
    mut compute: impl FnMut(usize, &mut Z),
    mut exchange: impl FnMut(usize, &mut Z, &mut Z),
) -> Result<(), String> {
    assert_eq!(blocks.len(), topo.blocks(), "one block per topology node");
    let dag = StepDag::build(topo);
    if !dag.is_topological(order) {
        return Err("order is not a topological order of the step DAG".to_string());
    }
    for &task in order {
        match task {
            Task::Compute(b) => compute(b, &mut blocks[b]),
            Task::Exchange(i) => {
                let (a, b) = topo.interfaces()[i];
                let (lo, hi) = blocks.split_at_mut(b);
                exchange(i, &mut lo[a], &mut hi[0]);
            }
        }
    }
    Ok(())
}

/// Dispatch one step's compute tasks across `shards` zone shards, then
/// apply the exchanges in canonical order.
///
/// Each shard owns a [`Workers::kernel_view`] of `pool` carrying
/// `pool.processors() / shards` (at least 1) inner workers — kernel
/// views share the pool view's local counters, so the caller's
/// synchronization-event bill covers every region the shards ran, and
/// the split realizes `U_zones × U_loops`. Shard views run with span
/// and flight recording disabled (those instruments assume one
/// coordinator thread); instead, every compute task brackets itself
/// with zone start/end events on the **pool's** flight recorder, lane
/// = shard index, so a drained timeline shows zone occupancy per
/// shard. Shards claim blocks from a shared counter in index order;
/// the scoped join is the step barrier, after which exchanges run on
/// the calling thread in canonical interface order — a topological
/// order of the step DAG, so the result is bit-identical to
/// [`run_sequential`] for every shard count.
///
/// `shards` is clamped to `1..=blocks.len()`; the clamped value is
/// reported in the returned [`StepStats`].
///
/// # Panics
/// Panics if `blocks.len() != topo.blocks()` or a shard panics.
pub fn run_sharded<Z, C, X>(
    pool: &Workers,
    shards: usize,
    step: u64,
    blocks: &mut [Z],
    topo: &Topology,
    compute: C,
    mut exchange: X,
) -> StepStats
where
    Z: Send,
    C: Fn(usize, &Workers, &mut Z) + Sync,
    X: FnMut(usize, &mut Z, &mut Z),
{
    assert_eq!(blocks.len(), topo.blocks(), "one block per topology node");
    let shards = shards.clamp(1, blocks.len());
    let loop_workers = (pool.processors() / shards).max(1);
    let flight = pool.flight();
    let shard_view = || {
        let mut view = pool.kernel_view(loop_workers, pool.policy());
        view.set_recorder(Recorder::disabled());
        view.set_flight(FlightRecorder::disabled());
        view
    };

    if shards == 1 {
        // Degenerate case: the sequential sweep on the calling thread.
        let view = shard_view();
        for (b, block) in blocks.iter_mut().enumerate() {
            flight.zone_start(0, b as u64, step);
            compute(b, &view, block);
            flight.zone_end(0, b as u64, step);
        }
    } else {
        let cells: Vec<Mutex<&mut Z>> = blocks.iter_mut().map(Mutex::new).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for (shard, view) in (0..shards).map(|s| (s, shard_view())) {
                let cells = &cells;
                let next = &next;
                let compute = &compute;
                scope.spawn(move || loop {
                    let b = next.fetch_add(1, Ordering::Relaxed);
                    if b >= cells.len() {
                        break;
                    }
                    // Each block index is claimed exactly once, so the
                    // lock is uncontended — it exists to hand the
                    // `&mut Z` across the thread boundary without
                    // unsafe code.
                    let mut block = cells[b].lock().expect("block cell");
                    flight.zone_start(shard, b as u64, step);
                    compute(b, &view, &mut block);
                    flight.zone_end(shard, b as u64, step);
                });
            }
        });
    }
    apply_exchanges(blocks, topo, &mut exchange);
    StepStats::new(topo, shards, loop_workers)
}

/// Exchanges in canonical interface order (endpoints are `a < b`, so
/// `split_at_mut(b)` hands out both blocks safely).
fn apply_exchanges<Z>(
    blocks: &mut [Z],
    topo: &Topology,
    exchange: &mut impl FnMut(usize, &mut Z, &mut Z),
) {
    for (i, &(a, b)) in topo.interfaces().iter().enumerate() {
        let (lo, hi) = blocks.split_at_mut(b);
        exchange(i, &mut lo[a], &mut hi[0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately non-commutative exchange over integer blocks:
    /// ordering mistakes between conflicting exchanges change the
    /// result, ordering between disjoint exchanges cannot.
    fn mix(state: &mut u64, with: u64) {
        *state = state
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(17)
            .wrapping_add(with);
    }

    fn reference(topo: &Topology) -> Vec<u64> {
        let mut blocks: Vec<u64> = (0..topo.blocks() as u64).map(|b| b + 1).collect();
        run_sequential(
            &mut blocks,
            topo,
            |b, z| mix(z, b as u64),
            |i, a, b| {
                mix(a, *b ^ i as u64);
                mix(b, *a);
            },
        );
        blocks
    }

    #[test]
    fn sequential_and_sharded_agree_for_every_shard_count() {
        let pool = Workers::new(2);
        for blocks_n in 1..=4 {
            let topo = Topology::chain(blocks_n);
            let want = reference(&topo);
            for shards in 1..=blocks_n + 2 {
                let mut blocks: Vec<u64> = (0..blocks_n as u64).map(|b| b + 1).collect();
                let stats = run_sharded(
                    &pool,
                    shards,
                    0,
                    &mut blocks,
                    &topo,
                    |b, _w, z| mix(z, b as u64),
                    |i, a, b| {
                        mix(a, *b ^ i as u64);
                        mix(b, *a);
                    },
                );
                assert_eq!(blocks, want, "blocks={blocks_n} shards={shards}");
                assert_eq!(stats.shards, shards.clamp(1, blocks_n));
                assert_eq!(stats.zone_tasks, blocks_n as u64);
                assert_eq!(stats.exchange_tasks, blocks_n as u64 - 1);
                assert!(stats.loop_workers >= 1);
            }
        }
    }

    #[test]
    fn sharded_splits_the_pool_between_levels() {
        let pool = Workers::new(4);
        let topo = Topology::chain(4);
        let mut blocks = vec![0u64; 4];
        let stats = run_sharded(
            &pool,
            2,
            0,
            &mut blocks,
            &topo,
            |_, w, z| *z = w.processors() as u64,
            |_, _, _| {},
        );
        assert_eq!(stats.shards, 2);
        assert_eq!(stats.loop_workers, 2);
        assert_eq!(blocks, vec![2, 2, 2, 2]);
        assert_eq!(stats.peak_ready, 4);
        assert_eq!(stats.exchange_waves, 3);
    }

    #[test]
    fn sharded_bills_sync_events_on_the_pool() {
        let pool = Workers::new(2);
        let topo = Topology::disconnected(3);
        let before = pool.local_sync_event_count();
        let mut blocks = vec![0u64; 3];
        run_sharded(
            &pool,
            3,
            0,
            &mut blocks,
            &topo,
            |_, w, z| {
                w.region(|scope| {
                    scope.spawn(|| {});
                });
                *z = 1;
            },
            |_, _, _| {},
        );
        assert_eq!(pool.local_sync_event_count() - before, 3);
    }

    #[test]
    fn sharded_records_zone_events_per_shard_lane() {
        let mut pool = Workers::new(2);
        pool.set_flight(FlightRecorder::enabled(2, 64));
        let topo = Topology::chain(3);
        let mut blocks = vec![0u64; 3];
        run_sharded(
            &pool,
            2,
            7,
            &mut blocks,
            &topo,
            |_, _, z| *z += 1,
            |_, _, _| {},
        );
        let timeline = pool.flight().take_timeline();
        let mut starts = 0;
        let mut ends = 0;
        for lane in &timeline.lanes {
            for e in &lane.events {
                match e.kind {
                    llp::obs::EventKind::ZoneStart => {
                        starts += 1;
                        assert_eq!(e.region, 7, "zone events carry the step index");
                    }
                    llp::obs::EventKind::ZoneEnd => ends += 1,
                    _ => {}
                }
            }
        }
        assert_eq!(starts, 3, "one start per block");
        assert_eq!(ends, 3, "one end per block");
    }

    #[test]
    fn in_order_replay_matches_sequential_for_any_topological_order() {
        let topo = Topology::new(4, vec![(0, 1), (2, 3), (1, 2)]).unwrap();
        let want = reference(&topo);
        let dag = StepDag::build(&topo);
        // Reversed-wave order: still topological, different interleaving.
        let mut order: Vec<Task> = Vec::new();
        for wave in dag.waves() {
            order.extend(wave.into_iter().rev());
        }
        assert!(dag.is_topological(&order));
        let mut blocks: Vec<u64> = (0..topo.blocks() as u64).map(|b| b + 1).collect();
        run_in_order(
            &mut blocks,
            &topo,
            &order,
            |b, z| mix(z, b as u64),
            |i, a, b| {
                mix(a, *b ^ i as u64);
                mix(b, *a);
            },
        )
        .unwrap();
        assert_eq!(blocks, want);
        // A non-topological order is rejected before touching state.
        let bad = vec![Task::Exchange(0); order.len()];
        let mut untouched = vec![1u64; 4];
        assert!(run_in_order(&mut untouched, &topo, &bad, |_, _| {}, |_, _, _| {}).is_err());
        assert_eq!(untouched, vec![1; 4]);
    }
}
