//! Zone-level task scheduling layered over loop-level parallelism.
//!
//! The paper parallelizes *inner* loops precisely because its zone
//! counts were too small to feed 30–128 processors (Section 2). When
//! the zone count is *not* small, a second level of parallelism opens
//! up: zones whose zonal boundary conditions do not couple within a
//! time step can run concurrently, each still running its inner
//! doacross loops on a worker team. Taft's MLP work (paper Section 8)
//! multiplies usable parallelism to `U_zones × U_loops`; this crate is
//! the scheduler that realizes the product.
//!
//! Three layers:
//!
//! * [`Topology`] — which blocks exchange boundary data (the zonal-BC
//!   interface graph);
//! * [`StepDag`] — the per-step dependency DAG derived from a topology:
//!   compute tasks (one per block, independent within a step) followed
//!   by exchange tasks ordered so that conflicting exchanges (those
//!   sharing an endpoint block) retain the canonical sequential order.
//!   Any topological execution order of this DAG yields bit-identical
//!   state, which is what makes zone scheduling safe for a service
//!   whose cache keys assume determinism;
//! * [`run_sharded`] — dispatch ready compute tasks across `shards`
//!   zone shards ([`llp::Workers`] kernel views of one pool, so the
//!   caller's synchronization-event bill still covers every inner
//!   region), join at the step barrier, then apply exchanges in
//!   canonical order.
//!
//! The 1-shard case degenerates to the classic sequential zone sweep —
//! pinned bit-exact by the `f3d` test-suite — so callers can treat the
//! shard count as a pure performance knob.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dag;
mod sched;
mod topology;

pub use dag::{StepDag, Task};
pub use sched::{run_in_order, run_sequential, run_sharded, StepStats};
pub use topology::Topology;
