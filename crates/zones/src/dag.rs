//! The per-step dependency DAG derived from a zonal-BC topology.
//!
//! One time step decomposes into **compute** tasks (one per block —
//! independent, because zonal coupling happens only at step boundaries)
//! and **exchange** tasks (one per interface). Edges:
//!
//! * `Compute(a) → Exchange(i)` and `Compute(b) → Exchange(i)` for
//!   every interface `i = (a, b)`: an exchange reads and writes both
//!   endpoint blocks, so it waits for both computes;
//! * `Exchange(i) → Exchange(j)` for `i < j` sharing an endpoint:
//!   exchanges touching a common block do not commute in general (the
//!   second reads planes the first may have written), so conflicting
//!   exchanges keep the canonical interface order.
//!
//! Every edge goes from a lower task id to a higher one, so the DAG is
//! acyclic **by construction** — the canonical order (computes by block
//! index, then exchanges by interface index) is always a topological
//! order, and [`StepDag::waves`] assigns every task a level. That is
//! the no-deadlock argument the property suite exercises on random
//! topologies. Exchanges on disjoint block pairs touch disjoint state
//! and commute, so *any* topological order yields bit-identical state.

use crate::topology::Topology;

/// One schedulable unit of a time step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// Step the block with this index.
    Compute(usize),
    /// Apply the zonal exchange for the interface with this index.
    Exchange(usize),
}

/// The dependency DAG for one time step of a [`Topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepDag {
    blocks: usize,
    interfaces: usize,
    /// Predecessor task ids, indexed by task id.
    preds: Vec<Vec<usize>>,
}

impl StepDag {
    /// Derive the step DAG from a topology.
    #[must_use]
    pub fn build(topo: &Topology) -> Self {
        let blocks = topo.blocks();
        let interfaces = topo.interfaces().len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); blocks + interfaces];
        for (i, &(a, b)) in topo.interfaces().iter().enumerate() {
            let ex = blocks + i;
            preds[ex].push(a);
            preds[ex].push(b);
            for (j, &(c, d)) in topo.interfaces().iter().enumerate().take(i) {
                if a == c || a == d || b == c || b == d {
                    preds[ex].push(blocks + j);
                }
            }
        }
        Self {
            blocks,
            interfaces,
            preds,
        }
    }

    /// Total task count: one compute per block plus one exchange per
    /// interface.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.blocks + self.interfaces
    }

    /// The task with id `id` (computes occupy `0..blocks`, exchanges
    /// follow).
    ///
    /// # Panics
    /// Panics if `id >= task_count()`.
    #[must_use]
    pub fn task(&self, id: usize) -> Task {
        assert!(id < self.task_count(), "task id {id} out of range");
        if id < self.blocks {
            Task::Compute(id)
        } else {
            Task::Exchange(id - self.blocks)
        }
    }

    /// The id of `task`.
    ///
    /// # Panics
    /// Panics if the task's index is out of range for this DAG.
    #[must_use]
    pub fn id(&self, task: Task) -> usize {
        match task {
            Task::Compute(b) => {
                assert!(b < self.blocks, "block {b} out of range");
                b
            }
            Task::Exchange(i) => {
                assert!(i < self.interfaces, "interface {i} out of range");
                self.blocks + i
            }
        }
    }

    /// Predecessor task ids of task `id`.
    #[must_use]
    pub fn preds(&self, id: usize) -> &[usize] {
        &self.preds[id]
    }

    /// Level sets of the DAG: wave 0 holds tasks with no predecessor,
    /// wave `k` holds tasks whose deepest predecessor sits in wave
    /// `k - 1`. Every task appears in exactly one wave (the DAG is
    /// acyclic by construction), so `waves().concat()` is itself a
    /// topological order.
    #[must_use]
    pub fn waves(&self) -> Vec<Vec<Task>> {
        let mut level = vec![0usize; self.task_count()];
        // Predecessors always have smaller ids, so one forward pass
        // settles every level.
        for id in 0..self.task_count() {
            level[id] = self.preds[id]
                .iter()
                .map(|&p| level[p] + 1)
                .max()
                .unwrap_or(0);
        }
        let depth = level.iter().copied().max().map_or(0, |d| d + 1);
        let mut waves = vec![Vec::new(); depth];
        for id in 0..self.task_count() {
            waves[level[id]].push(self.task(id));
        }
        waves
    }

    /// The widest wave — the peak number of simultaneously ready tasks,
    /// an upper bound on useful zone shards.
    #[must_use]
    pub fn peak_ready(&self) -> usize {
        self.waves().iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Number of waves containing exchange tasks — the length of the
    /// serialized exchange tail (for a J-chain every exchange conflicts
    /// with the next, so this equals the interface count).
    #[must_use]
    pub fn exchange_waves(&self) -> usize {
        self.waves()
            .iter()
            .filter(|w| w.iter().any(|t| matches!(t, Task::Exchange(_))))
            .count()
    }

    /// Whether `order` is a topological execution order: every task
    /// exactly once, every task after all of its predecessors.
    #[must_use]
    pub fn is_topological(&self, order: &[Task]) -> bool {
        if order.len() != self.task_count() {
            return false;
        }
        let mut position = vec![usize::MAX; self.task_count()];
        for (pos, &task) in order.iter().enumerate() {
            let id = match task {
                Task::Compute(b) if b < self.blocks => b,
                Task::Exchange(i) if i < self.interfaces => self.blocks + i,
                _ => return false,
            };
            if position[id] != usize::MAX {
                return false;
            }
            position[id] = pos;
        }
        (0..self.task_count()).all(|id| self.preds[id].iter().all(|&p| position[p] < position[id]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_dag_orders_conflicting_exchanges() {
        let dag = StepDag::build(&Topology::chain(3));
        assert_eq!(dag.task_count(), 5);
        // Exchange 0 = (0,1) waits on both computes; exchange 1 = (1,2)
        // additionally waits on exchange 0 (shared block 1).
        assert_eq!(dag.preds(dag.id(Task::Exchange(0))), &[0, 1]);
        assert_eq!(dag.preds(dag.id(Task::Exchange(1))), &[1, 2, 3]);
        let waves = dag.waves();
        assert_eq!(
            waves[0],
            vec![Task::Compute(0), Task::Compute(1), Task::Compute(2)]
        );
        assert_eq!(waves[1], vec![Task::Exchange(0)]);
        assert_eq!(waves[2], vec![Task::Exchange(1)]);
        assert_eq!(dag.peak_ready(), 3);
        assert_eq!(dag.exchange_waves(), 2);
    }

    #[test]
    fn disconnected_dag_is_one_wave() {
        let dag = StepDag::build(&Topology::disconnected(4));
        assert_eq!(dag.waves().len(), 1);
        assert_eq!(dag.peak_ready(), 4);
        assert_eq!(dag.exchange_waves(), 0);
    }

    #[test]
    fn disjoint_exchanges_share_a_wave() {
        // Two independent pairs: both exchanges become ready together.
        let topo = Topology::new(4, vec![(0, 1), (2, 3)]).unwrap();
        let dag = StepDag::build(&topo);
        let waves = dag.waves();
        assert_eq!(waves.len(), 2);
        assert_eq!(waves[1], vec![Task::Exchange(0), Task::Exchange(1)]);
    }

    #[test]
    fn canonical_order_is_topological_and_violations_are_caught() {
        let dag = StepDag::build(&Topology::chain(3));
        let canonical: Vec<Task> = (0..dag.task_count()).map(|id| dag.task(id)).collect();
        assert!(dag.is_topological(&canonical));
        // Swapping the conflicting exchanges breaks the order.
        let mut swapped = canonical.clone();
        swapped.swap(3, 4);
        assert!(!dag.is_topological(&swapped));
        // Dropping or duplicating a task breaks it too.
        assert!(!dag.is_topological(&canonical[1..]));
        let mut duplicated = canonical;
        duplicated[0] = Task::Compute(1);
        assert!(!dag.is_topological(&duplicated));
    }
}
