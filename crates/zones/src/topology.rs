//! The zonal-BC interface graph: which blocks exchange boundary data.

/// An undirected interface graph over `blocks` zone blocks.
///
/// Interfaces are stored with endpoints ordered `a < b` and kept in the
/// order given at construction — that order *is* the canonical exchange
/// order the scheduler preserves for conflicting interfaces, matching
/// the sequential sweep (`inject(0→1)`, `inject(1→2)`, …) the solver
/// has always used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    blocks: usize,
    interfaces: Vec<(usize, usize)>,
}

impl Topology {
    /// Build a topology, validating every interface.
    ///
    /// # Errors
    /// Rejects an empty block set, an interface with `a >= b` (self
    /// loops and unordered endpoints), an endpoint out of range, and
    /// duplicate interfaces.
    pub fn new(blocks: usize, interfaces: Vec<(usize, usize)>) -> Result<Self, String> {
        if blocks == 0 {
            return Err("topology needs at least one block".to_string());
        }
        for (i, &(a, b)) in interfaces.iter().enumerate() {
            if a >= b {
                return Err(format!(
                    "interface {i} endpoints must satisfy a < b, got ({a},{b})"
                ));
            }
            if b >= blocks {
                return Err(format!(
                    "interface {i} endpoint {b} out of range for {blocks} blocks"
                ));
            }
            if interfaces[..i].contains(&(a, b)) {
                return Err(format!("duplicate interface ({a},{b})"));
            }
        }
        Ok(Self { blocks, interfaces })
    }

    /// A J-chained topology: block `i` exchanges with block `i + 1`,
    /// the shape `mesh::MultiZoneGrid::split_j`-style grids produce.
    ///
    /// # Panics
    /// Panics if `blocks == 0`.
    #[must_use]
    pub fn chain(blocks: usize) -> Self {
        assert!(blocks > 0, "topology needs at least one block");
        Self {
            blocks,
            interfaces: (0..blocks.saturating_sub(1)).map(|i| (i, i + 1)).collect(),
        }
    }

    /// A topology with no interfaces at all — fully independent blocks.
    ///
    /// # Panics
    /// Panics if `blocks == 0`.
    #[must_use]
    pub fn disconnected(blocks: usize) -> Self {
        assert!(blocks > 0, "topology needs at least one block");
        Self {
            blocks,
            interfaces: Vec::new(),
        }
    }

    /// Number of blocks.
    #[must_use]
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// The interfaces, in canonical exchange order.
    #[must_use]
    pub fn interfaces(&self) -> &[(usize, usize)] {
        &self.interfaces
    }

    /// Blocks sharing an interface with `block`, in interface order.
    #[must_use]
    pub fn neighbors(&self, block: usize) -> Vec<usize> {
        self.interfaces
            .iter()
            .filter_map(|&(a, b)| {
                if a == block {
                    Some(b)
                } else if b == block {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_links_every_adjacent_pair() {
        let t = Topology::chain(4);
        assert_eq!(t.blocks(), 4);
        assert_eq!(t.interfaces(), &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(t.neighbors(1), vec![0, 2]);
        assert_eq!(t.neighbors(3), vec![2]);
    }

    #[test]
    fn single_block_chain_has_no_interfaces() {
        assert!(Topology::chain(1).interfaces().is_empty());
        assert!(Topology::disconnected(3).interfaces().is_empty());
    }

    #[test]
    fn validation_rejects_malformed_interfaces() {
        assert!(Topology::new(0, vec![]).is_err());
        assert!(Topology::new(2, vec![(1, 1)]).is_err());
        assert!(Topology::new(2, vec![(1, 0)]).is_err());
        assert!(Topology::new(2, vec![(0, 2)]).is_err());
        assert!(Topology::new(3, vec![(0, 1), (0, 1)]).is_err());
        let ok = Topology::new(3, vec![(0, 2), (0, 1)]).unwrap();
        assert_eq!(ok.interfaces(), &[(0, 2), (0, 1)]);
    }
}
