//! Property suite for the zone-step DAG: no deadlock on random
//! zonal-BC topologies, exchange-ordering invariance (any topological
//! execution order leaves the state bit-identical to the canonical
//! sequential sweep), and the degenerate shapes (one zone, fully
//! disconnected zones).

use proptest::prelude::*;
use zones::{run_in_order, run_sequential, run_sharded, StepDag, Task, Topology};

const MAX_BLOCKS: usize = 6;

/// A random valid topology: up to `MAX_BLOCKS` blocks, random
/// interface pairs normalized to `a < b` with duplicates dropped.
fn topology() -> impl Strategy<Value = Topology> {
    (
        1..=MAX_BLOCKS,
        prop::collection::vec((0..MAX_BLOCKS, 0..MAX_BLOCKS), 0..10),
    )
        .prop_map(|(blocks, raw)| {
            let mut interfaces: Vec<(usize, usize)> = Vec::new();
            for (x, y) in raw {
                let (a, b) = (x % blocks, y % blocks);
                let pair = (a.min(b), a.max(b));
                if pair.0 != pair.1 && !interfaces.contains(&pair) {
                    interfaces.push(pair);
                }
            }
            Topology::new(blocks, interfaces).expect("normalized interfaces are valid")
        })
}

/// A deliberately non-commutative state transition: if two conflicting
/// exchanges ever swap order, the final state moves.
fn mix(state: &mut u64, with: u64) {
    *state = state
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .rotate_left(17)
        .wrapping_add(with);
}

fn compute(b: usize, z: &mut u64) {
    mix(z, b as u64 + 101);
}

fn exchange(i: usize, a: &mut u64, b: &mut u64) {
    mix(a, *b ^ (i as u64 + 7));
    mix(b, *a);
}

fn initial(topo: &Topology) -> Vec<u64> {
    (0..topo.blocks() as u64)
        .map(|b| b.wrapping_mul(31) + 1)
        .collect()
}

fn canonical_result(topo: &Topology) -> Vec<u64> {
    let mut blocks = initial(topo);
    run_sequential(&mut blocks, topo, compute, exchange);
    blocks
}

/// Build a topological order by repeatedly picking among the ready
/// tasks with the `picks` stream — every topological order is reachable
/// for some stream, so the property quantifies over execution orders.
fn picked_order(dag: &StepDag, picks: &[usize]) -> Vec<Task> {
    let n = dag.task_count();
    let mut done = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for k in 0..n {
        let ready: Vec<usize> = (0..n)
            .filter(|&id| !done[id] && dag.preds(id).iter().all(|&p| done[p]))
            .collect();
        assert!(!ready.is_empty(), "acyclic DAG always has a ready task");
        let pick = ready[picks[k % picks.len().max(1)] % ready.len()];
        done[pick] = true;
        order.push(dag.task(pick));
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// No deadlock: on any topology the wave decomposition schedules
    /// every task exactly once, and its concatenation is topological.
    #[test]
    fn random_topologies_never_deadlock(topo in topology()) {
        let dag = StepDag::build(&topo);
        let waves = dag.waves();
        let scheduled: usize = waves.iter().map(Vec::len).sum();
        prop_assert_eq!(scheduled, dag.task_count());
        let flat: Vec<Task> = waves.concat();
        prop_assert!(dag.is_topological(&flat));
        prop_assert!(dag.peak_ready() >= 1);
        prop_assert!(waves.iter().all(|w| !w.is_empty()));
    }

    /// Exchange-ordering invariance: every topological execution order
    /// yields state bit-identical to the canonical sequential sweep.
    #[test]
    fn any_topological_order_is_bit_exact(
        topo in topology(),
        picks in prop::collection::vec(0..64usize, 32),
    ) {
        let want = canonical_result(&topo);
        let dag = StepDag::build(&topo);
        let order = picked_order(&dag, &picks);
        prop_assert!(dag.is_topological(&order));
        let mut blocks = initial(&topo);
        run_in_order(&mut blocks, &topo, &order, compute, exchange).unwrap();
        prop_assert_eq!(blocks, want);
    }

    /// The sharded runtime agrees with the sequential sweep for every
    /// shard count on any topology.
    #[test]
    fn sharded_execution_is_bit_exact(topo in topology(), extra in 0..3usize) {
        let want = canonical_result(&topo);
        let pool = llp::Workers::new(2);
        for shards in 1..=topo.blocks() + extra {
            let mut blocks = initial(&topo);
            let stats = run_sharded(
                &pool, shards, 0, &mut blocks, &topo,
                |b, _w, z| compute(b, z),
                exchange,
            );
            prop_assert_eq!(&blocks, &want, "shards={}", shards);
            prop_assert_eq!(stats.zone_tasks as usize, topo.blocks());
            prop_assert_eq!(stats.exchange_tasks as usize, topo.interfaces().len());
        }
    }
}

#[test]
fn degenerate_single_zone() {
    let topo = Topology::chain(1);
    let dag = StepDag::build(&topo);
    assert_eq!(dag.task_count(), 1);
    assert_eq!(dag.waves(), vec![vec![Task::Compute(0)]]);
    assert_eq!(dag.exchange_waves(), 0);
    let mut blocks = initial(&topo);
    let stats = run_sharded(
        &llp::Workers::new(2),
        4,
        0,
        &mut blocks,
        &topo,
        |b, _w, z| compute(b, z),
        exchange,
    );
    assert_eq!(stats.shards, 1, "shards clamp to the block count");
    assert_eq!(blocks, canonical_result(&topo));
}

#[test]
fn degenerate_disconnected_zones() {
    let topo = Topology::disconnected(5);
    let dag = StepDag::build(&topo);
    // Fully independent: one wave, all five computes ready at once.
    assert_eq!(dag.waves().len(), 1);
    assert_eq!(dag.peak_ready(), 5);
    let want = canonical_result(&topo);
    for shards in 1..=5 {
        let mut blocks = initial(&topo);
        run_sharded(
            &llp::Workers::new(2),
            shards,
            0,
            &mut blocks,
            &topo,
            |b, _w, z| compute(b, z),
            exchange,
        );
        assert_eq!(blocks, want, "shards={shards}");
    }
}
