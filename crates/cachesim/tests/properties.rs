//! Property-based tests for the cache/TLB simulator.

use cachesim::cache::{Cache, CacheConfig};
use cachesim::patterns::{page_sharing, GridTraversal, PencilGather};
use cachesim::tlb::{Tlb, TlbConfig};
use cachesim::{AccessKind, MemHierarchy};
use mesh::{Axis, Dims, Layout};
use proptest::prelude::*;

fn addr_trace() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..(1 << 20), 1..800)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// LRU stack property: a larger fully-associative cache with the
    /// same line size never misses more on any trace.
    #[test]
    fn lru_inclusion(trace in addr_trace()) {
        let mut small = Cache::new(CacheConfig::fully_associative(1 << 12, 64));
        let mut large = Cache::new(CacheConfig::fully_associative(1 << 14, 64));
        for &a in &trace {
            small.access(a);
            large.access(a);
        }
        prop_assert!(large.misses() <= small.misses());
    }

    /// Hits + misses equals the access count; miss rate in [0, 1].
    #[test]
    fn conservation(trace in addr_trace()) {
        let mut c = Cache::new(CacheConfig::new(1 << 13, 32, 4));
        for &a in &trace {
            c.access(a);
        }
        prop_assert_eq!(c.hits() + c.misses(), trace.len() as u64);
        prop_assert!((0.0..=1.0).contains(&c.miss_rate()));
    }

    /// Replaying a trace immediately (working set <= capacity) hits
    /// 100% if the distinct line count fits the fully-assoc cache.
    #[test]
    fn warm_replay_hits(trace in prop::collection::vec(0u64..(1 << 14), 1..200)) {
        let cfg = CacheConfig::fully_associative(1 << 14, 32);
        let mut lines: Vec<u64> = trace.iter().map(|a| a / 32).collect();
        lines.sort_unstable();
        lines.dedup();
        prop_assume!(lines.len() <= cfg.size_bytes / cfg.line_bytes);
        let mut c = Cache::new(cfg);
        for &a in &trace {
            c.access(a);
        }
        c.reset_counters();
        for &a in &trace {
            c.access(a);
        }
        prop_assert_eq!(c.misses(), 0);
    }

    /// The TLB obeys the same conservation and warm-replay laws.
    #[test]
    fn tlb_conservation(trace in addr_trace()) {
        let mut t = Tlb::new(TlbConfig::new(32, 4096));
        for &a in &trace {
            t.access(a);
        }
        prop_assert_eq!(t.hits() + t.misses(), trace.len() as u64);
        // Distinct pages bound the misses from below... and from above
        // only without capacity evictions; check the lower bound.
        let mut pages: Vec<u64> = trace.iter().map(|a| a / 4096).collect();
        pages.sort_unstable();
        pages.dedup();
        prop_assert!(t.misses() >= pages.len() as u64);
    }

    /// Hierarchy counters are consistent: L2 misses never exceed L1
    /// misses, which never exceed accesses.
    #[test]
    fn hierarchy_counter_ordering(trace in addr_trace()) {
        let mut h = MemHierarchy::new(
            CacheConfig::new(1 << 12, 32, 2),
            Some(CacheConfig::new(1 << 15, 64, 4)),
            TlbConfig::new(16, 4096),
        );
        for &a in &trace {
            h.access(a, AccessKind::Load);
        }
        let c = h.counters();
        prop_assert!(c.l2_misses <= c.l1_misses);
        prop_assert!(c.l1_misses <= c.accesses());
        prop_assert!(c.tlb_misses <= c.accesses());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every traversal order visits every element exactly once.
    #[test]
    fn traversals_are_permutations(j in 2usize..12, k in 2usize..12, l in 2usize..12) {
        let d = Dims::new(j, k, l);
        for t in [GridTraversal::example4a(d), GridTraversal::example4b(d)] {
            let mut addrs: Vec<u64> = t.addresses().collect();
            addrs.sort_unstable();
            addrs.dedup();
            prop_assert_eq!(addrs.len(), d.points());
        }
        let mut addrs: Vec<u64> = PencilGather::example4c(d).addresses().collect();
        addrs.sort_unstable();
        addrs.dedup();
        prop_assert_eq!(addrs.len(), d.points());
    }

    /// Page sharing totals equal the array footprint, and a single
    /// worker never shares.
    #[test]
    fn sharing_totals(j in 2usize..16, k in 2usize..16, l in 2usize..16, w in 1usize..9) {
        let d = Dims::new(j, k, l);
        for axis in [Axis::J, Axis::K, Axis::L] {
            let s = page_sharing(d, Layout::jkl(), axis, w, 4096);
            let bytes = d.points() as u64 * 8;
            prop_assert_eq!(s.total_pages, bytes.div_ceil(4096));
            prop_assert!(s.shared_pages <= s.total_pages);
            prop_assert!(u64::from(s.max_sharers) <= w.min(d.extent(axis)) as u64);
            if w == 1 {
                prop_assert_eq!(s.shared_pages, 0);
            }
        }
    }

    /// Parallelizing the fastest-varying axis always shares at least as
    /// much as parallelizing the slowest (for >= 2 effective workers).
    #[test]
    fn fastest_axis_shares_most(j in 4usize..14, k in 4usize..14, l in 4usize..14) {
        let d = Dims::new(j, k, l);
        let fast = page_sharing(d, Layout::jkl(), Axis::J, 4, 1024);
        let slow = page_sharing(d, Layout::jkl(), Axis::L, 4, 1024);
        prop_assert!(fast.shared_fraction() >= slow.shared_fraction() - 1e-12);
    }
}
