//! Set-associative LRU caches.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set); use `usize::MAX` via
    /// [`CacheConfig::fully_associative`] for a fully-associative cache.
    pub associativity: usize,
}

impl CacheConfig {
    /// Create a configuration.
    ///
    /// # Panics
    /// Panics unless sizes are positive powers of two, the line divides
    /// the size, and the implied set count is at least one.
    #[must_use]
    pub fn new(size_bytes: usize, line_bytes: usize, associativity: usize) -> Self {
        assert!(
            size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(line_bytes <= size_bytes, "line larger than cache");
        let lines = size_bytes / line_bytes;
        assert!(
            associativity >= 1 && associativity <= lines,
            "bad associativity"
        );
        assert!(
            lines.is_multiple_of(associativity),
            "associativity must divide the line count"
        );
        Self {
            size_bytes,
            line_bytes,
            associativity,
        }
    }

    /// Fully-associative cache of the given size.
    #[must_use]
    pub fn fully_associative(size_bytes: usize, line_bytes: usize) -> Self {
        Self::new(size_bytes, line_bytes, size_bytes / line_bytes)
    }

    /// Direct-mapped cache of the given size.
    #[must_use]
    pub fn direct_mapped(size_bytes: usize, line_bytes: usize) -> Self {
        Self::new(size_bytes, line_bytes, 1)
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.size_bytes / self.line_bytes / self.associativity
    }
}

/// A set-associative write-back cache with true-LRU replacement.
///
/// Tags and dirty bits only — no data is stored; the simulator answers
/// hit/miss and counts dirty evictions (write-backs), the second half
/// of a write-back machine's memory traffic.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Per-set list of (tag, dirty), most recently used last.
    sets: Vec<Vec<(u64, bool)>>,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl Cache {
    /// Empty (cold) cache.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        Self {
            config,
            sets: vec![Vec::with_capacity(config.associativity); config.sets()],
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// The geometry.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Access a byte address; returns `true` on hit. Misses allocate
    /// (write-allocate policy, standard for the machines in the paper);
    /// `is_store` marks the line dirty, and evicting a dirty line
    /// counts a write-back.
    pub fn access_rw(&mut self, addr: u64, is_store: bool) -> bool {
        let line = addr / self.config.line_bytes as u64;
        let set_idx = (line % self.config.sets() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&(t, _)| t == line) {
            // hit: move to MRU position, accumulate dirtiness
            let (tag, dirty) = set.remove(pos);
            set.push((tag, dirty || is_store));
            self.hits += 1;
            true
        } else {
            if set.len() == self.config.associativity {
                let (_, dirty) = set.remove(0); // evict LRU
                if dirty {
                    self.writebacks += 1;
                }
            }
            set.push((line, is_store));
            self.misses += 1;
            false
        }
    }

    /// Access as a load (kept for API compatibility and read-only
    /// traces).
    pub fn access(&mut self, addr: u64) -> bool {
        self.access_rw(addr, false)
    }

    /// Hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty-line evictions (write-backs) so far.
    #[must_use]
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Miss rate in `[0, 1]`; 0 for no accesses.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Reset counters but keep cache contents (for warm measurements).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }

    /// Empty the cache and reset counters.
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(CacheConfig::new(1024, 32, 2));
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(31)); // same line
        assert!(!c.access(32)); // next line
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        // Direct-mapped, 2 lines of 16B: addresses 0 and 32 conflict.
        let mut c = Cache::new(CacheConfig::direct_mapped(32, 16));
        assert!(!c.access(0));
        assert!(!c.access(32)); // evicts line 0
        assert!(!c.access(0)); // miss again
    }

    #[test]
    fn associativity_prevents_conflict() {
        // 2-way, 2 sets: lines 0 and 2 map to set 0 and coexist.
        let mut c = Cache::new(CacheConfig::new(64, 16, 2));
        assert!(!c.access(0)); // line 0, set 0
        assert!(!c.access(32)); // line 2, set 0
        assert!(c.access(0));
        assert!(c.access(32));
        // LRU order after the two hits is [0, 32]: inserting a third
        // conflicting line (addr 64) evicts 0; re-touching 0 then evicts
        // 32, and 64 (still MRU-adjacent) survives.
        assert!(!c.access(64)); // evicts 0
        assert!(!c.access(0)); // evicts 32
        assert!(c.access(64));
    }

    #[test]
    fn sequential_streaming_miss_rate_is_inverse_line_size() {
        let mut c = Cache::new(CacheConfig::new(1 << 15, 64, 4));
        for i in 0..8192u64 {
            c.access(i * 8); // stride-8 doubles
        }
        // 8 doubles per 64-B line: miss rate 1/8.
        assert!((c.miss_rate() - 0.125).abs() < 1e-9, "{}", c.miss_rate());
    }

    #[test]
    fn large_stride_misses_every_access() {
        let mut c = Cache::new(CacheConfig::new(1 << 15, 64, 4));
        for i in 0..4096u64 {
            c.access(i * 4096); // stride >> line: every access a new line
        }
        assert!((c.miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn working_set_fits_or_thrashes() {
        let cfg = CacheConfig::fully_associative(4096, 64);
        // Working set = cache size: after warmup, all hits.
        let mut c = Cache::new(cfg);
        for _ in 0..2 {
            for i in 0..64u64 {
                c.access(i * 64);
            }
        }
        assert_eq!(c.misses(), 64); // only cold misses
                                    // Working set = 2x cache size with LRU: 100% misses forever.
        let mut c = Cache::new(cfg);
        for _ in 0..3 {
            for i in 0..128u64 {
                c.access(i * 64);
            }
        }
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn writeback_only_on_dirty_eviction() {
        // Direct-mapped, 2 lines of 16B: addresses 0 and 32 conflict.
        let mut c = Cache::new(CacheConfig::direct_mapped(32, 16));
        c.access_rw(0, false); // clean line
        c.access_rw(32, false); // evicts clean line 0: no writeback
        assert_eq!(c.writebacks(), 0);
        c.access_rw(0, true); // dirty line 0 evicts clean 32
        assert_eq!(c.writebacks(), 0);
        c.access_rw(32, false); // evicts DIRTY line 0
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn store_hit_dirties_resident_line() {
        let mut c = Cache::new(CacheConfig::direct_mapped(32, 16));
        c.access_rw(0, false); // clean
        c.access_rw(4, true); // store hit on the same line: now dirty
        c.access_rw(32, false); // evicts it
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn flush_and_reset() {
        let mut c = Cache::new(CacheConfig::new(1024, 32, 2));
        c.access(0);
        c.reset_counters();
        assert_eq!(c.misses(), 0);
        assert!(c.access(0)); // contents kept
        c.flush();
        assert!(!c.access(0)); // contents gone
    }

    #[test]
    fn miss_rate_zero_when_untouched() {
        let c = Cache::new(CacheConfig::new(1024, 32, 2));
        assert_eq!(c.miss_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_panics() {
        let _ = CacheConfig::new(1000, 32, 2);
    }

    #[test]
    #[should_panic(expected = "bad associativity")]
    fn bad_assoc_panics() {
        let _ = CacheConfig::new(1024, 32, 64);
    }
}
