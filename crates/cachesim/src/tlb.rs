//! A fully-associative LRU translation lookaside buffer.
//!
//! TLB misses were the second quantity (after cache misses) the paper's
//! `prof`/pixie subtraction exposed; large-stride plane traversals of
//! big zones blow the TLB long before they blow the L2 cache.

/// TLB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: usize,
    /// Page size in bytes.
    pub page_bytes: usize,
}

impl TlbConfig {
    /// Create a configuration.
    ///
    /// # Panics
    /// Panics if `entries == 0` or the page size is not a power of two.
    #[must_use]
    pub fn new(entries: usize, page_bytes: usize) -> Self {
        assert!(entries > 0, "TLB needs at least one entry");
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Self {
            entries,
            page_bytes,
        }
    }

    /// Memory reach of the TLB in bytes.
    #[must_use]
    pub fn reach_bytes(&self) -> usize {
        self.entries * self.page_bytes
    }
}

/// A fully-associative LRU TLB (tags only).
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    /// Resident page numbers, most recently used last.
    pages: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Empty TLB.
    #[must_use]
    pub fn new(config: TlbConfig) -> Self {
        Self {
            config,
            pages: Vec::with_capacity(config.entries),
            hits: 0,
            misses: 0,
        }
    }

    /// The geometry.
    #[must_use]
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Translate a byte address; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let page = addr / self.config.page_bytes as u64;
        if let Some(pos) = self.pages.iter().position(|&p| p == page) {
            let p = self.pages.remove(pos);
            self.pages.push(p);
            self.hits += 1;
            true
        } else {
            if self.pages.len() == self.config.entries {
                self.pages.remove(0);
            }
            self.pages.push(page);
            self.misses += 1;
            false
        }
    }

    /// Hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate in `[0, 1]`; 0 for no accesses.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Reset counters, keeping resident pages.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_locality_hits() {
        let mut t = Tlb::new(TlbConfig::new(4, 4096));
        assert!(!t.access(0));
        assert!(t.access(8)); // same page
        assert!(t.access(4095));
        assert!(!t.access(4096)); // next page
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(TlbConfig::new(2, 4096));
        t.access(0); // page 0
        t.access(4096); // page 1
        t.access(0); // hit: page 0 becomes MRU
        t.access(8192); // page 2 evicts page 1
        assert!(t.access(0)); // still resident
        assert!(!t.access(4096)); // was evicted
    }

    #[test]
    fn reach() {
        let cfg = TlbConfig::new(64, 16384);
        assert_eq!(cfg.reach_bytes(), 1 << 20);
    }

    #[test]
    fn stride_beyond_reach_thrashes() {
        let cfg = TlbConfig::new(8, 4096);
        let mut t = Tlb::new(cfg);
        // Touch 16 distinct pages repeatedly: with 8 entries and LRU,
        // every access misses.
        for _ in 0..3 {
            for p in 0..16u64 {
                t.access(p * 4096);
            }
        }
        assert_eq!(t.hits(), 0);
    }

    #[test]
    fn reset_keeps_pages() {
        let mut t = Tlb::new(TlbConfig::new(4, 4096));
        t.access(0);
        t.reset_counters();
        assert_eq!(t.misses(), 0);
        assert!(t.access(0));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_panics() {
        let _ = TlbConfig::new(0, 4096);
    }
}
