//! Cache geometries of the machines the paper used (Table 5).
//!
//! Values are period-accurate to the published specifications where
//! those are unambiguous and representative otherwise; the experiments
//! depend on the *ratios* (pencil ≪ cache ≪ plane, TLB reach ≪ zone)
//! rather than on exact byte counts, and each constant is documented so
//! it can be adjusted.

use crate::cache::CacheConfig;
use crate::cost::CycleModel;
use crate::hierarchy::MemHierarchy;
use crate::tlb::TlbConfig;

/// A named single-processor memory-system preset.
#[derive(Debug, Clone, Copy)]
pub struct MachineMemory {
    /// Machine name.
    pub name: &'static str,
    /// Clock rate, Hz.
    pub clock_hz: f64,
    /// Peak MFLOPS of one processor.
    pub peak_mflops: f64,
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Unified/external L2, if present.
    pub l2: Option<CacheConfig>,
    /// Data TLB.
    pub tlb: TlbConfig,
    /// Cycle cost model.
    pub cost: CycleModel,
}

impl MachineMemory {
    /// Build a cold memory hierarchy for one processor of this machine.
    #[must_use]
    pub fn hierarchy(&self) -> MemHierarchy {
        MemHierarchy::new(self.l1, self.l2, self.tlb)
    }

    /// The capacity (bytes) of the cache level the paper sizes scratch
    /// arrays against — L2 when present, else L1.
    #[must_use]
    pub fn scratch_cache_bytes(&self) -> usize {
        self.l2.map_or(self.l1.size_bytes, |c| c.size_bytes)
    }
}

/// SGI Origin 2000, 300-MHz R12000: 32-KB 2-way L1 (32-B lines), 8-MB
/// 2-way unified L2 (128-B lines), 64-entry TLB with 16-KB pages.
/// Peak 600 MFLOPS (madd per cycle).
#[must_use]
pub fn origin2000_r12k() -> MachineMemory {
    MachineMemory {
        name: "SGI Origin 2000 (R12000, 300 MHz)",
        clock_hz: 300e6,
        peak_mflops: 600.0,
        l1: CacheConfig::new(32 << 10, 32, 2),
        l2: Some(CacheConfig::new(8 << 20, 128, 2)),
        tlb: TlbConfig::new(64, 16 << 10),
        cost: CycleModel {
            issue_width: 4.0,
            l1_miss_penalty: 10.0,
            // ~100 ns local-memory latency at 300 MHz ≈ 30+ cycles; the
            // Origin's directory adds more for remote lines (handled by
            // smpsim's NUMA model); 64 cycles is the UMA-ish average.
            l2_miss_penalty: 64.0,
            tlb_miss_penalty: 60.0,
        },
    }
}

/// SGI Origin 2000, 195-MHz R10000: 4-MB L2. Peak 390 MFLOPS.
#[must_use]
pub fn origin2000_r10k_195() -> MachineMemory {
    MachineMemory {
        name: "SGI Origin 2000 (R10000, 195 MHz)",
        clock_hz: 195e6,
        peak_mflops: 390.0,
        l1: CacheConfig::new(32 << 10, 32, 2),
        l2: Some(CacheConfig::new(4 << 20, 128, 2)),
        tlb: TlbConfig::new(64, 16 << 10),
        cost: CycleModel {
            issue_width: 4.0,
            l1_miss_penalty: 8.0,
            l2_miss_penalty: 48.0,
            tlb_miss_penalty: 50.0,
        },
    }
}

/// SUN HPC 10000 (Starfire), 400-MHz UltraSPARC II: 16-KB direct-mapped
/// L1 (32-B lines), 4-MB direct-mapped external cache (64-B lines),
/// 64-entry TLB with 8-KB pages. Peak 800 MFLOPS.
#[must_use]
pub fn hpc10000_ultrasparc2() -> MachineMemory {
    MachineMemory {
        name: "SUN HPC 10000 (UltraSPARC II, 400 MHz)",
        clock_hz: 400e6,
        peak_mflops: 800.0,
        l1: CacheConfig::direct_mapped(16 << 10, 32),
        l2: Some(CacheConfig::direct_mapped(4 << 20, 64)),
        tlb: TlbConfig::new(64, 8 << 10),
        cost: CycleModel {
            issue_width: 4.0,
            l1_miss_penalty: 10.0,
            // The Starfire's snoopy Gigaplane-XB backplane runs ~500 ns
            // under load ≈ 200 cycles at 400 MHz — the reason the
            // higher-peak SUN delivers slightly less than the Origin in
            // the paper's Table 4.
            l2_miss_penalty: 200.0,
            tlb_miss_penalty: 50.0,
        },
    }
}

/// SGI Power Challenge, 90-MHz R8000: the paper's serial-tuning machine
/// (">10x speedup"). 16-KB L1 with a 4-MB 4-way streaming L2.
/// Peak 360 MFLOPS.
#[must_use]
pub fn power_challenge_r8k() -> MachineMemory {
    MachineMemory {
        name: "SGI Power Challenge (R8000, 90 MHz)",
        clock_hz: 90e6,
        peak_mflops: 360.0,
        l1: CacheConfig::direct_mapped(16 << 10, 32),
        l2: Some(CacheConfig::new(4 << 20, 128, 4)),
        tlb: TlbConfig::new(48, 16 << 10),
        cost: CycleModel {
            issue_width: 4.0,
            l1_miss_penalty: 6.0,
            // Shared-bus memory: ~1 µs under load at 90 MHz.
            l2_miss_penalty: 90.0,
            tlb_miss_penalty: 40.0,
        },
    }
}

/// Convex Exemplar SPP-1000, 100-MHz PA-7100: 1-MB direct-mapped
/// off-chip L1, no L2, 4-KB pages. The heavily-NUMA machine whose
/// performance problems "were never satisfactorily solved".
#[must_use]
pub fn exemplar_spp1000() -> MachineMemory {
    MachineMemory {
        name: "Convex Exemplar SPP-1000 (PA-7100, 100 MHz)",
        clock_hz: 100e6,
        peak_mflops: 200.0,
        l1: CacheConfig::direct_mapped(1 << 20, 32),
        l2: None,
        tlb: TlbConfig::new(120, 4 << 10),
        cost: CycleModel {
            issue_width: 2.0,
            l1_miss_penalty: 0.0, // no L2: every L1 miss is a memory miss
            // CTI ring latency for remote hypernode accesses is brutal
            // (~2 µs); 55 cycles is the local-memory cost, the NUMA
            // multiplier lives in smpsim.
            l2_miss_penalty: 55.0,
            tlb_miss_penalty: 30.0,
        },
    }
}

/// HP V2500, 440-MHz PA-8500: 1-MB on-chip 4-way L1 data cache, no L2.
/// Peak 1760 MFLOPS (2 fma/cycle). The 16-processor machine in Fig. 2.
#[must_use]
pub fn hp_v2500() -> MachineMemory {
    MachineMemory {
        name: "HP V2500 (PA-8500, 440 MHz)",
        clock_hz: 440e6,
        peak_mflops: 1760.0,
        l1: CacheConfig::new(1 << 20, 64, 4),
        l2: None,
        tlb: TlbConfig::new(160, 4 << 10),
        cost: CycleModel {
            issue_width: 4.0,
            l1_miss_penalty: 0.0,
            l2_miss_penalty: 116.0,
            tlb_miss_penalty: 40.0,
        },
    }
}

/// Cray T3E-900, 450-MHz Alpha EV5: 8-KB L1 and a 96-KB on-chip L2
/// (modeled as 128 KB to satisfy the power-of-two geometry; the
/// conclusion only needs "far too small for pencil scratch"). The
/// machine class on which Behr "was impossible to perform many of the
/// cache optimizations" (paper Section 8).
#[must_use]
pub fn cray_t3e() -> MachineMemory {
    MachineMemory {
        name: "Cray T3E-900 (Alpha EV5, 450 MHz)",
        clock_hz: 450e6,
        peak_mflops: 900.0,
        l1: CacheConfig::direct_mapped(8 << 10, 32),
        l2: Some(CacheConfig::new(128 << 10, 64, 4)),
        tlb: TlbConfig::new(64, 8 << 10),
        cost: CycleModel {
            issue_width: 4.0,
            l1_miss_penalty: 8.0,
            l2_miss_penalty: 56.0,
            tlb_miss_penalty: 40.0,
        },
    }
}

/// All presets, for sweep harnesses.
#[must_use]
pub fn all() -> Vec<MachineMemory> {
    vec![
        origin2000_r12k(),
        origin2000_r10k_195(),
        hpc10000_ultrasparc2(),
        power_challenge_r8k(),
        exemplar_spp1000(),
        hp_v2500(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_hierarchies() {
        for m in all() {
            let h = m.hierarchy();
            assert_eq!(h.counters().accesses(), 0, "{}", m.name);
            assert!(m.clock_hz > 0.0);
            assert!(m.peak_mflops > 0.0);
        }
    }

    #[test]
    fn paper_peak_speeds() {
        // "The peak speed of a processor on the SUN system is 800
        // MFLOPS and 600 MFLOPS on the SGI system."
        assert_eq!(origin2000_r12k().peak_mflops, 600.0);
        assert_eq!(hpc10000_ultrasparc2().peak_mflops, 800.0);
    }

    #[test]
    fn scratch_cache_is_large_on_tuning_machines() {
        // The paper's cache optimizations assumed "caches with 1-8 MB".
        for m in all() {
            let mb = m.scratch_cache_bytes() >> 20;
            assert!((1..=8).contains(&mb), "{}: {} MB", m.name, mb);
        }
    }

    #[test]
    fn pencil_fits_plane_does_not() {
        // The key sizing claim: a 1000-point pencil's scratch fits the
        // scratch cache, a 450x350 plane's scratch does not.
        for m in all() {
            let cache = m.scratch_cache_bytes();
            let pencil = 1000 * 20 * 8; // 20 f64 scratch values per point
            let plane = 450 * 350 * 20 * 8;
            assert!(pencil <= cache / 2, "{}: pencil too big", m.name);
            assert!(plane > cache, "{}: plane fits?!", m.name);
        }
    }

    #[test]
    fn no_l2_machines_route_misses_to_memory() {
        let m = exemplar_spp1000();
        let mut h = m.hierarchy();
        h.access(0, crate::hierarchy::AccessKind::Load);
        assert_eq!(h.counters().l2_misses, 1);
    }
}
