//! Trace-driven cache + TLB simulation — the stand-in for the paper's
//! profiling toolchain (`prof`/`pixie`, Perfex, SpeedShop; Section 6).
//!
//! The serial-tuning half of the paper is driven entirely by memory
//! behaviour: cache and TLB miss counts decide which loop ordering wins,
//! whether scratch arrays fit in cache, and whether the tuned code's
//! memory traffic is low enough to treat a NUMA machine as UMA
//! (Section 7's 68 MB/s argument). Since the original hardware counters
//! are unavailable, this crate reproduces them deterministically:
//!
//! * [`cache`] — set-associative LRU caches;
//! * [`tlb`] — a fully-associative LRU TLB;
//! * [`hierarchy`] — an L1/L2/TLB stack with Perfex-style counters;
//! * [`cost`] — the pixie-style cycle model: perfect-memory cycles plus
//!   per-miss stall penalties, so `measured - pixie = memory stalls`;
//! * [`patterns`] — address-trace generators for structured-grid loop
//!   nests in any traversal order and storage layout (the Example 4
//!   access-ordering study), plus per-worker page-sharing analysis
//!   feeding the NUMA contention model in `smpsim`;
//! * [`presets`] — cache geometries of the machines in Table 5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cost;
pub mod hierarchy;
pub mod patterns;
pub mod presets;
pub mod tlb;

pub use cache::{Cache, CacheConfig};
pub use cost::{CycleModel, OverlapModel};
pub use hierarchy::{AccessKind, Counters, MemHierarchy};
pub use patterns::{page_sharing, GridTraversal, PencilGather, SolverSweep, SweepAccess};
pub use tlb::{Tlb, TlbConfig};
