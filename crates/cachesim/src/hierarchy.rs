//! The memory hierarchy: L1 + optional L2 + TLB, with Perfex-style
//! counters.

use crate::cache::{Cache, CacheConfig};
use crate::tlb::{Tlb, TlbConfig};

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A read.
    Load,
    /// A write (write-allocate).
    Store,
}

/// Perfex-style event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Loads issued.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 misses (equals memory-line fetches when an L2 is present).
    pub l2_misses: u64,
    /// TLB misses.
    pub tlb_misses: u64,
    /// Dirty lines written back to memory from the last cache level.
    pub writebacks: u64,
}

impl Counters {
    /// Total memory accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }
}

/// An L1/L2/TLB stack simulated per processor.
#[derive(Debug, Clone)]
pub struct MemHierarchy {
    l1: Cache,
    l2: Option<Cache>,
    tlb: Tlb,
    counters: Counters,
}

impl MemHierarchy {
    /// Build a hierarchy; pass `None` for machines without an L2.
    #[must_use]
    pub fn new(l1: CacheConfig, l2: Option<CacheConfig>, tlb: TlbConfig) -> Self {
        if let Some(l2c) = &l2 {
            assert!(
                l2c.size_bytes >= l1.size_bytes,
                "L2 must be at least as large as L1"
            );
        }
        Self {
            l1: Cache::new(l1),
            l2: l2.map(Cache::new),
            tlb: Tlb::new(tlb),
            counters: Counters::default(),
        }
    }

    /// Run one access through TLB and caches.
    pub fn access(&mut self, addr: u64, kind: AccessKind) {
        match kind {
            AccessKind::Load => self.counters.loads += 1,
            AccessKind::Store => self.counters.stores += 1,
        }
        if !self.tlb.access(addr) {
            self.counters.tlb_misses += 1;
        }
        let is_store = matches!(kind, AccessKind::Store);
        if !self.l1.access_rw(addr, is_store) {
            self.counters.l1_misses += 1;
            match &mut self.l2 {
                Some(l2) => {
                    if !l2.access_rw(addr, is_store) {
                        self.counters.l2_misses += 1;
                    }
                }
                None => self.counters.l2_misses += 1,
            }
        }
        // Approximation: last-level dirtiness is set by the stores that
        // reach it (L1 store misses). Stores absorbed by L1 hits dirty
        // only L1; their eventual L1→L2 write-back is not modeled, so
        // last-level write-back counts are a lower bound.
    }

    /// Convenience: run a whole address trace of loads.
    pub fn run_loads(&mut self, addrs: impl IntoIterator<Item = u64>) {
        for a in addrs {
            self.access(a, AccessKind::Load);
        }
    }

    /// Counter snapshot (write-backs read from the last cache level).
    #[must_use]
    pub fn counters(&self) -> Counters {
        let mut c = self.counters;
        c.writebacks = self
            .l2
            .as_ref()
            .map_or(self.l1.writebacks(), Cache::writebacks);
        c
    }

    /// L1 miss rate.
    #[must_use]
    pub fn l1_miss_rate(&self) -> f64 {
        self.l1.miss_rate()
    }

    /// TLB miss rate.
    #[must_use]
    pub fn tlb_miss_rate(&self) -> f64 {
        self.tlb.miss_rate()
    }

    /// Bytes moved to and from main memory: memory-level fetches plus
    /// dirty write-backs, × the line size of the last cache level.
    #[must_use]
    pub fn memory_traffic_bytes(&self) -> u64 {
        let line = self
            .l2
            .as_ref()
            .map_or(self.l1.config().line_bytes, |l2| l2.config().line_bytes);
        (self.counters.l2_misses + self.counters().writebacks) * line as u64
    }

    /// Sustained memory bandwidth demand in MB/s if the trace executes
    /// in `seconds` — the quantity compared against the Origin 2000's
    /// 135–195 MB/s off-node limits in Section 7.
    #[must_use]
    pub fn traffic_mb_per_s(&self, seconds: f64) -> f64 {
        assert!(seconds > 0.0, "duration must be positive");
        self.memory_traffic_bytes() as f64 / seconds / 1.0e6
    }

    /// Reset all counters (cache/TLB contents kept warm).
    pub fn reset_counters(&mut self) {
        self.l1.reset_counters();
        if let Some(l2) = &mut self.l2 {
            l2.reset_counters();
        }
        self.tlb.reset_counters();
        self.counters = Counters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MemHierarchy {
        MemHierarchy::new(
            CacheConfig::new(1 << 12, 32, 2),
            Some(CacheConfig::new(1 << 16, 128, 2)),
            TlbConfig::new(16, 4096),
        )
    }

    #[test]
    fn counts_loads_and_stores() {
        let mut m = small();
        m.access(0, AccessKind::Load);
        m.access(8, AccessKind::Store);
        let c = m.counters();
        assert_eq!(c.loads, 1);
        assert_eq!(c.stores, 1);
        assert_eq!(c.accesses(), 2);
    }

    #[test]
    fn l2_absorbs_l1_conflicts() {
        let mut m = small();
        // Two addresses conflicting in the 4-KB L1 but coexisting in
        // the 64-KB L2: alternate far beyond L1 associativity.
        let addrs: Vec<u64> = (0..8).map(|i| i * 4096).collect();
        for _ in 0..4 {
            for &a in &addrs {
                m.access(a, AccessKind::Load);
            }
        }
        let c = m.counters();
        assert!(c.l1_misses > c.l2_misses, "{c:?}");
        // Steady state: everything lives in L2, only 8 cold L2 misses.
        assert_eq!(c.l2_misses, 8);
    }

    #[test]
    fn traffic_counts_last_level_lines() {
        let mut m = small();
        m.access(0, AccessKind::Load); // one L2 miss -> one 128-B line
        assert_eq!(m.memory_traffic_bytes(), 128);
        assert!((m.traffic_mb_per_s(1.0) - 128e-6).abs() < 1e-12);
    }

    #[test]
    fn no_l2_means_l1_misses_go_to_memory() {
        let mut m = MemHierarchy::new(
            CacheConfig::new(1 << 12, 64, 2),
            None,
            TlbConfig::new(8, 4096),
        );
        m.access(0, AccessKind::Load);
        m.access(1 << 20, AccessKind::Load);
        assert_eq!(m.counters().l2_misses, 2);
        assert_eq!(m.memory_traffic_bytes(), 128);
    }

    #[test]
    fn unit_stride_sweep_has_low_miss_rates() {
        let mut m = small();
        m.run_loads((0..100_000u64).map(|i| i * 8));
        assert!(m.l1_miss_rate() < 0.3, "{}", m.l1_miss_rate());
        assert!(m.tlb_miss_rate() < 0.01, "{}", m.tlb_miss_rate());
    }

    #[test]
    fn page_stride_sweep_thrashes_tlb() {
        let mut m = small();
        // stride of one page over 64 pages with a 16-entry TLB
        for _ in 0..4 {
            for p in 0..64u64 {
                m.access(p * 4096, AccessKind::Load);
            }
        }
        assert!(m.tlb_miss_rate() > 0.9);
    }

    #[test]
    fn dirty_evictions_add_writeback_traffic() {
        // Stream stores through a working set twice the L2: every line
        // comes in dirty and leaves dirty — traffic approaches 2x the
        // fetch-only accounting.
        let mut m = small();
        let lines = 2 * (1 << 16) / 128;
        for _ in 0..3 {
            for i in 0..lines as u64 {
                m.access(i * 128, AccessKind::Store);
            }
        }
        let c = m.counters();
        assert!(c.writebacks > 0);
        let fetch_bytes = c.l2_misses * 128;
        let total = m.memory_traffic_bytes();
        assert!(
            total as f64 > 1.5 * fetch_bytes as f64,
            "total {total} vs fetch-only {fetch_bytes}"
        );
    }

    #[test]
    fn read_only_traces_never_write_back() {
        let mut m = small();
        m.run_loads((0..100_000u64).map(|i| i * 64));
        assert_eq!(m.counters().writebacks, 0);
    }

    #[test]
    fn reset_counters_keeps_warmth() {
        let mut m = small();
        m.access(0, AccessKind::Load);
        m.reset_counters();
        m.access(0, AccessKind::Load);
        let c = m.counters();
        assert_eq!(c.l1_misses, 0, "warm line must hit after reset");
    }

    #[test]
    #[should_panic(expected = "L2 must be at least as large")]
    fn tiny_l2_panics() {
        let _ = MemHierarchy::new(
            CacheConfig::new(1 << 14, 32, 2),
            Some(CacheConfig::new(1 << 12, 128, 2)),
            TlbConfig::new(8, 4096),
        );
    }
}
