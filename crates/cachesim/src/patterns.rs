//! Access-pattern generators for structured-grid loop nests —
//! the machinery behind the paper's Example 4 and Section 7.
//!
//! Example 4 contrasts three ways of sweeping `A(JMAX,KMAX,LMAX)`:
//!
//! * **(a)** loops `L, K, J` (outer→inner) over J-fastest storage —
//!   perfectly sequential, "the best possible access ordering";
//! * **(b)** loops `K, L, J` — unit-stride inner loop but plane-sized
//!   jumps between pencils: "acceptable, but less desirable";
//! * **(c)** a parallel J loop that gathers K-pencils through a
//!   STRIDE-N pattern into a buffer — the cache miss rate *can still be
//!   acceptable*, but on page-interleaved NUMA nodes the gather makes
//!   every processor touch every page: "unacceptable" contention.
//!
//! [`GridTraversal`] generates the address streams for (a) and (b),
//! [`PencilGather`] for (c), and [`page_sharing`] quantifies how many
//! pages end up shared between workers of a statically-scheduled
//! parallel loop — the input to `smpsim`'s contention model.

use mesh::{Axis, Dims, Ijk, Layout};
use std::collections::HashMap;

/// Bytes per grid-point element (f64).
pub const ELEM_BYTES: u64 = 8;

/// A full sweep of one zone array in a given loop order.
#[derive(Debug, Clone, Copy)]
pub struct GridTraversal {
    /// Zone dimensions.
    pub dims: Dims,
    /// Storage layout of the array.
    pub layout: Layout,
    /// Loop nesting, outermost first.
    pub order: [Axis; 3],
}

impl GridTraversal {
    /// Example 4(a): loops L, K, J over J-fastest storage.
    #[must_use]
    pub fn example4a(dims: Dims) -> Self {
        Self {
            dims,
            layout: Layout::jkl(),
            order: [Axis::L, Axis::K, Axis::J],
        }
    }

    /// Example 4(b): loops K, L, J over J-fastest storage.
    #[must_use]
    pub fn example4b(dims: Dims) -> Self {
        Self {
            dims,
            layout: Layout::jkl(),
            order: [Axis::K, Axis::L, Axis::J],
        }
    }

    /// The byte-address stream of the sweep (one access per point).
    pub fn addresses(&self) -> impl Iterator<Item = u64> + '_ {
        let [a0, a1, a2] = self.order;
        let d = self.dims;
        let lay = self.layout;
        (0..d.extent(a0)).flat_map(move |i0| {
            (0..d.extent(a1)).flat_map(move |i1| {
                (0..d.extent(a2)).map(move |i2| {
                    let mut p = Ijk::new(0, 0, 0);
                    for (axis, idx) in [(a0, i0), (a1, i1), (a2, i2)] {
                        match axis {
                            Axis::J => p.j = idx,
                            Axis::K => p.k = idx,
                            Axis::L => p.l = idx,
                        }
                    }
                    lay.offset(d, p) as u64 * ELEM_BYTES
                })
            })
        })
    }

    /// The stride, in bytes, of the innermost loop.
    #[must_use]
    pub fn inner_stride_bytes(&self) -> u64 {
        self.layout.stride_along(self.dims, self.order[2]) as u64 * ELEM_BYTES
    }
}

/// Example 4(c): for each (parallel_axis, third-axis) iteration, gather
/// a pencil along `gather_axis` into a buffer — the STRIDE-N batching
/// pattern of the vector code's SUBA.
#[derive(Debug, Clone, Copy)]
pub struct PencilGather {
    /// Zone dimensions.
    pub dims: Dims,
    /// Storage layout of the array being gathered from.
    pub layout: Layout,
    /// The parallelized (outermost) axis.
    pub parallel_axis: Axis,
    /// The axis gathered into the buffer (the recurrence direction).
    pub gather_axis: Axis,
}

impl PencilGather {
    /// Example 4(c) exactly: parallel over J, gathering K-pencils from
    /// J-fastest storage.
    #[must_use]
    pub fn example4c(dims: Dims) -> Self {
        Self {
            dims,
            layout: Layout::jkl(),
            parallel_axis: Axis::J,
            gather_axis: Axis::K,
        }
    }

    /// The third axis (neither parallel nor gathered).
    #[must_use]
    pub fn remaining_axis(&self) -> Axis {
        Axis::ALL
            .into_iter()
            .find(|&a| a != self.parallel_axis && a != self.gather_axis)
            .expect("three distinct axes")
    }

    /// Address stream of the full gather sweep (buffer writes excluded —
    /// the buffer is cache-resident by construction).
    pub fn addresses(&self) -> impl Iterator<Item = u64> + '_ {
        self.addresses_for_range(0..self.dims.extent(self.parallel_axis))
    }

    /// Address stream for a sub-range of the parallel axis — the
    /// accesses one worker performs under static scheduling.
    pub fn addresses_for_range(
        &self,
        par_range: std::ops::Range<usize>,
    ) -> impl Iterator<Item = u64> + '_ {
        let d = self.dims;
        let lay = self.layout;
        let pa = self.parallel_axis;
        let ga = self.gather_axis;
        let ra = self.remaining_axis();
        par_range.flat_map(move |ip| {
            (0..d.extent(ra)).flat_map(move |ir| {
                (0..d.extent(ga)).map(move |ig| {
                    let mut p = Ijk::new(0, 0, 0);
                    for (axis, idx) in [(pa, ip), (ra, ir), (ga, ig)] {
                        match axis {
                            Axis::J => p.j = idx,
                            Axis::K => p.k = idx,
                            Axis::L => p.l = idx,
                        }
                    }
                    lay.offset(d, p) as u64 * ELEM_BYTES
                })
            })
        })
    }

    /// The gather stride in bytes (the "STRIDE-N" of the paper).
    #[must_use]
    pub fn gather_stride_bytes(&self) -> u64 {
        self.layout.stride_along(self.dims, self.gather_axis) as u64 * ELEM_BYTES
    }

    /// The full Example 4(c) access stream *including* SUBB's work: for
    /// each pencil, the STRIDE-N gather followed by `compute_passes`
    /// sequential passes over the (cache-resident) buffer. The buffer
    /// lives in its own address region just past the array. This is why
    /// the paper says ordering (c) "can still have an acceptable cache
    /// miss rate": the gather's misses are diluted by the buffer work.
    pub fn addresses_with_compute(&self, compute_passes: usize) -> impl Iterator<Item = u64> + '_ {
        let d = self.dims;
        let ga = self.gather_axis;
        let ra = self.remaining_axis();
        let pa = self.parallel_axis;
        let buffer_base = (d.points() as u64).next_power_of_two() * ELEM_BYTES * 2;
        let glen = d.extent(ga);
        (0..d.extent(pa)).flat_map(move |ip| {
            (0..d.extent(ra)).flat_map(move |ir| {
                let gather = self
                    .addresses_for_range(ip..ip + 1)
                    .skip(ir * glen)
                    .take(glen);
                let compute = (0..compute_passes)
                    .flat_map(move |_| (0..glen as u64).map(move |i| buffer_base + i * ELEM_BYTES));
                gather.chain(compute)
            })
        })
    }
}

/// The access stream of one solver kernel over a zone, approximated at
/// the address level: per interior point, reads of the state at the
/// point and its six neighbors, metric reads, and a result write. Used
/// to measure the per-kernel miss rates that justify the constants in
/// `f3d::costmodel`.
///
/// Two storage styles are modeled:
/// * **AoS** (tuned): 5 consecutive f64 per point, single array;
/// * **SoA** (vector): 5 planes of one f64 per point each.
#[derive(Debug, Clone, Copy)]
pub struct SolverSweep {
    /// Zone dimensions.
    pub dims: Dims,
    /// Spatial layout.
    pub layout: Layout,
    /// Component-inner (AoS, `true`) or component-outer (SoA, `false`).
    pub aos: bool,
    /// Loop order of the sweep, outermost first.
    pub order: [Axis; 3],
}

/// One memory access of a solver sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepAccess {
    /// Byte address.
    pub addr: u64,
    /// Whether the access is a store.
    pub store: bool,
}

impl SolverSweep {
    /// The tuned implementation's residual sweep: AoS storage, L outer /
    /// K middle / J inner.
    #[must_use]
    pub fn risc_rhs(dims: Dims) -> Self {
        Self {
            dims,
            layout: Layout::jkl(),
            aos: true,
            order: [Axis::L, Axis::K, Axis::J],
        }
    }

    /// The vector implementation's residual sweep: SoA storage, same
    /// loop order (the legacy code's problem is storage and scratch,
    /// not this loop order).
    #[must_use]
    pub fn vector_rhs(dims: Dims) -> Self {
        Self {
            dims,
            layout: Layout::jkl(),
            aos: false,
            order: [Axis::L, Axis::K, Axis::J],
        }
    }

    /// Byte address of component `c` of the state at `p`.
    fn q_addr(&self, p: Ijk, c: u64) -> u64 {
        let spatial = self.layout.offset(self.dims, p) as u64;
        if self.aos {
            (spatial * 5 + c) * ELEM_BYTES
        } else {
            (c * self.dims.points() as u64 + spatial) * ELEM_BYTES
        }
    }

    /// The access stream of a 7-point-stencil residual evaluation:
    /// per interior point, all five components of the state at the
    /// point and its six neighbors (loads), three metric values from a
    /// separate region (loads), and the five-component result (stores).
    pub fn accesses(&self) -> impl Iterator<Item = SweepAccess> + '_ {
        let d = self.dims;
        let [a0, a1, a2] = self.order;
        // Disjoint address regions for the result and metric arrays.
        let span = (d.points() as u64 * 5 * ELEM_BYTES).next_power_of_two();
        let rhs_base = span * 2;
        let met_base = span * 4;
        (0..d.extent(a0)).flat_map(move |i0| {
            (0..d.extent(a1)).flat_map(move |i1| {
                (0..d.extent(a2)).flat_map(move |i2| {
                    let mut p = Ijk::new(0, 0, 0);
                    for (axis, idx) in [(a0, i0), (a1, i1), (a2, i2)] {
                        match axis {
                            Axis::J => p.j = idx,
                            Axis::K => p.k = idx,
                            Axis::L => p.l = idx,
                        }
                    }
                    let interior = !d.on_boundary(p);
                    let spatial = self.layout.offset(d, p) as u64;
                    let mut out = Vec::with_capacity(if interior { 43 } else { 0 });
                    if interior {
                        // center + 6 neighbors, 5 components each
                        let mut points = vec![p];
                        for axis in Axis::ALL {
                            points.push(p.offset(axis, -1));
                            points.push(p.offset(axis, 1));
                        }
                        for q in points {
                            for c in 0..5 {
                                out.push(SweepAccess {
                                    addr: self.q_addr(q, c),
                                    store: false,
                                });
                            }
                        }
                        // metric gradients (3 values per point)
                        for m in 0..3 {
                            out.push(SweepAccess {
                                addr: met_base + (spatial * 3 + m) * ELEM_BYTES,
                                store: false,
                            });
                        }
                        // result write, 5 components (AoS result array)
                        for c in 0..5 {
                            out.push(SweepAccess {
                                addr: rhs_base + (spatial * 5 + c) * ELEM_BYTES,
                                store: true,
                            });
                        }
                    }
                    out
                })
            })
        })
    }
}

/// Page-sharing statistics of a statically-scheduled parallel sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharingStats {
    /// Distinct pages touched by the whole sweep.
    pub total_pages: u64,
    /// Pages touched by two or more workers.
    pub shared_pages: u64,
    /// The largest number of workers touching any single page.
    pub max_sharers: u32,
}

impl SharingStats {
    /// Fraction of pages shared between workers, in `[0, 1]`.
    #[must_use]
    pub fn shared_fraction(&self) -> f64 {
        if self.total_pages == 0 {
            0.0
        } else {
            self.shared_pages as f64 / self.total_pages as f64
        }
    }
}

/// Static block chunks of `0..n` over `p` workers (the `llp` schedule,
/// duplicated here to keep this crate's dependencies to `mesh` only;
/// equality with `llp::chunk_bounds` is asserted by integration tests).
fn static_chunks(n: usize, p: usize) -> Vec<std::ops::Range<usize>> {
    assert!(p > 0);
    if n == 0 {
        return Vec::new();
    }
    let workers = p.min(n);
    let base = n / workers;
    let extra = n % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for i in 0..workers {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Compute page sharing when a zone array is swept by `workers` workers
/// that statically split `parallel_axis`, each worker touching every
/// point of its slab (any per-worker traversal order touches the same
/// pages). `layout` is the array's storage order; `page_bytes` the NUMA
/// interleaving granularity.
#[must_use]
pub fn page_sharing(
    dims: Dims,
    layout: Layout,
    parallel_axis: Axis,
    workers: usize,
    page_bytes: u64,
) -> SharingStats {
    assert!(
        page_bytes.is_power_of_two(),
        "page size must be a power of two"
    );
    let n = dims.extent(parallel_axis);
    let chunks = static_chunks(n, workers);
    let mut sharers: HashMap<u64, u32> = HashMap::new();
    let others: Vec<Axis> = Axis::ALL
        .into_iter()
        .filter(|&a| a != parallel_axis)
        .collect();
    for chunk in chunks {
        let mut touched: Vec<u64> = Vec::new();
        for ip in chunk {
            for i1 in 0..dims.extent(others[0]) {
                for i2 in 0..dims.extent(others[1]) {
                    let mut p = Ijk::new(0, 0, 0);
                    for (axis, idx) in [(parallel_axis, ip), (others[0], i1), (others[1], i2)] {
                        match axis {
                            Axis::J => p.j = idx,
                            Axis::K => p.k = idx,
                            Axis::L => p.l = idx,
                        }
                    }
                    let addr = layout.offset(dims, p) as u64 * ELEM_BYTES;
                    touched.push(addr / page_bytes);
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for page in touched {
            *sharers.entry(page).or_insert(0) += 1;
        }
    }
    let total_pages = sharers.len() as u64;
    let shared_pages = sharers.values().filter(|&&c| c > 1).count() as u64;
    let max_sharers = sharers.values().copied().max().unwrap_or(0);
    SharingStats {
        total_pages,
        shared_pages,
        max_sharers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> Dims {
        Dims::new(32, 24, 16)
    }

    #[test]
    fn example4a_is_fully_sequential() {
        let t = GridTraversal::example4a(dims());
        let addrs: Vec<u64> = t.addresses().collect();
        assert_eq!(addrs.len(), dims().points());
        for (i, &a) in addrs.iter().enumerate() {
            assert_eq!(a, i as u64 * ELEM_BYTES, "position {i}");
        }
        assert_eq!(t.inner_stride_bytes(), ELEM_BYTES);
    }

    #[test]
    fn example4b_unit_stride_inner_with_jumps() {
        let t = GridTraversal::example4b(dims());
        let addrs: Vec<u64> = t.addresses().collect();
        assert_eq!(addrs.len(), dims().points());
        // Inner loop still unit stride...
        assert_eq!(addrs[1] - addrs[0], ELEM_BYTES);
        // ...but the stream is not globally sequential.
        assert!(addrs.windows(2).any(|w| w[1] != w[0] + ELEM_BYTES));
        // Every address still visited exactly once.
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), dims().points());
    }

    #[test]
    fn example4c_strides_by_jmax() {
        let g = PencilGather::example4c(dims());
        // Gathering along K from J-fastest storage strides by JMAX elems.
        assert_eq!(g.gather_stride_bytes(), 32 * ELEM_BYTES);
        let addrs: Vec<u64> = g.addresses().collect();
        assert_eq!(addrs.len(), dims().points());
        // consecutive gather accesses stride by JMAX*8
        assert_eq!(addrs[1] - addrs[0], 32 * ELEM_BYTES);
    }

    #[test]
    fn all_patterns_cover_all_points() {
        for addrs in [
            GridTraversal::example4a(dims())
                .addresses()
                .collect::<Vec<_>>(),
            GridTraversal::example4b(dims())
                .addresses()
                .collect::<Vec<_>>(),
            PencilGather::example4c(dims())
                .addresses()
                .collect::<Vec<_>>(),
        ] {
            let mut s = addrs;
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), dims().points());
            assert_eq!(s[0], 0);
            assert_eq!(
                *s.last().unwrap(),
                (dims().points() as u64 - 1) * ELEM_BYTES
            );
        }
    }

    #[test]
    fn solver_sweep_access_counts() {
        let d = Dims::new(8, 8, 8);
        let s = SolverSweep::risc_rhs(d);
        let n: usize = s.accesses().count();
        // 43 accesses per interior point (7 points x 5 comps + 3
        // metrics + 5 stores), none at boundary points.
        assert_eq!(n, d.interior_points() * 43);
        // Stores are exactly 5 per interior point.
        let stores = s.accesses().filter(|a| a.store).count();
        assert_eq!(stores, d.interior_points() * 5);
    }

    #[test]
    fn aos_beats_soa_on_strided_state_access() {
        // The paper's storage-arrangement claim, measured where it
        // actually bites: a *strided* traversal (the K-pencil gathers of
        // the implicit sweeps) reading all five components per point.
        // AoS packs a point's state into 40 contiguous bytes (1-2
        // lines); SoA spreads it across five planes (5 lines). Unit-
        // stride streaming sweeps do NOT show this — footprints match.
        use crate::cache::{Cache, CacheConfig};
        let d = Dims::new(48, 48, 32);
        let lay = Layout::jkl();
        let run = |aos: bool| {
            let mut c = Cache::new(CacheConfig::new(32 << 10, 32, 2));
            // K-inner gather at every (l, j): K stride = jmax elements.
            for l in 0..d.l {
                for j in 0..d.j {
                    for k in 0..d.k {
                        let spatial = lay.offset(d, Ijk::new(j, k, l)) as u64;
                        for comp in 0..5u64 {
                            let addr = if aos {
                                (spatial * 5 + comp) * ELEM_BYTES
                            } else {
                                (comp * d.points() as u64 + spatial) * ELEM_BYTES
                            };
                            c.access(addr);
                        }
                    }
                }
            }
            c.misses()
        };
        let aos = run(true);
        let soa = run(false);
        assert!(
            soa as f64 > 1.8 * aos as f64,
            "SoA {soa} vs AoS {aos} misses"
        );
    }

    #[test]
    fn parallel_l_over_jkl_has_little_sharing() {
        // Ordering (a) parallelized over L: slabs are contiguous, so
        // only chunk-boundary pages are shared.
        let s = page_sharing(dims(), Layout::jkl(), Axis::L, 4, 4096);
        assert!(s.shared_fraction() < 0.15, "{s:?}");
        assert!(s.max_sharers <= 2);
    }

    #[test]
    fn parallel_j_over_jkl_shares_every_page() {
        // Ordering (c): parallel over J with J-fastest storage — every
        // worker strides through every page.
        let s = page_sharing(dims(), Layout::jkl(), Axis::J, 4, 4096);
        assert!(s.shared_fraction() > 0.99, "{s:?}");
        assert_eq!(s.max_sharers, 4);
    }

    #[test]
    fn single_worker_never_shares() {
        let s = page_sharing(dims(), Layout::jkl(), Axis::J, 1, 4096);
        assert_eq!(s.shared_pages, 0);
        assert_eq!(s.max_sharers, 1);
    }

    #[test]
    fn total_pages_matches_footprint() {
        let s = page_sharing(dims(), Layout::jkl(), Axis::L, 3, 4096);
        let bytes = dims().points() as u64 * ELEM_BYTES;
        assert_eq!(s.total_pages, bytes.div_ceil(4096));
    }

    #[test]
    fn remaining_axis_is_the_third() {
        let g = PencilGather::example4c(dims());
        assert_eq!(g.remaining_axis(), Axis::L);
    }

    #[test]
    fn compute_passes_dilute_the_gather() {
        let g = PencilGather::example4c(dims());
        let with: Vec<u64> = g.addresses_with_compute(4).collect();
        // gather points + 4 buffer passes per pencil
        assert_eq!(with.len(), dims().points() * 5);
        // The buffer region is disjoint from the array.
        let array_top = dims().points() as u64 * ELEM_BYTES;
        let buffer_accesses = with.iter().filter(|&&a| a >= array_top).count();
        assert_eq!(buffer_accesses, dims().points() * 4);
        // And the gather addresses still cover the whole array.
        let mut arr: Vec<u64> = with.iter().copied().filter(|&a| a < array_top).collect();
        arr.sort_unstable();
        arr.dedup();
        assert_eq!(arr.len(), dims().points());
    }

    #[test]
    fn pencil_gather_range_splits_cleanly() {
        let g = PencilGather::example4c(dims());
        let whole: Vec<u64> = g.addresses().collect();
        let mut parts: Vec<u64> = g.addresses_for_range(0..10).collect();
        parts.extend(g.addresses_for_range(10..32));
        assert_eq!(whole, parts);
    }
}
