//! The pixie-style cycle model (paper Section 6).
//!
//! "Without pixie, prof measures the actual run time … With pixie, prof
//! measures the theoretical run time … assuming an infinitely fast
//! memory system. By subtracting those two sets of numbers, one can
//! then estimate the cost of cache and TLB misses."
//!
//! [`CycleModel`] is that arithmetic: perfect-memory ("pixie") cycles
//! from instruction counts and issue width, plus per-event stall
//! penalties from [`crate::hierarchy::Counters`].

use crate::hierarchy::Counters;

/// A simple in-order cost model for one processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleModel {
    /// Instructions (flops + loads/stores + overhead) issued per cycle.
    pub issue_width: f64,
    /// Cycles lost per L1 miss that hits in L2.
    pub l1_miss_penalty: f64,
    /// Cycles lost per access that misses to main memory.
    pub l2_miss_penalty: f64,
    /// Cycles lost per TLB miss.
    pub tlb_miss_penalty: f64,
}

impl CycleModel {
    /// Perfect-memory cycles for `instructions` instructions — what
    /// pixie would report.
    #[must_use]
    pub fn pixie_cycles(&self, instructions: u64) -> f64 {
        assert!(self.issue_width > 0.0, "issue width must be positive");
        instructions as f64 / self.issue_width
    }

    /// Memory stall cycles implied by the counters. L1 misses that also
    /// missed L2 are charged only the (larger) L2 penalty.
    #[must_use]
    pub fn stall_cycles(&self, c: &Counters) -> f64 {
        let l1_only = c.l1_misses.saturating_sub(c.l2_misses);
        l1_only as f64 * self.l1_miss_penalty
            + c.l2_misses as f64 * self.l2_miss_penalty
            + c.tlb_misses as f64 * self.tlb_miss_penalty
    }

    /// Total modeled cycles: pixie + stalls.
    #[must_use]
    pub fn total_cycles(&self, instructions: u64, c: &Counters) -> f64 {
        self.pixie_cycles(instructions) + self.stall_cycles(c)
    }

    /// The paper's prof-minus-pixie subtraction, as a fraction: what
    /// share of runtime is memory stalls.
    #[must_use]
    pub fn stall_fraction(&self, instructions: u64, c: &Counters) -> f64 {
        let total = self.total_cycles(instructions, c);
        if total == 0.0 {
            0.0
        } else {
            self.stall_cycles(c) / total
        }
    }

    /// Seconds for the modeled cycles at `clock_hz`.
    #[must_use]
    pub fn seconds(&self, instructions: u64, c: &Counters, clock_hz: f64) -> f64 {
        assert!(clock_hz > 0.0, "clock must be positive");
        self.total_cycles(instructions, c) / clock_hz
    }
}

/// The Section 7 overlap analysis: out-of-order execution and
/// prefetching can hide a fraction of miss *latency*, but the hidden
/// misses still consume *bandwidth* — and the effective stall time can
/// never drop below the time needed to move the missed lines through
/// the available bandwidth. "The maximum per processor usable bandwidth
/// for off node accesses is estimated to be only 195 MB/second, which
/// severely limits the effectiveness of this approach."
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapModel {
    /// Fraction of memory-stall latency hidden by OoO/prefetch, `[0,1)`.
    pub latency_hidden: f64,
    /// Available memory bandwidth, MB/s.
    pub bandwidth_mbs: f64,
    /// Line size moved per memory-level miss, bytes.
    pub line_bytes: u64,
    /// Clock rate, Hz (to convert the bandwidth floor into cycles).
    pub clock_hz: f64,
}

impl OverlapModel {
    /// Effective memory-stall cycles after overlap: the latency view
    /// scaled by `(1 − hidden)`, floored by the bandwidth time of the
    /// memory-level misses.
    ///
    /// # Panics
    /// Panics for out-of-range parameters.
    #[must_use]
    pub fn effective_stall_cycles(&self, model: &CycleModel, c: &Counters) -> f64 {
        assert!(
            (0.0..1.0).contains(&self.latency_hidden),
            "hidden fraction must be in [0, 1)"
        );
        assert!(self.bandwidth_mbs > 0.0 && self.clock_hz > 0.0);
        let latency_view = model.stall_cycles(c) * (1.0 - self.latency_hidden);
        let bytes = c.l2_misses as f64 * self.line_bytes as f64;
        let bandwidth_floor = bytes / (self.bandwidth_mbs * 1e6) * self.clock_hz;
        latency_view.max(bandwidth_floor)
    }

    /// How much of the un-overlapped stall time overlap actually
    /// recovers, in `[0, 1]` — the quantity Section 7 says is
    /// "severely limited" for off-node accesses.
    #[must_use]
    pub fn recovered_fraction(&self, model: &CycleModel, c: &Counters) -> f64 {
        let raw = model.stall_cycles(c);
        if raw == 0.0 {
            return 0.0;
        }
        1.0 - self.effective_stall_cycles(model, c) / raw
    }
}

impl Default for CycleModel {
    /// A generic late-1990s RISC: 2-wide issue, 10-cycle L2 hit,
    /// 80-cycle memory, 50-cycle TLB refill.
    fn default() -> Self {
        Self {
            issue_width: 2.0,
            l1_miss_penalty: 10.0,
            l2_miss_penalty: 80.0,
            tlb_miss_penalty: 50.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(l1: u64, l2: u64, tlb: u64) -> Counters {
        Counters {
            loads: 1000,
            stores: 100,
            l1_misses: l1,
            l2_misses: l2,
            tlb_misses: tlb,
            writebacks: 0,
        }
    }

    #[test]
    fn pixie_is_instructions_over_width() {
        let m = CycleModel::default();
        assert!((m.pixie_cycles(1000) - 500.0).abs() < 1e-12);
    }

    #[test]
    fn stalls_charge_each_level_once() {
        let m = CycleModel::default();
        // 10 L1 misses of which 4 went to memory: 6*10 + 4*80 + 2*50.
        let c = counters(10, 4, 2);
        assert!((m.stall_cycles(&c) - (60.0 + 320.0 + 100.0)).abs() < 1e-12);
    }

    #[test]
    fn prof_minus_pixie_recovers_stalls() {
        let m = CycleModel::default();
        let c = counters(100, 10, 0);
        let prof = m.total_cycles(10_000, &c);
        let pixie = m.pixie_cycles(10_000);
        assert!((prof - pixie - m.stall_cycles(&c)).abs() < 1e-9);
    }

    #[test]
    fn stall_fraction_bounds() {
        let m = CycleModel::default();
        let perfect = counters(0, 0, 0);
        assert_eq!(m.stall_fraction(1000, &perfect), 0.0);
        let awful = counters(1000, 1000, 1000);
        let f = m.stall_fraction(1000, &awful);
        assert!(f > 0.99, "{f}");
        assert!(f < 1.0);
    }

    #[test]
    fn seconds_at_clock() {
        let m = CycleModel::default();
        let c = counters(0, 0, 0);
        // 2e8 instructions at 2-wide = 1e8 cycles = 1/3 s at 300 MHz.
        let s = m.seconds(200_000_000, &c, 300e6);
        assert!((s - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_recovery_depends_on_bandwidth_headroom() {
        // Latency 150 cycles/line at 300 MHz = 500 ns; moving a 128-B
        // line through the local 412-MB/s path takes 93 cycles, so at
        // most ~38% of the latency view is recoverable; an ample
        // 2-GB/s path lets the full 80% hiding through.
        let m = CycleModel {
            issue_width: 4.0,
            l1_miss_penalty: 10.0,
            l2_miss_penalty: 150.0,
            tlb_miss_penalty: 60.0,
        };
        let c = counters(1000, 1000, 0);
        let local = OverlapModel {
            latency_hidden: 0.8,
            bandwidth_mbs: 412.0,
            line_bytes: 128,
            clock_hz: 300e6,
        };
        let rec = local.recovered_fraction(&m, &c);
        assert!((0.3..0.45).contains(&rec), "recovered {rec}");
        let ample = OverlapModel {
            bandwidth_mbs: 2000.0,
            ..local
        };
        let rec = ample.recovered_fraction(&m, &c);
        assert!((rec - 0.8).abs() < 0.05, "recovered {rec}");
    }

    #[test]
    fn off_node_overlap_is_bandwidth_limited() {
        // Section 7's point: the same 80% latency hiding against the
        // 195-MB/s off-node path recovers far less — the bandwidth
        // floor binds.
        let m = CycleModel {
            issue_width: 4.0,
            l1_miss_penalty: 10.0,
            // Off-node latency: ~945 ns at 300 MHz ≈ 283 cycles.
            l2_miss_penalty: 283.0,
            tlb_miss_penalty: 60.0,
        };
        let c = counters(100_000, 100_000, 0);
        let off_node = OverlapModel {
            latency_hidden: 0.8,
            bandwidth_mbs: 195.0,
            line_bytes: 128,
            clock_hz: 300e6,
        };
        let rec = off_node.recovered_fraction(&m, &c);
        // Bandwidth floor: 100k lines * 128 B / 195 MB/s * 300 MHz =
        // 1.97e7 cycles vs raw stalls 2.83e7: at most 30% recoverable.
        assert!(rec < 0.35, "recovered {rec}");
        assert!(rec > 0.0);
        // With local bandwidth the same workload recovers the full 80%.
        let local = OverlapModel {
            bandwidth_mbs: 412.0,
            ..off_node
        };
        assert!(local.recovered_fraction(&m, &c) > 0.5);
    }

    #[test]
    fn zero_stalls_recover_nothing() {
        let m = CycleModel::default();
        let c = counters(0, 0, 0);
        let o = OverlapModel {
            latency_hidden: 0.5,
            bandwidth_mbs: 400.0,
            line_bytes: 128,
            clock_hz: 300e6,
        };
        assert_eq!(o.recovered_fraction(&m, &c), 0.0);
    }

    #[test]
    fn more_misses_cost_more() {
        let m = CycleModel::default();
        let a = m.total_cycles(1000, &counters(5, 1, 0));
        let b = m.total_cycles(1000, &counters(50, 10, 5));
        assert!(b > a);
    }
}
