//! The SLP (superword) width axis, shared by every solver.
//!
//! The paper parallelizes *outer* loops because the inner loops of the
//! sweeps were "vectorizable but short" — on a RISC SMP the vector
//! hardware is gone, but the instruction-level form of that inner
//! parallelism is not. This module names the widths the explicitly
//! vectorized kernel variants come in (`W ∈ {1, 2, 4, 8}` lanes of
//! array-chunked safe Rust that rustc can lower to SIMD) and carries
//! the per-kernel selection ([`WidthMap`]) from the tune database down
//! into the steppers, the same road the per-kernel
//! [`llp::ScheduleMap`] travels. It lives in the workload-agnostic
//! `solver` crate because the axis is: every physics dispatches its
//! kernel variants through the same vocabulary.
//!
//! **Exactness policy.** Every wide variant vectorizes across
//! *independent outputs* (points of a pencil, rows or columns of a
//! block) and never across a reduction, so each output's
//! floating-point operation sequence is identical to the scalar
//! reference and the results are bit-exact at every width — asserted
//! per workload by its property suite. No kernel needs a tolerance.
//!
//! Kernels whose inner loop is pure data movement have no arithmetic
//! to widen: they accept a width entry but execute the same code at
//! every width.

/// The lane widths the kernel variants are compiled for. Width 1 is
/// the scalar reference; kernels whose natural unit is smaller than a
/// lane group degenerate to the scalar remainder (documented on the
/// variants).
pub const SUPPORTED_WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Check a width against [`SUPPORTED_WIDTHS`].
///
/// # Errors
/// Returns a message naming the supported vocabulary.
pub fn validate_width(width: usize) -> Result<(), String> {
    if SUPPORTED_WIDTHS.contains(&width) {
        Ok(())
    } else {
        Err(format!(
            "vector_width must be one of {SUPPORTED_WIDTHS:?}, got {width}"
        ))
    }
}

/// One compiled kernel variant: the scalar reference or a fixed-width
/// lane version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Variant {
    /// The scalar reference (width 1).
    #[default]
    Scalar,
    /// Two-lane variant.
    Wide2,
    /// Four-lane variant.
    Wide4,
    /// Eight-lane variant.
    Wide8,
}

impl Variant {
    /// The variant for a supported width.
    ///
    /// # Errors
    /// Rejects widths outside [`SUPPORTED_WIDTHS`].
    pub fn from_width(width: usize) -> Result<Self, String> {
        validate_width(width)?;
        Ok(match width {
            2 => Self::Wide2,
            4 => Self::Wide4,
            8 => Self::Wide8,
            _ => Self::Scalar,
        })
    }

    /// The lane width this variant runs at.
    #[must_use]
    pub fn width(self) -> usize {
        match self {
            Self::Scalar => 1,
            Self::Wide2 => 2,
            Self::Wide4 => 4,
            Self::Wide8 => 8,
        }
    }
}

/// Per-kernel width selection: kernel names (the span-tree vocabulary
/// — `rhs`, `update_e`, …) mapped to lane widths, with a default width
/// for unmapped kernels. The SLP analogue of [`llp::ScheduleMap`]:
/// the tune database resolves into one of these and the steppers
/// dispatch each kernel's variant from it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WidthMap {
    default_width: usize,
    entries: Vec<(String, usize)>,
}

impl WidthMap {
    /// An empty map: every kernel at the scalar width.
    #[must_use]
    pub fn new() -> Self {
        Self {
            default_width: 0, // 0 encodes "unset": get() clamps to 1
            entries: Vec::new(),
        }
    }

    /// A map sending every kernel to `width`.
    #[must_use]
    pub fn uniform(width: usize) -> Self {
        let mut m = Self::new();
        m.set_default(width);
        m
    }

    /// Set one kernel's width (last write wins).
    pub fn set(&mut self, kernel: &str, width: usize) {
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| k == kernel) {
            e.1 = width;
        } else {
            self.entries.push((kernel.to_string(), width));
        }
    }

    /// Set the width unmapped kernels fall back to.
    pub fn set_default(&mut self, width: usize) {
        self.default_width = width;
    }

    /// The width `kernel` should run at: its entry, else the default,
    /// else 1.
    #[must_use]
    pub fn get(&self, kernel: &str) -> usize {
        self.entries
            .iter()
            .find(|(k, _)| k == kernel)
            .map_or(self.default_width.max(1), |(_, w)| *w)
    }

    /// Number of per-kernel entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no per-kernel entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether every kernel resolves to the scalar width.
    #[must_use]
    pub fn is_scalar(&self) -> bool {
        self.default_width <= 1 && self.entries.iter().all(|(_, w)| *w <= 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_vocabulary_is_validated() {
        for w in SUPPORTED_WIDTHS {
            assert!(validate_width(w).is_ok());
            assert_eq!(Variant::from_width(w).unwrap().width(), w);
        }
        for w in [0, 3, 5, 16, usize::MAX] {
            let err = validate_width(w).unwrap_err();
            assert!(err.contains("vector_width"), "{err}");
            assert!(Variant::from_width(w).is_err());
        }
        assert_eq!(Variant::default(), Variant::Scalar);
    }

    #[test]
    fn width_map_defaults_and_overrides() {
        let mut m = WidthMap::new();
        assert!(m.is_scalar());
        assert!(m.is_empty());
        assert_eq!(m.get("rhs"), 1);
        m.set("rhs", 4);
        m.set("rhs", 2); // last write wins
        m.set("j_factor", 8);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get("rhs"), 2);
        assert_eq!(m.get("j_factor"), 8);
        assert_eq!(m.get("update"), 1, "unmapped kernels fall back");
        assert!(!m.is_scalar());

        let u = WidthMap::uniform(4);
        assert_eq!(u.get("anything"), 4);
        assert!(u.is_empty(), "uniform is a default, not entries");
        let mut u = u;
        u.set("rhs", 1);
        assert_eq!(u.get("rhs"), 1, "entries win over the default");
        assert_eq!(u.get("update"), 4);
        assert!(WidthMap::uniform(1).is_scalar());
    }
}
