//! `solver` — the generic trait layer that makes the serving and
//! tuning stack multi-physics.
//!
//! The paper's thesis is that loop-level parallelization machinery is
//! workload-agnostic: the stair-step speedup, the Table 1 minimum-work
//! bound, and the doacross/scheduling laws apply to *any* vectorizable
//! nest, not just the F3D flow solver they were derived on. This crate
//! encodes that claim as an interface: a physics workload implements
//! [`Solver`] (configuration → instance → stepped state), and in
//! return every layer built above the [`llp`] pool — sharded
//! executors, flight recorder, autotuner, drift watchdog, Prometheus
//! telemetry, content-addressed caching — applies to it at near-zero
//! marginal cost.
//!
//! The split follows the `Config → Instance → State` shape of
//! jgraef/fdtd's solver traits (see SNIPPETS.md): a [`SolverSpec`] is
//! the validated, canonicalizable request; [`Solver::create_instance`]
//! allocates the grids and fields; [`SolverInstance::step`] advances
//! one time step on a caller-supplied [`Workers`] pool, honoring
//! per-kernel schedule overrides; and [`SolverInstance::finish`]
//! reduces the stepped state to the workload's output (checksums,
//! integrated observables).
//!
//! [`run_instrumented`] is the one shared run driver: it owns the
//! instrumentation sequence every served solve follows — policy view,
//! width-map resolution, local sync-event billing, span-report and
//! flight-timeline drain — so a new physics gets byte-identical
//! observability semantics for free, and the F3D refactor behind this
//! trait provably changes no result (the sequence is the one
//! `f3d::service::run_tuned` always executed, now shared).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod widths;

pub use widths::{validate_width, Variant, WidthMap, SUPPORTED_WIDTHS};

use llp::{ObsReport, Policy, ScheduleMap, Timeline, Workers};

/// A validated, canonicalizable solve request: the `Config` half of
/// the trait split. Everything the serving layer needs to admit,
/// cache-key, label, and schedule a solve without knowing the physics.
pub trait SolverSpec {
    /// Check every field against its service cap.
    ///
    /// # Errors
    /// Returns a message naming the offending field and its bound.
    fn validate(&self) -> Result<(), String>;

    /// Canonical content string: every semantic field in a fixed order
    /// with a fixed spelling, the basis of content-addressed result
    /// reuse. Two requests that parse to the same case must produce
    /// byte-identical strings; any semantic change must change it.
    fn canonical_string(&self) -> String;

    /// Stable case label, used as the obs-report case name.
    fn label(&self) -> String;

    /// Worker count the case asks for.
    fn workers(&self) -> usize;

    /// The case's chunk-scheduling policy for its doacross regions.
    fn schedule(&self) -> Policy;

    /// Number of time steps the case runs.
    fn steps(&self) -> usize;

    /// Default SLP lane width (one of [`SUPPORTED_WIDTHS`]); the
    /// width map's per-kernel entries win over it.
    fn vector_width(&self) -> usize;
}

/// One physics workload: the factory tying a spec to its instance
/// type. Implementations are zero-sized marker types (`F3dSolver`,
/// `FdtdSolver`) — the state lives in [`Solver::Instance`].
pub trait Solver {
    /// The validated request this solver runs.
    type Config: SolverSpec;
    /// The allocated, steppable state.
    type Instance: SolverInstance;

    /// Stable lower-case solver kind — the `"solver"` vocabulary of
    /// the serving API and the cache-key / tune-db namespace prefix.
    fn kind() -> &'static str;

    /// The span-tree kernel vocabulary this solver's steps emit, in a
    /// stable order: the names the tune database, schedule map, width
    /// map, and metrics labels key on.
    fn kernel_names() -> &'static [&'static str];

    /// Estimated peak bytes an instance of `config` allocates (fields
    /// plus per-worker scratch). An *estimate* for admission control —
    /// deliberately simple and deterministic, never a measurement —
    /// so the serving layer can reject a solve that cannot fit before
    /// any pool work happens.
    fn memory_usage_estimate(config: &Self::Config) -> u64;

    /// Allocate the instance: grids, fields, deterministic initial
    /// condition, and the per-kernel width selection (`widths` already
    /// has the spec's default width folded in).
    fn create_instance(config: &Self::Config, widths: &WidthMap) -> Self::Instance;
}

/// The stepped state of one solve: the `Instance`/`State` half of the
/// split.
pub trait SolverInstance {
    /// What one completed run produces (residual history, checksums,
    /// integrated observables) — everything except the observability
    /// payload, which [`run_instrumented`] drains uniformly.
    type Output;

    /// Advance one time step on `pool`. Kernels named in `schedules`
    /// execute on a [`Workers::kernel_view`] carrying their tuned
    /// worker count and policy; everything else inherits the pool's
    /// configuration. Results must be bit-exact across worker counts,
    /// schedules, and widths — determinism is the serving contract.
    fn step(&mut self, pool: &Workers, step: usize, schedules: Option<&ScheduleMap>);

    /// Reduce the final state to the run's output.
    fn finish(self) -> Self::Output;
}

/// Everything [`run_instrumented`] produces: the physics output plus
/// the uniform observability payload.
#[derive(Debug, Clone)]
pub struct SolverRun<O> {
    /// The workload's own results.
    pub output: O,
    /// Synchronization events this run added to the pool (billed on
    /// the policy view's *local* counter, so concurrent users of the
    /// same pool never leak into this run's bill).
    pub sync_events: u64,
    /// Span report drained from the pool's recorder (empty when the
    /// pool does not record).
    pub report: ObsReport,
    /// Flight-recorder timeline drained from the pool (empty when the
    /// pool carries no flight recorder).
    pub timeline: Timeline,
}

/// Execute a validated spec on `pool` with the instrumentation
/// sequence every served solve shares:
///
/// 1. validate the spec and take a policy view of the pool;
/// 2. resolve the width map (per-kernel entries over the spec's
///    default) and allocate the instance;
/// 3. bill sync events on the view's local counter across the step
///    loop;
/// 4. drain the span report (labeled with the spec's case label and
///    the requested-vs-granted worker clamp) and the flight timeline;
/// 5. reduce the instance to its output.
///
/// This is extracted verbatim from the pre-trait `f3d::service`
/// driver, so refactoring a workload behind it changes no result.
///
/// # Errors
/// Returns the spec's [`SolverSpec::validate`] error for out-of-bounds
/// cases.
pub fn run_instrumented<S: Solver>(
    config: &S::Config,
    pool: &Workers,
    schedules: Option<&ScheduleMap>,
    widths: Option<&WidthMap>,
) -> Result<SolverRun<<S::Instance as SolverInstance>::Output>, String> {
    config.validate()?;
    // The spec's scheduling policy governs every doacross region of
    // the run; the view shares the caller pool's counters and
    // recorder.
    let pool = &pool.with_policy(config.schedule());
    let mut width_map = widths.cloned().unwrap_or_default();
    width_map.set_default(config.vector_width());
    let mut instance = S::create_instance(config, &width_map);

    // Count this run's events on the policy view's *local* counter:
    // the shared pool counter also moves when other views of the same
    // pool run concurrently (e.g. another executor shard), and this
    // run's bill must cover exactly its own regions.
    let sync_before = pool.local_sync_event_count();
    for step in 0..config.steps() {
        instance.step(pool, step, schedules);
    }
    let sync_events = pool.local_sync_event_count() - sync_before;
    let report = pool
        .recorder()
        .take_report(&config.label(), pool.processors())
        .with_requested_workers(pool.requested_processors());
    let timeline = pool.flight().take_timeline();

    Ok(SolverRun {
        output: instance.finish(),
        sync_events,
        report,
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy workload exercising the driver: `steps` doacross sweeps
    /// incrementing a vector, output = final sum.
    struct ToySpec {
        n: usize,
        steps: usize,
        workers: usize,
    }

    impl SolverSpec for ToySpec {
        fn validate(&self) -> Result<(), String> {
            if self.n == 0 {
                return Err("n must be in 1..=1024, got 0".to_string());
            }
            Ok(())
        }
        fn canonical_string(&self) -> String {
            format!("n={};steps={}", self.n, self.steps)
        }
        fn label(&self) -> String {
            format!("toy/n{}", self.n)
        }
        fn workers(&self) -> usize {
            self.workers
        }
        fn schedule(&self) -> Policy {
            Policy::Static
        }
        fn steps(&self) -> usize {
            self.steps
        }
        fn vector_width(&self) -> usize {
            1
        }
    }

    struct ToyInstance {
        data: Vec<f64>,
        width: usize,
    }

    impl SolverInstance for ToyInstance {
        type Output = (f64, usize);

        fn step(&mut self, pool: &Workers, _step: usize, schedules: Option<&ScheduleMap>) {
            let kw = match schedules.and_then(|m| m.get("toy")) {
                Some((p, policy)) => pool.kernel_view(p, policy),
                None => pool.kernel_view(pool.processors(), pool.policy()),
            };
            llp::doacross_slabs(&kw, &mut self.data, 1, |i, slab| {
                slab[0] += i as f64;
            });
        }

        fn finish(self) -> (f64, usize) {
            (self.data.iter().sum(), self.width)
        }
    }

    struct ToySolver;

    impl Solver for ToySolver {
        type Config = ToySpec;
        type Instance = ToyInstance;

        fn kind() -> &'static str {
            "toy"
        }
        fn kernel_names() -> &'static [&'static str] {
            &["toy"]
        }
        fn memory_usage_estimate(config: &ToySpec) -> u64 {
            (config.n * std::mem::size_of::<f64>()) as u64
        }
        fn create_instance(config: &ToySpec, widths: &WidthMap) -> ToyInstance {
            ToyInstance {
                data: vec![0.0; config.n],
                width: widths.get("toy"),
            }
        }
    }

    #[test]
    fn driver_validates_bills_and_drains() {
        let bad = ToySpec {
            n: 0,
            steps: 1,
            workers: 1,
        };
        assert!(run_instrumented::<ToySolver>(&bad, &Workers::serial(), None, None).is_err());

        let spec = ToySpec {
            n: 8,
            steps: 3,
            workers: 2,
        };
        let pool = Workers::recorded(2);
        let run = run_instrumented::<ToySolver>(&spec, &pool, None, None).unwrap();
        // 3 steps x 1 region each.
        assert_eq!(run.sync_events, 3);
        assert_eq!(run.report.case, "toy/n8");
        assert_eq!(run.report.sync_events(), 3);
        // Each element accumulated its index three times.
        assert_eq!(run.output.0, 3.0 * (0..8).sum::<usize>() as f64);
        // No widths passed: the spec's scalar default applies.
        assert_eq!(run.output.1, 1);
        // A second run drains cleanly — the report covers only itself.
        let again = run_instrumented::<ToySolver>(&spec, &pool, None, None).unwrap();
        assert_eq!(again.report.sync_events(), 3);
    }

    #[test]
    fn width_map_entries_win_over_the_spec_default() {
        let spec = ToySpec {
            n: 4,
            steps: 1,
            workers: 1,
        };
        let mut widths = WidthMap::new();
        widths.set("toy", 4);
        let run =
            run_instrumented::<ToySolver>(&spec, &Workers::serial(), None, Some(&widths)).unwrap();
        assert_eq!(run.output.1, 4);
        assert_eq!(ToySolver::kind(), "toy");
        assert_eq!(ToySolver::kernel_names(), &["toy"]);
        assert_eq!(ToySolver::memory_usage_estimate(&spec), 32);
    }

    #[test]
    fn tuned_schedules_reach_the_kernels() {
        let spec = ToySpec {
            n: 8,
            steps: 2,
            workers: 2,
        };
        let mut map = ScheduleMap::new();
        map.set("toy", 1, Policy::Dynamic { chunk: 2 });
        let pool = Workers::new(2);
        let tuned = run_instrumented::<ToySolver>(&spec, &pool, Some(&map), None).unwrap();
        let plain = run_instrumented::<ToySolver>(&spec, &pool, None, None).unwrap();
        // Scheduling is a performance knob: results identical.
        assert_eq!(tuned.output.0, plain.output.0);
        assert_eq!(tuned.sync_events, plain.sync_events);
    }
}
