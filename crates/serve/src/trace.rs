//! Bounded in-memory trace store behind `GET /v1/trace/{id}`.
//!
//! Every `/v1/solve` job that runs on a flight-instrumented shard
//! leaves one [`TraceEntry`] here: the overhead attribution report
//! (compute vs. barrier vs. claim, per worker and per region, checked
//! against `perfmodel`'s Table 1 bound) and the Chrome trace-event
//! document, both pre-rendered to JSON so serving a trace is a lookup
//! plus a string write — no recomputation, no reference back into the
//! executor.
//!
//! The store is a fixed-capacity ring: inserting beyond capacity
//! evicts the oldest entry. Traces are a debugging aid, not a durable
//! record; a client that wants one fetches it promptly after the solve
//! response hands it the `trace_id`.

use llp::obs::json::Json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Traces retained before the oldest is evicted.
pub const DEFAULT_TRACE_CAPACITY: usize = 16;

/// One retained solve trace.
#[derive(Debug)]
pub struct TraceEntry {
    /// The id the solve response advertised as `trace_id`.
    pub id: u64,
    /// The case label the run recorded under (e.g. `service/z2s3w2`).
    pub case: String,
    /// Attribution document: per-worker and per-region overhead split
    /// plus the measured-vs-modeled check and per-kernel overheads.
    pub attribution: Json,
    /// Chrome trace-event document for `?trace=chrome`.
    pub chrome: Json,
}

/// Fixed-capacity, thread-safe ring of recent [`TraceEntry`]s.
#[derive(Debug)]
pub struct TraceStore {
    next_id: AtomicU64,
    entries: Mutex<VecDeque<Arc<TraceEntry>>>,
    capacity: usize,
}

impl TraceStore {
    /// A store retaining at most `capacity` traces (at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            next_id: AtomicU64::new(1),
            entries: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Reserve the next trace id (ids are unique per process and never
    /// reused, so a 404 means evicted-or-never-existed, not confusion).
    pub fn allocate_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Insert a finished trace, evicting the oldest beyond capacity.
    pub fn insert(&self, entry: TraceEntry) {
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(Arc::new(entry));
    }

    /// Look up a trace by id.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<Arc<TraceEntry>> {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .find(|e| e.id == id)
            .cloned()
    }

    /// Number of traces currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the store holds no traces.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for TraceStore {
    fn default() -> Self {
        Self::new(DEFAULT_TRACE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(store: &TraceStore, tag: &str) -> u64 {
        let id = store.allocate_id();
        store.insert(TraceEntry {
            id,
            case: tag.to_string(),
            attribution: Json::object(vec![("tag", Json::str(tag))]),
            chrome: Json::object(vec![("traceEvents", Json::Array(Vec::new()))]),
        });
        id
    }

    #[test]
    fn lookup_round_trips() {
        let store = TraceStore::new(4);
        assert!(store.is_empty());
        let id = entry(&store, "a");
        let got = store.get(id).unwrap();
        assert_eq!(got.case, "a");
        assert_eq!(got.attribution.get("tag").and_then(Json::as_str), Some("a"));
        assert!(store.get(id + 1).is_none());
    }

    #[test]
    fn ring_evicts_oldest() {
        let store = TraceStore::new(2);
        let a = entry(&store, "a");
        let b = entry(&store, "b");
        let c = entry(&store, "c");
        assert_eq!(store.len(), 2);
        assert!(store.get(a).is_none(), "oldest must be evicted");
        assert!(store.get(b).is_some());
        assert!(store.get(c).is_some());
    }

    #[test]
    fn ids_are_unique_across_eviction() {
        let store = TraceStore::new(1);
        let first = entry(&store, "x");
        let second = entry(&store, "y");
        assert_ne!(first, second);
        assert!(store.get(first).is_none());
    }

    #[test]
    fn concurrent_inserts_stay_bounded() {
        let store = TraceStore::new(8);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        entry(&store, "t");
                    }
                });
            }
        });
        assert_eq!(store.len(), 8);
    }
}
