//! Content-addressed solve-result cache and in-flight coalescing table.
//!
//! The paper's solves are deterministic: identical cases produce
//! bit-identical residuals, forces, and checksums regardless of worker
//! count or schedule (`f3d::service` pins this). That makes result
//! reuse sound by construction — the serve layer should never
//! re-execute work whose result it has already proven out.
//!
//! Two structures implement the reuse:
//!
//! * [`ContentKey`] — a stable canonicalization of a solve request.
//!   The key is built from the *parsed* [`AnyCase`], not the raw
//!   body bytes, so JSON key order and whitespace cannot split the
//!   cache; it prefixes the solver kind so equal field spellings of
//!   different physics can never alias; it embeds the tune-database
//!   generation for `auto` solves so a recalibration invalidates tuned
//!   entries without flushing anything else, and carries an FNV-1a
//!   checksum of the canonical form for compact external reporting.
//!   Lookup and storage use the full canonical string, so hash
//!   collisions cannot alias results.
//! * [`SolveCache`] — a bounded LRU mapping canonical keys to
//!   pre-rendered response bodies (`Arc<String>`: a hit is a clone and
//!   a socket write, no recomputation and no JSON re-serialization).
//!
//! The in-flight coalescing table lives in `server.rs` next to the
//! admission queue it guards; this module owns only the pure data
//! structures, which keeps them directly testable.

use crate::solvers::AnyCase;
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Default [`SolveCache`] capacity (entries).
pub const DEFAULT_CACHE_CAPACITY: usize = 128;

/// Canonical identity of a solve request for caching and coalescing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ContentKey {
    canonical: String,
    hash: u64,
}

impl ContentKey {
    /// Build the key for a validated case. The canonical form leads
    /// with the solver kind (`solve/f3d/…`, `solve/fdtd/…`) so two
    /// physics whose field spellings coincide key injectively — an
    /// omitted `"solver"` field parses to the `f3d` default and
    /// therefore shares the explicit spelling's key. `auto`
    /// distinguishes tune-db-overlaid solves, and `tune_generation`
    /// (bumped every time a tune database is replaced) keeps stale
    /// tuned results from outliving a recalibration. Non-auto solves
    /// pass generation 0: their results do not depend on the database.
    #[must_use]
    pub fn for_case(case: &AnyCase, auto: bool, tune_generation: u64) -> Self {
        let generation = if auto { tune_generation } else { 0 };
        let canonical = format!(
            "solve/{}/{};auto={};tune_gen={}",
            case.kind(),
            case.canonical_string(),
            auto,
            generation
        );
        let hash = f3d::service::fnv1a64(canonical.as_bytes());
        Self { canonical, hash }
    }

    /// The full canonical form (the map key — collision-proof).
    #[must_use]
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// FNV-1a checksum of the canonical form, as a fixed-width hex
    /// digest for logs and golden pins.
    #[must_use]
    pub fn digest(&self) -> String {
        format!("{:016x}", self.hash)
    }
}

struct CacheInner {
    map: HashMap<String, CacheEntry>,
    /// Monotone access clock; the entry with the smallest stamp is the
    /// least recently used. O(n) eviction scan — fine at the bounded
    /// capacities this cache runs with.
    clock: u64,
}

struct CacheEntry {
    body: std::sync::Arc<String>,
    last_used: u64,
}

/// Bounded LRU cache of pre-rendered solve response bodies.
pub struct SolveCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl SolveCache {
    /// A cache holding at most `capacity` entries. Capacity 0 disables
    /// caching entirely: every insert is dropped and every lookup
    /// misses.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                clock: 0,
            }),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Look up a result, refreshing its recency on a hit.
    #[must_use]
    pub fn get(&self, key: &ContentKey) -> Option<std::sync::Arc<String>> {
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let entry = inner.map.get_mut(key.canonical())?;
        entry.last_used = clock;
        Some(std::sync::Arc::clone(&entry.body))
    }

    /// Insert (or refresh) a result, evicting the least recently used
    /// entry beyond capacity. Returns the number of evictions (0 or 1).
    pub fn insert(&self, key: &ContentKey, body: std::sync::Arc<String>) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let fresh = !inner.map.contains_key(key.canonical());
        let mut evicted = 0;
        if fresh && inner.map.len() >= self.capacity {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
                evicted = 1;
            }
        }
        inner.map.insert(
            key.canonical().to_string(),
            CacheEntry {
                body,
                last_used: clock,
            },
        );
        evicted
    }

    /// Number of cached results.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache holds no results.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3d::service::{ServiceCase, ZoneSchedule};
    use llp::Policy;
    use std::sync::Arc;

    fn case(zones: usize) -> AnyCase {
        AnyCase::F3d(ServiceCase {
            zones,
            steps: 3,
            workers: 2,
            schedule: Policy::Static,
            zone_schedule: ZoneSchedule::Sequential,
            vector_width: 1,
        })
    }

    fn f3d_variant(f: impl FnOnce(&mut ServiceCase)) -> AnyCase {
        let AnyCase::F3d(mut c) = case(2) else {
            unreachable!()
        };
        f(&mut c);
        AnyCase::F3d(c)
    }

    fn key(zones: usize) -> ContentKey {
        ContentKey::for_case(&case(zones), false, 0)
    }

    #[test]
    fn keys_embed_case_auto_and_generation() {
        let base = key(2);
        assert_eq!(
            base.canonical(),
            "solve/f3d/zones=2;steps=3;workers=2;schedule=static;zone_schedule=sequential;vector_width=1;auto=false;tune_gen=0"
        );
        assert_ne!(base, key(3));
        // The width is a semantic field, always spelled in the key: an
        // explicit scalar width and an omitted one build the same case
        // (api parsing) and therefore the same key, while a wide solve
        // keys separately.
        let wide = ContentKey::for_case(&f3d_variant(|c| c.vector_width = 4), false, 0);
        assert_ne!(base, wide);
        assert!(wide.canonical().contains("vector_width=4"));
        // The zone schedule is a semantic field: a zone-parallel solve
        // keys separately from the sequential one (same answer, but the
        // response's zone_level block differs).
        let zoned = ContentKey::for_case(
            &f3d_variant(|c| c.zone_schedule = ZoneSchedule::Zones(2)),
            false,
            0,
        );
        assert_ne!(base, zoned);
        assert!(zoned.canonical().contains("zone_schedule=zones,shards=2"));
        let auto0 = ContentKey::for_case(&case(2), true, 0);
        let auto1 = ContentKey::for_case(&case(2), true, 1);
        assert_ne!(base, auto0, "auto solves key separately");
        assert_ne!(auto0, auto1, "recalibration invalidates tuned entries");
        // Non-auto solves ignore the generation: their results do not
        // depend on the tune database.
        assert_eq!(
            ContentKey::for_case(&case(2), false, 7),
            ContentKey::for_case(&case(2), false, 0)
        );
        assert_eq!(base.digest().len(), 16);
    }

    #[test]
    fn solver_kind_prefixes_the_key() {
        let fdtd = ContentKey::for_case(
            &AnyCase::Fdtd(fdtd::FdtdCase {
                size: 16,
                steps: 3,
                workers: 2,
                schedule: Policy::Static,
                vector_width: 1,
            }),
            false,
            0,
        );
        assert_eq!(
            fdtd.canonical(),
            "solve/fdtd/size=16;steps=3;workers=2;schedule=static;vector_width=1;auto=false;tune_gen=0"
        );
        assert_ne!(fdtd, key(2), "solver kinds namespace the cache");
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let cache = SolveCache::new(2);
        assert!(cache.is_empty());
        assert_eq!(cache.insert(&key(1), Arc::new("a".into())), 0);
        assert_eq!(cache.insert(&key(2), Arc::new("b".into())), 0);
        // Touch key(1) so key(2) is the LRU.
        assert_eq!(cache.get(&key(1)).unwrap().as_str(), "a");
        assert_eq!(cache.insert(&key(3), Arc::new("c".into())), 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(2)).is_none(), "LRU entry must be evicted");
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
    }

    #[test]
    fn reinserting_refreshes_without_evicting() {
        let cache = SolveCache::new(2);
        cache.insert(&key(1), Arc::new("a".into()));
        cache.insert(&key(2), Arc::new("b".into()));
        assert_eq!(
            cache.insert(&key(1), Arc::new("a2".into())),
            0,
            "refresh of a resident key must not evict"
        );
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key(1)).unwrap().as_str(), "a2");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = SolveCache::new(0);
        assert_eq!(cache.insert(&key(1), Arc::new("a".into())), 0);
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.is_empty());
    }
}
