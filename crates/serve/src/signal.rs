//! Shutdown-signal hooks without a signals crate.
//!
//! The build environment has no `libc`/`signal-hook`, so on Unix the
//! daemon installs handlers through a hand-declared binding to the
//! C `signal(2)` entry point. The handler only stores into an
//! [`AtomicBool`] — the one thing that is async-signal-safe — and the
//! main thread polls [`requested`]. On non-Unix targets these are
//! no-ops and the daemon only stops on queue drain / process kill.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT/SIGTERM has arrived since [`install`].
#[must_use]
pub fn requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
}

/// Test/driver hook: mark shutdown as requested, exactly as a signal
/// would.
pub fn request() {
    SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// C `signal(2)`. Declared by hand because no libc crate is
        /// available; the handler-pointer-as-usize convention matches
        /// the platform ABI for this call.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::request();
    }

    pub fn install() {
        // SAFETY: `on_signal` only performs an atomic store, which is
        // async-signal-safe; `signal` itself is safe to call with a
        // valid function pointer.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Install SIGINT/SIGTERM handlers that set the shutdown flag.
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_the_flag() {
        install();
        request();
        assert!(requested());
    }
}
