//! `llpd` — the llpserve daemon.
//!
//! ```text
//! llpd [--addr 127.0.0.1:8080] [--workers N] [--shards N] [--queue N]
//!      [--deadline-secs N] [--cache-capacity N] [--tune-db PATH]
//!      [--memory-budget BYTES] [--telemetry-window-ms N]
//!      [--telemetry-out PATH]
//! ```
//!
//! `--cache-capacity` bounds the content-addressed solve-result cache
//! (entries; 0 disables caching — identical in-flight solves still
//! coalesce).
//!
//! `--memory-budget` (or the `LLPD_MEM_BUDGET` environment variable)
//! caps the estimated per-solve memory footprint in bytes; over-budget
//! solves are rejected with 413 before any pool work. Unset admits
//! everything.
//!
//! `--tune-db` (or the `LLPD_TUNE_DB` environment variable) names a
//! tune database to load at startup; `"schedule": "auto"` solves and
//! `/v1/advise` resolve against it. A database that fails to load is
//! warned about and skipped — the server still starts.
//!
//! `--telemetry-window-ms` sets the width of the continuous-telemetry
//! windows (`/v1/stats`, the drift watchdog); 0 disables telemetry.
//! `--telemetry-out` names a file the final drain snapshot is written
//! to on shutdown; without it the snapshot goes to stderr.
//!
//! The NDJSON access log on stderr is gated by `LLPD_LOG`
//! (`error`/`info`/`debug`, default `info`).
//!
//! Runs until SIGINT/SIGTERM, then drains in-flight work, emits the
//! telemetry drain snapshot, and exits.

use serve::{signal, Server, ServerConfig};
use std::path::PathBuf;
use std::time::Duration;

/// Paths parsed alongside the [`ServerConfig`]: the tune database to
/// load and where to write the drain telemetry snapshot.
#[derive(Debug, Default, PartialEq, Eq)]
struct Paths {
    tune_db: Option<PathBuf>,
    telemetry_out: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<(ServerConfig, Paths), String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:8080".to_string(),
        ..ServerConfig::default()
    };
    let mut paths = Paths::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be a positive integer".to_string())?;
                if config.workers == 0 {
                    return Err("--workers must be a positive integer".to_string());
                }
            }
            "--shards" => {
                config.shards = value("--shards")?
                    .parse()
                    .map_err(|_| "--shards must be a non-negative integer (0 = auto)".to_string())?;
            }
            "--queue" => {
                config.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|_| "--queue must be an integer".to_string())?;
            }
            "--deadline-secs" => {
                let secs: u64 = value("--deadline-secs")?
                    .parse()
                    .map_err(|_| "--deadline-secs must be an integer".to_string())?;
                config.deadline = Duration::from_secs(secs);
            }
            "--cache-capacity" => {
                config.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|_| "--cache-capacity must be an integer (0 disables)".to_string())?;
            }
            "--telemetry-window-ms" => {
                config.telemetry_window_ms = value("--telemetry-window-ms")?.parse().map_err(
                    |_| "--telemetry-window-ms must be an integer (0 disables)".to_string(),
                )?;
            }
            "--telemetry-out" => {
                paths.telemetry_out = Some(PathBuf::from(value("--telemetry-out")?));
            }
            "--tune-db" => paths.tune_db = Some(PathBuf::from(value("--tune-db")?)),
            "--memory-budget" => {
                let bytes: u64 = value("--memory-budget")?
                    .parse()
                    .map_err(|_| "--memory-budget must be a positive byte count".to_string())?;
                if bytes == 0 {
                    return Err("--memory-budget must be a positive byte count".to_string());
                }
                config.memory_budget = Some(bytes);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: llpd [--addr HOST:PORT] [--workers N] [--shards N] [--queue N] [--deadline-secs N] [--cache-capacity N] [--tune-db PATH] [--memory-budget BYTES] [--telemetry-window-ms N] [--telemetry-out PATH]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok((config, paths))
}

/// Load the startup tune database: the `--tune-db` flag wins, else
/// `LLPD_TUNE_DB`. Load failures warn and fall back to serving
/// untuned — a stale path must not keep the daemon down.
fn load_tune_db(flag: Option<PathBuf>) -> Option<tune::TuneDb> {
    let path = flag.or_else(|| llp::env::path("LLPD_TUNE_DB"))?;
    match tune::TuneDb::load(&path) {
        Ok(db) => {
            eprintln!(
                "llpd: loaded tune db {} ({} kernels, pool width {})",
                path.display(),
                db.entries.len(),
                db.pool_width
            );
            Some(db)
        }
        Err(msg) => {
            eprintln!("llpd: warning: {msg}; serving without a tune db");
            None
        }
    }
}

/// Deliver the drain snapshot: to `--telemetry-out` when given (errors
/// fall back to stderr — a full disk must not eat the final windows),
/// else to stderr.
fn write_drain_snapshot(snapshot: &llp::obs::json::Json, out: Option<&PathBuf>) {
    let text = snapshot.to_pretty_string();
    if let Some(path) = out {
        match std::fs::write(path, &text) {
            Ok(()) => {
                eprintln!("llpd: drain telemetry written to {}", path.display());
                return;
            }
            Err(e) => eprintln!("llpd: warning: cannot write {}: {e}", path.display()),
        }
    }
    eprintln!("{}", snapshot);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mut config, paths) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    config.tune_db = load_tune_db(paths.tune_db);
    if config.memory_budget.is_none() {
        config.memory_budget = llp::env::positive_usize("LLPD_MEM_BUDGET").map(|v| v as u64);
    }
    let workers = config.workers;
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("llpd: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "llpd listening on http://{} ({workers} workers, {} executor shards)",
        server.addr(),
        server.shards()
    );
    signal::install();
    while !signal::requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    println!("llpd: shutdown requested, draining");
    let snapshot = server.shutdown_with_telemetry();
    write_drain_snapshot(&snapshot, paths.telemetry_out.as_ref());
    println!("llpd: drained, exiting");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags() {
        let args: Vec<String> = [
            "--addr",
            "0.0.0.0:9999",
            "--workers",
            "4",
            "--shards",
            "2",
            "--queue",
            "3",
            "--cache-capacity",
            "5",
            "--telemetry-window-ms",
            "250",
            "--memory-budget",
            "1048576",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let (config, paths) = parse_args(&args).unwrap();
        assert_eq!(config.addr, "0.0.0.0:9999");
        assert_eq!(config.workers, 4);
        assert_eq!(config.shards, 2);
        assert_eq!(config.resolved_shards(), 2);
        assert_eq!(config.queue_capacity, 3);
        assert_eq!(config.cache_capacity, 5);
        assert_eq!(config.telemetry_window_ms, 250);
        assert_eq!(config.memory_budget, Some(1_048_576));
        assert_eq!(paths, Paths::default());
        assert!(parse_args(&["--cache-capacity".to_string(), "x".to_string()]).is_err());
        assert!(parse_args(&["--memory-budget".to_string(), "0".to_string()]).is_err());
        assert!(parse_args(&["--memory-budget".to_string(), "x".to_string()]).is_err());
        assert!(parse_args(&["--shards".to_string(), "x".to_string()]).is_err());
        assert!(parse_args(&["--workers".to_string(), "0".to_string()]).is_err());
        assert!(parse_args(&["--telemetry-window-ms".to_string(), "x".to_string()]).is_err());
        assert!(parse_args(&["--bogus".to_string()]).is_err());
        assert!(parse_args(&["--workers".to_string()]).is_err());
    }

    #[test]
    fn telemetry_flags_parse_and_default_off_path() {
        let args: Vec<String> = ["--telemetry-out", "/tmp/drain.json"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let (config, paths) = parse_args(&args).unwrap();
        assert_eq!(paths.telemetry_out, Some(PathBuf::from("/tmp/drain.json")));
        // The window default comes from the library, not the flag.
        assert_eq!(
            config.telemetry_window_ms,
            llp::obs::series::DEFAULT_WINDOW_MS
        );
        assert!(parse_args(&["--telemetry-out".to_string()]).is_err());
    }

    #[test]
    fn tune_db_flag_parses_and_bad_paths_fall_back() {
        let args: Vec<String> = ["--tune-db", "/tmp/db.json"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let (_, paths) = parse_args(&args).unwrap();
        assert_eq!(paths.tune_db, Some(PathBuf::from("/tmp/db.json")));
        assert!(parse_args(&["--tune-db".to_string()]).is_err());
        // A missing file warns and serves untuned instead of dying.
        assert!(load_tune_db(Some(PathBuf::from("/nonexistent/tune.json"))).is_none());
        assert!(load_tune_db(None).is_none());
    }
}
