//! Readiness event-loop primitives without an async runtime.
//!
//! The build environment has no `mio`/`tokio`/`libc`, so the serve
//! core drives nonblocking sockets through a hand-declared binding to
//! the C `poll(2)` entry point — the same pattern as the `signal(2)`
//! shim in [`crate::signal`]. This module owns the mechanism only:
//!
//! * [`PollFd`]/[`wait`] — the `poll(2)` binding. On non-Unix targets
//!   `wait` degrades to a short sleep that reports every descriptor
//!   ready; all sockets are nonblocking, so spurious readiness costs a
//!   `WouldBlock` per socket rather than correctness.
//! * [`waker`] — a self-wake channel (a connected localhost UDP socket
//!   pair) that lets executor threads interrupt a `wait` when a job
//!   completion needs delivering.
//! * [`Conn`] — one connection's buffered nonblocking I/O: an
//!   accumulating read buffer the incremental HTTP parser re-examines,
//!   and a bounded write buffer drained on `POLLOUT` readiness.
//!
//! The policy — parsing, routing, admission, keep-alive, deadlines —
//! lives in `server.rs`, which composes these pieces into the actual
//! event loop.

use std::io::{self, Read, Write};
use std::net::{TcpStream, UdpSocket};
use std::sync::Arc;

/// `poll(2)` readiness: data available to read.
pub const POLLIN: i16 = 0x001;
/// `poll(2)` readiness: writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// `poll(2)` condition: error on the descriptor.
pub const POLLERR: i16 = 0x008;
/// `poll(2)` condition: peer hung up.
pub const POLLHUP: i16 = 0x010;
/// `poll(2)` condition: descriptor not open.
pub const POLLNVAL: i16 = 0x020;

/// One entry of a `poll(2)` set, layout-compatible with C `struct
/// pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// Descriptor to watch (negative entries are ignored by `poll`).
    pub fd: i32,
    /// Requested events ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Returned events, filled by [`wait`].
    pub revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for `events`.
    #[must_use]
    pub fn new(fd: i32, events: i16) -> Self {
        Self {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether any of `mask` (or an error/hangup condition) fired.
    #[must_use]
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & (mask | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

/// The raw descriptor of a socket, for [`PollFd::new`].
#[cfg(unix)]
#[must_use]
pub fn raw_fd<T: std::os::unix::io::AsRawFd>(socket: &T) -> i32 {
    socket.as_raw_fd()
}

/// Non-Unix fallback: descriptors are never inspected because the
/// fallback [`wait`] reports everything ready.
#[cfg(not(unix))]
#[must_use]
pub fn raw_fd<T>(_socket: &T) -> i32 {
    -1
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::PollFd;

    extern "C" {
        /// C `poll(2)`. Declared by hand because no libc crate is
        /// available; `nfds_t` is `usize` on every supported Unix ABI.
        fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
    }

    pub fn wait(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
        // SAFETY: `fds` is a valid exclusive slice of `repr(C)` pollfd
        // structs for the duration of the call, and `poll` writes only
        // within it.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms) };
        if rc >= 0 {
            return Ok(usize::try_from(rc).unwrap_or(0));
        }
        let err = std::io::Error::last_os_error();
        if err.kind() == std::io::ErrorKind::Interrupted {
            // EINTR (a signal landed): report a timeout; the loop's
            // next iteration re-checks shutdown flags and deadlines.
            return Ok(0);
        }
        Err(err)
    }
}

#[cfg(not(unix))]
mod imp {
    use super::PollFd;

    pub fn wait(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
        // No poll(2): nap briefly, then report every descriptor ready.
        // All sockets are nonblocking, so a not-actually-ready socket
        // just answers WouldBlock.
        let nap = timeout_ms.clamp(0, 10);
        if nap > 0 {
            std::thread::sleep(std::time::Duration::from_millis(nap as u64));
        }
        for fd in fds.iter_mut() {
            fd.revents = fd.events;
        }
        Ok(fds.len())
    }
}

/// Block until a watched descriptor is ready, the waker fires, or
/// `timeout_ms` elapses. Returns the number of ready entries (0 on
/// timeout); `revents` is filled in place.
///
/// # Errors
/// Propagates `poll(2)` failures other than `EINTR` (which reports as
/// a timeout so the caller re-checks its flags).
pub fn wait(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    imp::wait(fds, timeout_ms)
}

/// Cross-thread wake handle: cheap to clone, safe to fire from any
/// thread (and redundantly — extra datagrams coalesce in the receive
/// buffer and drain together).
#[derive(Debug, Clone)]
pub struct Waker {
    tx: Arc<UdpSocket>,
}

impl Waker {
    /// Interrupt the event loop's current (or next) [`wait`].
    pub fn wake(&self) {
        // A full socket buffer means wakeups are already pending —
        // dropping this one is fine.
        let _ = self.tx.send(&[1u8]);
    }
}

/// The event loop's end of the wake channel.
#[derive(Debug)]
pub struct WakeReceiver {
    rx: UdpSocket,
}

impl WakeReceiver {
    /// Descriptor to include in the poll set with [`POLLIN`].
    #[must_use]
    pub fn fd(&self) -> i32 {
        raw_fd(&self.rx)
    }

    /// Consume every pending wakeup datagram.
    pub fn drain(&self) {
        let mut buf = [0u8; 16];
        while self.rx.recv(&mut buf).is_ok() {}
    }
}

/// Create a connected wake channel on the loopback interface.
///
/// # Errors
/// Propagates socket setup failures (the server treats this as fatal
/// at startup — without a waker, completions could stall a full poll
/// timeout).
pub fn waker() -> io::Result<(Waker, WakeReceiver)> {
    let rx = UdpSocket::bind("127.0.0.1:0")?;
    rx.set_nonblocking(true)?;
    let tx = UdpSocket::bind("127.0.0.1:0")?;
    tx.connect(rx.local_addr()?)?;
    tx.set_nonblocking(true)?;
    Ok((Waker { tx: Arc::new(tx) }, WakeReceiver { rx }))
}

/// Outcome of one nonblocking read pass over a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Appended at least one byte to the read buffer.
    Progress,
    /// Nothing available right now (`WouldBlock`).
    Idle,
    /// Orderly end of stream: the peer finished sending.
    Eof,
    /// The socket failed (reset, aborted); the connection is dead.
    Failed,
}

/// One connection's buffered nonblocking I/O state.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    /// Accumulated unparsed request bytes; the incremental parser
    /// re-examines this prefix on every readable event and
    /// [`Conn::consume`] drops what it framed.
    pub read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    written: usize,
    /// Close the connection once the write buffer drains (error
    /// responses, `Connection: close`, drain-time hangups).
    pub close_after_write: bool,
}

impl Conn {
    /// Adopt an accepted stream, switching it to nonblocking mode.
    ///
    /// # Errors
    /// Propagates `set_nonblocking` failure.
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        Ok(Self {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            close_after_write: false,
        })
    }

    /// Descriptor for the poll set.
    #[must_use]
    pub fn fd(&self) -> i32 {
        raw_fd(&self.stream)
    }

    /// Read whatever is available, appending to the read buffer but
    /// never growing it past `cap` (readiness-level backpressure: the
    /// caller stops polling `POLLIN` while the buffer is at capacity).
    ///
    /// Bytes that arrived just before an orderly close are reported as
    /// [`ReadOutcome::Progress`] first; the EOF is re-observed on the
    /// next call (a closed socket stays readable and keeps answering
    /// zero-byte reads).
    pub fn read_some(&mut self, cap: usize) -> ReadOutcome {
        let mut chunk = [0u8; 4096];
        let mut progressed = false;
        let mut eof = false;
        while self.read_buf.len() < cap {
            let want = chunk.len().min(cap - self.read_buf.len());
            match self.stream.read(&mut chunk[..want]) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Failed,
            }
        }
        if progressed {
            ReadOutcome::Progress
        } else if eof {
            ReadOutcome::Eof
        } else {
            ReadOutcome::Idle
        }
    }

    /// Drop the first `n` read-buffer bytes (a framed request).
    pub fn consume(&mut self, n: usize) {
        self.read_buf.drain(..n);
    }

    /// Append response bytes to the write buffer.
    pub fn queue_write(&mut self, bytes: &[u8]) {
        self.write_buf.extend_from_slice(bytes);
    }

    /// Whether unwritten response bytes remain.
    #[must_use]
    pub fn has_pending_write(&self) -> bool {
        self.written < self.write_buf.len()
    }

    /// Write as much buffered response as the socket accepts. Returns
    /// `true` once the buffer is fully flushed.
    ///
    /// # Errors
    /// Propagates fatal socket errors (the connection is dead).
    pub fn flush_some(&mut self) -> io::Result<bool> {
        while self.written < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.written..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.write_buf.clear();
        self.written = 0;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn waker_interrupts_a_wait() {
        let (waker, receiver) = waker().unwrap();
        waker.wake();
        let mut fds = [PollFd::new(receiver.fd(), POLLIN)];
        let ready = wait(&mut fds, 2_000).unwrap();
        assert!(ready >= 1, "wake datagram must make the receiver ready");
        assert!(fds[0].ready(POLLIN));
        receiver.drain();
    }

    #[cfg(unix)]
    #[test]
    fn drained_waker_times_out() {
        let (waker, receiver) = waker().unwrap();
        waker.wake();
        waker.wake();
        receiver.drain();
        let mut fds = [PollFd::new(receiver.fd(), POLLIN)];
        assert_eq!(wait(&mut fds, 0).unwrap(), 0, "drained waker stays quiet");
    }

    #[cfg(unix)]
    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut fds = [PollFd::new(raw_fd(&listener), POLLIN)];
        assert_eq!(wait(&mut fds, 0).unwrap(), 0, "no pending connection yet");
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let ready = wait(&mut fds, 2_000).unwrap();
        assert_eq!(ready, 1);
        assert!(fds[0].ready(POLLIN));
    }

    #[test]
    fn conn_buffers_reads_and_flushes_writes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        let mut conn = Conn::new(accepted).unwrap();

        client.write_all(b"hello").unwrap();
        // Wait for readiness, then read.
        let mut fds = [PollFd::new(conn.fd(), POLLIN)];
        wait(&mut fds, 2_000).unwrap();
        loop {
            match conn.read_some(1024) {
                ReadOutcome::Progress => break,
                ReadOutcome::Idle => {
                    wait(&mut [PollFd::new(conn.fd(), POLLIN)], 100).unwrap();
                }
                other => panic!("unexpected read outcome {other:?}"),
            }
        }
        assert_eq!(conn.read_buf, b"hello");
        conn.consume(5);
        assert!(conn.read_buf.is_empty());

        conn.queue_write(b"world");
        assert!(conn.has_pending_write());
        while !conn.flush_some().unwrap() {}
        let mut got = [0u8; 5];
        std::io::Read::read_exact(&mut client, &mut got).unwrap();
        assert_eq!(&got, b"world");
    }

    #[test]
    fn read_respects_the_buffer_cap() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        let mut conn = Conn::new(accepted).unwrap();
        client.write_all(&[7u8; 64]).unwrap();
        let mut fds = [PollFd::new(conn.fd(), POLLIN)];
        wait(&mut fds, 2_000).unwrap();
        while conn.read_buf.len() < 16 {
            conn.read_some(16);
            wait(&mut fds, 50).unwrap();
        }
        assert_eq!(conn.read_buf.len(), 16, "cap bounds the buffer");
    }

    #[test]
    fn eof_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        let mut conn = Conn::new(accepted).unwrap();
        drop(client);
        loop {
            match conn.read_some(1024) {
                ReadOutcome::Eof => break,
                ReadOutcome::Idle => {
                    wait(&mut [PollFd::new(conn.fd(), POLLIN)], 100).unwrap();
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }
}
