//! Minimal HTTP/1.1 framing over [`std::io`] streams and byte buffers.
//!
//! The build environment has no HTTP crates, so `llpd` frames requests
//! and responses by hand. The subset is deliberately small: bodies
//! delimited by `Content-Length` only, and hard caps on header and body
//! sizes so a hostile peer cannot make the server allocate without
//! bound. Two parsers share one interpretation of the protocol:
//!
//! * [`read_request`] — the original one-shot parser over a blocking
//!   [`BufRead`] stream, kept as the reference implementation (and the
//!   oracle the property tests compare against).
//! * [`parse_request_bytes`] — the incremental parser the readiness
//!   event loop calls against a connection's accumulated read buffer.
//!   It either completes with a request plus its consumed byte count
//!   (leaving pipelined bytes in place), asks for more bytes, or fails
//!   with the same [`HttpError`] the one-shot parser would produce.
//!
//! Keep-alive follows HTTP/1.1 defaults: connections persist unless the
//! request says `Connection: close` (or is HTTP/1.0 without
//! `Connection: keep-alive`). Responses to malformed requests always
//! close.

use std::io::{BufRead, Write};

/// Maximum bytes of request line + headers accepted.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed request: method, decoded path, raw query string, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercase as sent.
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Query string (after `?`), empty if absent.
    pub query: String,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: String,
    /// Lowercased `Accept` header value, empty if absent — `/metrics`
    /// negotiates Prometheus text vs JSON on it.
    pub accept: String,
    /// Whether the connection should persist after the response:
    /// HTTP/1.1 defaults to `true`, `Connection: close` forces `false`,
    /// HTTP/1.0 defaults to `false` unless `Connection: keep-alive`.
    pub keep_alive: bool,
}

/// The `Content-Type` of the Prometheus text exposition format.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// A response: status code plus a body (JSON unless marked otherwise),
/// with the handful of extra headers the service emits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// `Retry-After` seconds, sent with 429/503 responses.
    pub retry_after: Option<u64>,
    /// Trace id of the execution that produced this response, if one
    /// exists — carried so the access log can correlate request lines
    /// with `/v1/trace` lookups. Not an HTTP header.
    pub trace_id: Option<u64>,
}

impl Response {
    /// A 200 response with the given JSON body.
    #[must_use]
    pub fn ok(body: String) -> Self {
        Self {
            status: 200,
            body,
            content_type: "application/json",
            retry_after: None,
            trace_id: None,
        }
    }

    /// A 200 response in the Prometheus text exposition format.
    #[must_use]
    pub fn prometheus(body: String) -> Self {
        Self {
            status: 200,
            body,
            content_type: PROMETHEUS_CONTENT_TYPE,
            retry_after: None,
            trace_id: None,
        }
    }

    /// An error response with a `{"error": ...}` JSON body.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        let body =
            llp::obs::json::Json::object(vec![("error", llp::obs::json::Json::str(message))]);
        Self {
            status,
            body: body.to_string(),
            content_type: "application/json",
            retry_after: None,
            trace_id: None,
        }
    }

    /// The same response with a `Retry-After` header.
    #[must_use]
    pub fn with_retry_after(mut self, seconds: u64) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    /// The same response tagged with the trace id of its execution.
    #[must_use]
    pub fn with_trace_id(mut self, trace_id: Option<u64>) -> Self {
        self.trace_id = trace_id;
        self
    }
}

/// A request-framing failure the caller should answer with `status`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// Status code to answer with.
    pub status: u16,
    /// Human-readable description (lands in the error body).
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        Self {
            status,
            message: message.into(),
        }
    }
}

/// Standard reason phrase for the status codes this service emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Parsed request line: method, raw target, and whether the version is
/// HTTP/1.0 (which flips the keep-alive default).
struct RequestLine {
    method: String,
    target: String,
    http10: bool,
}

fn parse_request_line(line: &str) -> Result<RequestLine, HttpError> {
    let mut parts = line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(400, "malformed request line"));
    }
    Ok(RequestLine {
        method,
        target,
        http10: version == "HTTP/1.0",
    })
}

/// The header fields this service interprets, accumulated line by line.
#[derive(Default)]
struct HeaderFields {
    content_length: usize,
    /// Lowercased `Connection` header value, if sent.
    connection: Option<String>,
    /// Lowercased `Accept` header value, if sent.
    accept: Option<String>,
}

impl HeaderFields {
    fn apply(&mut self, line: &str) -> Result<(), HttpError> {
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(400, "malformed header"));
        };
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            self.content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::new(400, "malformed Content-Length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            self.connection = Some(value.trim().to_ascii_lowercase());
        } else if name.eq_ignore_ascii_case("accept") {
            self.accept = Some(value.trim().to_ascii_lowercase());
        }
        Ok(())
    }

    fn keep_alive(&self, http10: bool) -> bool {
        match self.connection.as_deref() {
            Some("close") => false,
            Some("keep-alive") => true,
            _ => !http10,
        }
    }
}

fn assemble(line: RequestLine, headers: &HeaderFields, body: String) -> Request {
    let (path, query) = match line.target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (line.target, String::new()),
    };
    Request {
        method: line.method,
        path,
        query,
        body,
        accept: headers.accept.clone().unwrap_or_default(),
        keep_alive: headers.keep_alive(line.http10),
    }
}

/// Read one request from `stream`.
///
/// # Errors
/// [`HttpError`] carries the status the connection should answer with:
/// 400 for malformed framing, 408 when the peer stalls past the socket
/// read timeout, 413 when the declared body exceeds `max_body`.
pub fn read_request(stream: &mut impl BufRead, max_body: usize) -> Result<Request, HttpError> {
    let mut head = String::new();
    let request_line = parse_request_line(&read_crlf_line(stream, &mut head)?)?;

    let mut headers = HeaderFields::default();
    loop {
        let line = read_crlf_line(stream, &mut head)?;
        if line.is_empty() {
            break;
        }
        headers.apply(&line)?;
    }

    if headers.content_length > max_body {
        return Err(HttpError::new(
            413,
            format!(
                "body of {} bytes exceeds limit {max_body}",
                headers.content_length
            ),
        ));
    }
    let mut body = vec![0u8; headers.content_length];
    std::io::Read::read_exact(stream, &mut body).map_err(io_to_http)?;
    let body = String::from_utf8(body).map_err(|_| HttpError::new(400, "body is not UTF-8"))?;
    Ok(assemble(request_line, &headers, body))
}

/// Outcome of [`parse_request_bytes`] over an accumulated read buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parse {
    /// A complete request plus the number of buffer bytes it consumed
    /// (pipelined follow-up bytes start at that offset).
    Complete(Request, usize),
    /// The buffer holds only a request prefix; read more bytes. If the
    /// peer has already closed, the connection died mid-request.
    Partial,
}

/// Incrementally parse one request from the front of `buf`.
///
/// The buffer is the connection's accumulated read bytes; the parser is
/// stateless and re-examines the prefix on every call, which keeps it
/// trivially restartable and is cheap at these head sizes. Outcomes are
/// byte-for-byte identical to feeding the same bytes to
/// [`read_request`] — the property suite enforces this at every split
/// boundary.
///
/// # Errors
/// The same [`HttpError`]s as [`read_request`]: 400 for malformed
/// framing or non-UTF-8 content, 413 for an oversized head or declared
/// body. Errors are terminal for the connection.
pub fn parse_request_bytes(buf: &[u8], max_body: usize) -> Result<Parse, HttpError> {
    let mut pos = 0usize;
    let mut head_used = 0usize;
    let mut request_line: Option<RequestLine> = None;
    let mut headers = HeaderFields::default();
    loop {
        let Some(nl) = buf[pos..].iter().position(|&b| b == b'\n') else {
            // No newline in the remainder: an over-budget partial line
            // is already fatal, otherwise wait for more bytes.
            if head_used + (buf.len() - pos) > MAX_HEAD_BYTES {
                return Err(HttpError::new(413, "request head too large"));
            }
            return Ok(Parse::Partial);
        };
        let raw = &buf[pos..=pos + nl];
        if head_used + raw.len() > MAX_HEAD_BYTES {
            return Err(HttpError::new(413, "request head too large"));
        }
        head_used += raw.len();
        pos += nl + 1;
        let line = std::str::from_utf8(raw)
            .map_err(|_| HttpError::new(400, "header is not UTF-8"))?
            .trim_end_matches(['\r', '\n']);
        // Validate each line as it completes so error precedence matches
        // the one-shot parser exactly (a malformed request line fails
        // before a later oversized header can).
        match &request_line {
            None => request_line = Some(parse_request_line(line)?),
            Some(_) if line.is_empty() => break,
            Some(_) => headers.apply(line)?,
        }
    }
    let request_line = request_line.expect("loop breaks only after the request line");

    if headers.content_length > max_body {
        return Err(HttpError::new(
            413,
            format!(
                "body of {} bytes exceeds limit {max_body}",
                headers.content_length
            ),
        ));
    }
    if buf.len() - pos < headers.content_length {
        return Ok(Parse::Partial);
    }
    let body = std::str::from_utf8(&buf[pos..pos + headers.content_length])
        .map_err(|_| HttpError::new(400, "body is not UTF-8"))?
        .to_string();
    let consumed = pos + headers.content_length;
    Ok(Parse::Complete(
        assemble(request_line, &headers, body),
        consumed,
    ))
}

/// Read one CRLF-terminated line, charging its bytes against the shared
/// head budget in `consumed`.
fn read_crlf_line(stream: &mut impl BufRead, consumed: &mut String) -> Result<String, HttpError> {
    let budget = MAX_HEAD_BYTES.saturating_sub(consumed.len());
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = stream.fill_buf().map_err(io_to_http)?;
        if buf.is_empty() {
            return Err(HttpError::new(400, "connection closed mid-request"));
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let wanted = newline.map_or(buf.len(), |i| i + 1);
        if line.len() + wanted > budget {
            return Err(HttpError::new(413, "request head too large"));
        }
        line.extend_from_slice(&buf[..wanted]);
        stream.consume(wanted);
        if newline.is_some() {
            break;
        }
    }
    let line = String::from_utf8(line).map_err(|_| HttpError::new(400, "header is not UTF-8"))?;
    consumed.push_str(&line);
    Ok(line.trim_end_matches(['\r', '\n']).to_string())
}

fn io_to_http(err: std::io::Error) -> HttpError {
    match err.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            HttpError::new(408, "timed out reading request")
        }
        // A peer hanging up mid-body is the same failure as hanging up
        // mid-head; keeping the message identical keeps the one-shot
        // path equivalent to the incremental parser plus an EOF event.
        std::io::ErrorKind::UnexpectedEof => HttpError::new(400, "connection closed mid-request"),
        _ => HttpError::new(400, format!("read failed: {err}")),
    }
}

/// Serialize `response` to wire bytes, with the `Connection` header the
/// event loop's keep-alive decision calls for.
#[must_use]
pub fn render_response(response: &Response, keep_alive: bool) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    );
    if let Some(seconds) = response.retry_after {
        head.push_str(&format!("Retry-After: {seconds}\r\n"));
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(response.body.as_bytes());
    out
}

/// Write `response` to `stream` with `Connection: close` (errors are
/// returned for the caller to ignore — a peer that hung up mid-response
/// is its own problem).
///
/// # Errors
/// Propagates the underlying socket write error.
pub fn write_response(stream: &mut impl Write, response: &Response) -> std::io::Result<()> {
    stream.write_all(&render_response(response, false))?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_get_with_query() {
        let r = parse("GET /v1/model/stairstep?units=15&processors=4 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/v1/model/stairstep");
        assert_eq!(r.query, "units=15&processors=4");
        assert!(r.body.is_empty());
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_post_with_body() {
        let r =
            parse("POST /v1/solve HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"zones\":2}").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, "{\"zones\":2}");
    }

    #[test]
    fn keep_alive_follows_the_version_and_connection_header() {
        let keep = |raw: &str| parse(raw).unwrap().keep_alive;
        assert!(keep("GET / HTTP/1.1\r\n\r\n"));
        assert!(!keep("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
        assert!(!keep("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n"));
        assert!(!keep("GET / HTTP/1.0\r\n\r\n"));
        assert!(keep("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"));
    }

    #[test]
    fn captures_the_accept_header_lowercased() {
        let r = parse("GET /metrics HTTP/1.1\r\nAccept: Application/JSON\r\n\r\n").unwrap();
        assert_eq!(r.accept, "application/json");
        let r = parse("GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.accept, "");
        // Both parsers agree on the capture.
        let wire = b"GET /metrics HTTP/1.1\r\nAccept: text/plain, application/json;q=0.5\r\n\r\n";
        let Parse::Complete(req, _) = parse_request_bytes(wire, 1024).unwrap() else {
            panic!("expected completion");
        };
        assert_eq!(req.accept, "text/plain, application/json;q=0.5");
    }

    #[test]
    fn rejects_oversized_bodies_without_reading_them() {
        let e = parse("POST /v1/solve HTTP/1.1\r\nContent-Length: 999999\r\n\r\n").unwrap_err();
        assert_eq!(e.status, 413);
    }

    #[test]
    fn rejects_malformed_framing() {
        assert_eq!(parse("nonsense\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GET /x SPDY/3\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse("POST /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse("POST /x HTTP/1.1\r\nno-colon-here\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        // Truncated body: declared 50, supplied 2.
        assert_eq!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nab")
                .unwrap_err()
                .status,
            400
        );
    }

    #[test]
    fn caps_header_bytes() {
        let huge = format!("GET / HTTP/1.1\r\nX-Junk: {}\r\n\r\n", "a".repeat(20_000));
        let e = parse(&huge).unwrap_err();
        assert_eq!(e.status, 413);
    }

    #[test]
    fn incremental_parser_completes_and_reports_consumed_bytes() {
        let wire = b"POST /v1/solve HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"zones\":2}GET /next";
        // Every proper prefix that ends before the body completes is
        // Partial; the full request completes at the right offset.
        let body_end = wire.len() - "GET /next".len();
        for cut in 0..body_end {
            assert_eq!(
                parse_request_bytes(&wire[..cut], 1024).unwrap(),
                Parse::Partial,
                "cut at {cut}"
            );
        }
        let Parse::Complete(req, consumed) = parse_request_bytes(wire, 1024).unwrap() else {
            panic!("expected completion");
        };
        assert_eq!(consumed, body_end, "pipelined bytes must stay unconsumed");
        assert_eq!(req.body, "{\"zones\":2}");
        assert!(req.keep_alive);
    }

    #[test]
    fn incremental_parser_rejects_what_the_oneshot_rejects() {
        for raw in [
            "nonsense\r\n\r\n",
            "GET /x SPDY/3\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
            "POST /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "POST /v1/solve HTTP/1.1\r\nContent-Length: 999999\r\n\r\n",
        ] {
            let expect = parse(raw).unwrap_err();
            let got = parse_request_bytes(raw.as_bytes(), 1024).unwrap_err();
            assert_eq!(got.status, expect.status, "{raw:?}");
            assert_eq!(got.message, expect.message, "{raw:?}");
        }
        // An unterminated over-budget head fails without waiting for
        // the newline that will never fit.
        let huge = format!("GET / HTTP/1.1\r\nX-Junk: {}", "a".repeat(20_000));
        assert_eq!(
            parse_request_bytes(huge.as_bytes(), 1024)
                .unwrap_err()
                .status,
            413
        );
    }

    #[test]
    fn writes_responses_with_retry_after() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            &Response::error(429, "queue full").with_retry_after(1),
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"queue full\"}"), "{text}");
    }

    #[test]
    fn renders_keep_alive_responses() {
        let bytes = render_response(&Response::ok("{}".to_string()), true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
