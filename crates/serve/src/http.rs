//! Minimal HTTP/1.1 framing over [`std::io`] streams.
//!
//! The build environment has no HTTP crates, so `llpd` frames requests
//! and responses by hand. The subset is deliberately small: one request
//! per connection (`Connection: close` on every response), bodies
//! delimited by `Content-Length` only, and hard caps on header and body
//! sizes so a hostile peer cannot make a connection thread allocate
//! without bound.

use std::io::{BufRead, Write};

/// Maximum bytes of request line + headers accepted.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed request: method, decoded path, raw query string, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercase as sent.
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Query string (after `?`), empty if absent.
    pub query: String,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: String,
}

/// A response: status code plus a JSON body, with the handful of extra
/// headers the service emits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (always JSON in this service).
    pub body: String,
    /// `Retry-After` seconds, sent with 429/503 responses.
    pub retry_after: Option<u64>,
}

impl Response {
    /// A 200 response with the given JSON body.
    #[must_use]
    pub fn ok(body: String) -> Self {
        Self {
            status: 200,
            body,
            retry_after: None,
        }
    }

    /// An error response with a `{"error": ...}` JSON body.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        let body =
            llp::obs::json::Json::object(vec![("error", llp::obs::json::Json::str(message))]);
        Self {
            status,
            body: body.to_string(),
            retry_after: None,
        }
    }

    /// The same response with a `Retry-After` header.
    #[must_use]
    pub fn with_retry_after(mut self, seconds: u64) -> Self {
        self.retry_after = Some(seconds);
        self
    }
}

/// A request-framing failure the caller should answer with `status`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// Status code to answer with.
    pub status: u16,
    /// Human-readable description (lands in the error body).
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        Self {
            status,
            message: message.into(),
        }
    }
}

/// Standard reason phrase for the status codes this service emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Read one request from `stream`.
///
/// # Errors
/// [`HttpError`] carries the status the connection should answer with:
/// 400 for malformed framing, 408 when the peer stalls past the socket
/// read timeout, 413 when the declared body exceeds `max_body`.
pub fn read_request(stream: &mut impl BufRead, max_body: usize) -> Result<Request, HttpError> {
    let mut head = String::new();
    let request_line = read_crlf_line(stream, &mut head)?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(400, "malformed request line"));
    }

    let mut content_length: usize = 0;
    loop {
        let line = read_crlf_line(stream, &mut head)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(400, "malformed header"));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::new(400, "malformed Content-Length"))?;
        }
    }

    if content_length > max_body {
        return Err(HttpError::new(
            413,
            format!("body of {content_length} bytes exceeds limit {max_body}"),
        ));
    }
    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(stream, &mut body).map_err(io_to_http)?;
    let body = String::from_utf8(body).map_err(|_| HttpError::new(400, "body is not UTF-8"))?;

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

/// Read one CRLF-terminated line, charging its bytes against the shared
/// head budget in `consumed`.
fn read_crlf_line(stream: &mut impl BufRead, consumed: &mut String) -> Result<String, HttpError> {
    let budget = MAX_HEAD_BYTES.saturating_sub(consumed.len());
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = stream.fill_buf().map_err(io_to_http)?;
        if buf.is_empty() {
            return Err(HttpError::new(400, "connection closed mid-request"));
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let wanted = newline.map_or(buf.len(), |i| i + 1);
        if line.len() + wanted > budget {
            return Err(HttpError::new(413, "request head too large"));
        }
        line.extend_from_slice(&buf[..wanted]);
        stream.consume(wanted);
        if newline.is_some() {
            break;
        }
    }
    let line = String::from_utf8(line).map_err(|_| HttpError::new(400, "header is not UTF-8"))?;
    consumed.push_str(&line);
    Ok(line.trim_end_matches(['\r', '\n']).to_string())
}

fn io_to_http(err: std::io::Error) -> HttpError {
    match err.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            HttpError::new(408, "timed out reading request")
        }
        _ => HttpError::new(400, format!("read failed: {err}")),
    }
}

/// Write `response` to `stream` (errors are returned for the caller to
/// ignore — a peer that hung up mid-response is its own problem).
///
/// # Errors
/// Propagates the underlying socket write error.
pub fn write_response(stream: &mut impl Write, response: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        reason(response.status),
        response.body.len()
    );
    if let Some(seconds) = response.retry_after {
        head.push_str(&format!("Retry-After: {seconds}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_get_with_query() {
        let r = parse("GET /v1/model/stairstep?units=15&processors=4 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/v1/model/stairstep");
        assert_eq!(r.query, "units=15&processors=4");
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let r =
            parse("POST /v1/solve HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"zones\":2}").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, "{\"zones\":2}");
    }

    #[test]
    fn rejects_oversized_bodies_without_reading_them() {
        let e = parse("POST /v1/solve HTTP/1.1\r\nContent-Length: 999999\r\n\r\n").unwrap_err();
        assert_eq!(e.status, 413);
    }

    #[test]
    fn rejects_malformed_framing() {
        assert_eq!(parse("nonsense\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GET /x SPDY/3\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse("POST /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse("POST /x HTTP/1.1\r\nno-colon-here\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        // Truncated body: declared 50, supplied 2.
        assert_eq!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nab")
                .unwrap_err()
                .status,
            400
        );
    }

    #[test]
    fn caps_header_bytes() {
        let huge = format!("GET / HTTP/1.1\r\nX-Junk: {}\r\n\r\n", "a".repeat(20_000));
        let e = parse(&huge).unwrap_err();
        assert_eq!(e.status, 413);
    }

    #[test]
    fn writes_responses_with_retry_after() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            &Response::error(429, "queue full").with_retry_after(1),
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"queue full\"}"), "{text}");
    }
}
