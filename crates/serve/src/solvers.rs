//! The serving layer's solver registry: one closed enum over every
//! physics workload `llpd` can run.
//!
//! The generic [`solver`] crate keeps the *run* machinery
//! workload-agnostic via traits; the serving layer, which must parse a
//! `"solver"` field off the wire, key caches, and label metrics,
//! needs a closed dispatch point instead. [`AnyCase`] and [`AnyRun`]
//! are that point: every match arm added here is a new physics served
//! by the same pool, cache, tuner, and telemetry stack.

use f3d::service::{F3dSolver, ServiceCase, ServiceRun};
use fdtd::{FdtdCase, FdtdRun, FdtdSolver};
use llp::{ObsReport, Policy, Timeline};
use solver::{Solver, SolverSpec};

/// Every solver kind the service can name, in the `"solver"` request
/// vocabulary, in a stable order (`f3d` first — the default when the
/// field is omitted).
pub const KINDS: [&str; 2] = [f3d_kind(), fdtd_kind()];

const fn f3d_kind() -> &'static str {
    "f3d"
}

const fn fdtd_kind() -> &'static str {
    "fdtd"
}

/// A validated solve request for any registered solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnyCase {
    /// The F3D multi-zone flow solve ([`f3d::service`]).
    F3d(ServiceCase),
    /// The 2-D FDTD Maxwell TEz solve ([`fdtd::service`]).
    Fdtd(FdtdCase),
}

impl AnyCase {
    /// The case's solver kind — the cache-key namespace, tune-db slot,
    /// and metrics label.
    pub fn kind(&self) -> &'static str {
        match self {
            AnyCase::F3d(_) => F3dSolver::kind(),
            AnyCase::Fdtd(_) => FdtdSolver::kind(),
        }
    }

    /// Check every field against the solver's service caps.
    ///
    /// # Errors
    /// Returns a message naming the offending field and its bound.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            AnyCase::F3d(c) => SolverSpec::validate(c),
            AnyCase::Fdtd(c) => SolverSpec::validate(c),
        }
    }

    /// Stable case label (obs-report case name, trace registry entry).
    pub fn label(&self) -> String {
        match self {
            AnyCase::F3d(c) => SolverSpec::label(c),
            AnyCase::Fdtd(c) => SolverSpec::label(c),
        }
    }

    /// Canonical content string *without* the solver kind; the cache
    /// key prefixes [`AnyCase::kind`] so equal field spellings of
    /// different physics can never collide.
    pub fn canonical_string(&self) -> String {
        match self {
            AnyCase::F3d(c) => SolverSpec::canonical_string(c),
            AnyCase::Fdtd(c) => SolverSpec::canonical_string(c),
        }
    }

    /// Worker count the case asks for.
    pub fn workers(&self) -> usize {
        match self {
            AnyCase::F3d(c) => SolverSpec::workers(c),
            AnyCase::Fdtd(c) => SolverSpec::workers(c),
        }
    }

    /// The case's chunk-scheduling policy.
    pub fn schedule(&self) -> Policy {
        match self {
            AnyCase::F3d(c) => SolverSpec::schedule(c),
            AnyCase::Fdtd(c) => SolverSpec::schedule(c),
        }
    }

    /// Default SLP lane width.
    pub fn vector_width(&self) -> usize {
        match self {
            AnyCase::F3d(c) => SolverSpec::vector_width(c),
            AnyCase::Fdtd(c) => SolverSpec::vector_width(c),
        }
    }

    /// Estimated peak bytes the solve allocates
    /// ([`Solver::memory_usage_estimate`]) — the admission-control
    /// input checked against `--memory-budget` before any pool work.
    pub fn memory_usage_estimate(&self) -> u64 {
        match self {
            AnyCase::F3d(c) => F3dSolver::memory_usage_estimate(c),
            AnyCase::Fdtd(c) => FdtdSolver::memory_usage_estimate(c),
        }
    }
}

/// One completed solve of any registered solver, carrying the uniform
/// observability payload the serving layer drains.
#[derive(Debug, Clone)]
pub enum AnyRun {
    /// A completed F3D run.
    F3d(ServiceRun),
    /// A completed FDTD run.
    Fdtd(FdtdRun),
}

impl AnyRun {
    /// The run's solver kind.
    pub fn kind(&self) -> &'static str {
        match self {
            AnyRun::F3d(_) => F3dSolver::kind(),
            AnyRun::Fdtd(_) => FdtdSolver::kind(),
        }
    }

    /// The run's case label.
    pub fn label(&self) -> String {
        match self {
            AnyRun::F3d(r) => SolverSpec::label(&r.case),
            AnyRun::Fdtd(r) => SolverSpec::label(&r.case),
        }
    }

    /// Synchronization events the run billed.
    pub fn sync_events(&self) -> u64 {
        match self {
            AnyRun::F3d(r) => r.sync_events,
            AnyRun::Fdtd(r) => r.sync_events,
        }
    }

    /// The run's drained span report.
    pub fn report(&self) -> &ObsReport {
        match self {
            AnyRun::F3d(r) => &r.report,
            AnyRun::Fdtd(r) => &r.report,
        }
    }

    /// The run's drained flight timeline.
    pub fn timeline(&self) -> &Timeline {
        match self {
            AnyRun::F3d(r) => &r.timeline,
            AnyRun::Fdtd(r) => &r.timeline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f3d_case_with(zones: usize) -> ServiceCase {
        ServiceCase {
            zones,
            steps: 3,
            workers: 2,
            schedule: Policy::Static,
            zone_schedule: f3d::service::ZoneSchedule::Sequential,
            vector_width: 1,
        }
    }

    fn f3d_case() -> AnyCase {
        AnyCase::F3d(f3d_case_with(2))
    }

    fn fdtd_case() -> AnyCase {
        AnyCase::Fdtd(FdtdCase {
            size: 16,
            steps: 4,
            workers: 2,
            schedule: Policy::Static,
            vector_width: 1,
        })
    }

    #[test]
    fn kinds_and_delegation_cover_both_solvers() {
        assert_eq!(KINDS, ["f3d", "fdtd"]);
        let f = f3d_case();
        assert_eq!(f.kind(), "f3d");
        assert!(f.validate().is_ok());
        assert!(f.canonical_string().starts_with("zones=2;"));
        assert_eq!(f.workers(), 2);

        let d = fdtd_case();
        assert_eq!(d.kind(), "fdtd");
        assert!(d.validate().is_ok());
        assert_eq!(
            d.canonical_string(),
            "size=16;steps=4;workers=2;schedule=static;vector_width=1"
        );
        assert_eq!(d.label(), "fdtd/n16s4w2");
        assert_eq!(d.vector_width(), 1);
    }

    #[test]
    fn memory_estimates_follow_the_solver_formulas() {
        // fdtd: size^2 * 3 fields * 8 bytes + workers * 4 KiB scratch.
        assert_eq!(
            fdtd_case().memory_usage_estimate(),
            16 * 16 * 3 * 8 + 2 * 4096
        );
        // f3d's estimate is positive and grows with zones.
        let small = f3d_case().memory_usage_estimate();
        let big = AnyCase::F3d(f3d_case_with(4)).memory_usage_estimate();
        assert!(small > 0 && big > small);
    }
}
