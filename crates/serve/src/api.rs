//! Request/response bodies for the `llpd` endpoints.
//!
//! Everything speaks `llp::obs::json::Json` — the same hand-rolled,
//! hardened JSON layer the observability reports use — so there is
//! exactly one parser facing untrusted bodies. Parsing here is strict:
//! unknown object keys are rejected (a typo'd field silently falling
//! back to a default is worse than a 400), numbers must be in range,
//! and every list is capped before anything is allocated
//! proportionally to it.

use crate::solvers::{AnyCase, AnyRun, KINDS};
use f3d::service::{ServiceCase, ServiceRun, ZoneSchedule};
use f3d::validation::FieldChecksum;
use fdtd::{FdtdCase, FdtdRun};
use llp::advisor::{Advice, Advisor, LoopDecision, MeasuredAdvice};
use llp::obs::attr::{kernel_overheads, KernelOverhead};
use llp::obs::chrome::chrome_trace_with_summary;
use llp::obs::json::Json;
use llp::obs::AttributionReport;
use llp::profile::{LoopReport, LoopStats};
use llp::Policy;
use perfmodel::overhead::{OverheadBound, PAPER_OVERHEAD_FRACTION};
use perfmodel::stairstep::{ideal_speedup, plateau_edges};
use perfmodel::work_per_sync::{GridNest, LoopLevel};
use perfmodel::{overhead_batch, stairstep_batch, work_per_sync_batch};
use tune::{CalibrationSpec, TuneDb};

/// Maximum loops one advise request may submit.
pub const MAX_ADVISE_LOOPS: usize = 256;
/// Maximum bytes of a loop name in an advise request.
pub const MAX_NAME_BYTES: usize = 128;

/// Parse and check an object body against an exact set of known keys.
fn parse_object<'j>(body: &'j Json, known: &[&str]) -> Result<&'j [(String, Json)], String> {
    let pairs = body.as_object().ok_or("body must be a JSON object")?;
    for (key, _) in pairs {
        if !known.contains(&key.as_str()) {
            return Err(format!("unknown field `{key}`"));
        }
    }
    Ok(pairs)
}

fn require_u64(body: &Json, key: &str) -> Result<u64, String> {
    body.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("`{key}` must be a non-negative integer"))
}

fn require_finite(body: &Json, key: &str) -> Result<f64, String> {
    match body.get(key).and_then(Json::as_f64) {
        Some(v) if v.is_finite() => Ok(v),
        _ => Err(format!("`{key}` must be a finite number")),
    }
}

// ---------------------------------------------------------------- solve

/// A parsed `POST /v1/solve` body: the bounded case for whichever
/// solver the `"solver"` field selected (`"f3d"` when omitted), plus
/// whether the client asked for `"schedule": "auto"` — per-kernel
/// configurations resolved from that solver's tune database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveRequest {
    /// The validated case to run.
    pub case: AnyCase,
    /// `true` when the schedule was `"auto"`: the executor overlays
    /// the tune database's per-kernel configurations (falling back to
    /// the case defaults when no database is loaded).
    pub auto: bool,
    /// `true` when the body said `"cache": "bypass"`: execute
    /// unconditionally — no cache lookup, no coalescing with identical
    /// in-flight solves, no cache insert. The escape hatch for
    /// measuring real execution (benchmark baselines, bit-exactness
    /// audits against a cached result).
    pub bypass: bool,
}

/// Parse the shared `"cache"` directive: `"use"` (default) or
/// `"bypass"`.
fn parse_cache_directive(body: &Json) -> Result<bool, String> {
    match body.get("cache") {
        None => Ok(false),
        Some(v) => match v.as_str() {
            Some("use") => Ok(false),
            Some("bypass") => Ok(true),
            _ => Err("`cache` must be \"use\" or \"bypass\"".to_string()),
        },
    }
}

fn usize_field(body: &Json, key: &str, default: usize) -> Result<usize, String> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_usize()
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

/// Parse the shared `"schedule"`/`"chunk"` pair: `(auto, policy)`.
/// `"auto"` defers per-kernel configuration to the tune database and
/// takes no chunk.
fn parse_schedule(body: &Json) -> Result<(bool, Policy), String> {
    let schedule_name = match body.get("schedule") {
        None => "static",
        Some(v) => v.as_str().ok_or("`schedule` must be a string")?,
    };
    let chunk = match body.get("chunk") {
        None => None,
        Some(v) => Some(
            v.as_usize()
                .ok_or("`chunk` must be a non-negative integer")?,
        ),
    };
    let auto = schedule_name == "auto";
    let schedule = if auto {
        if let Some(c) = chunk {
            return Err(format!(
                "schedule \"auto\" takes no chunk parameter (got chunk {c}); \
                 the tuned per-kernel configurations decide chunking"
            ));
        }
        Policy::Static
    } else {
        Policy::parse(schedule_name, chunk)?
    };
    Ok((auto, schedule))
}

/// Parse a `POST /v1/solve` body into a bounded case. The `"solver"`
/// field selects the physics (`"f3d"` when omitted); every other key
/// belongs to the selected solver's vocabulary, so a typo'd or
/// foreign field is still a 400. Omitted fields fall back to a small
/// default case; `workers` defaults to `default_workers` (the shared
/// pool's size). `schedule` selects the chunk-scheduling policy
/// (`"static"`, `"dynamic"`, `"guided"`; default static) with `chunk`
/// as the dynamic chunk size / guided floor — `chunk` is only
/// meaningful for the self-scheduled policies and is rejected
/// alongside `"static"`. `"schedule": "auto"` defers per-kernel
/// configuration to the solver's tune database and takes no chunk
/// either. `vector_width` selects the SLP kernel-variant lane width
/// (1, 2, 4, or 8; default 1 — results are bit-exact at every width).
///
/// # Errors
/// Unknown solvers, unknown fields, mistyped values, and out-of-cap
/// cases are rejected with a message naming the problem.
pub fn parse_solve_body(text: &str, default_workers: usize) -> Result<SolveRequest, String> {
    let body = Json::parse(text)?;
    let solver = match body.get("solver") {
        None => "f3d",
        Some(v) => v.as_str().ok_or("`solver` must be a string")?,
    };
    match solver {
        "f3d" => parse_f3d_solve(&body, default_workers),
        "fdtd" => parse_fdtd_solve(&body, default_workers),
        other => Err(format!(
            "unknown solver `{other}`; known solvers: {}",
            KINDS.join(", ")
        )),
    }
}

fn parse_f3d_solve(body: &Json, default_workers: usize) -> Result<SolveRequest, String> {
    parse_object(
        body,
        &[
            "solver",
            "zones",
            "steps",
            "workers",
            "schedule",
            "chunk",
            "cache",
            "zone_schedule",
            "vector_width",
        ],
    )?;
    let bypass = parse_cache_directive(body)?;
    let (auto, schedule) = parse_schedule(body)?;
    let zone_schedule = match body.get("zone_schedule") {
        None => ZoneSchedule::Sequential,
        Some(v) => match (v.as_str(), v.as_usize()) {
            (Some("sequential"), _) => ZoneSchedule::Sequential,
            (None, Some(shards)) => ZoneSchedule::Zones(shards),
            _ => {
                return Err(
                    "`zone_schedule` must be \"sequential\" or a positive shard count".to_string(),
                )
            }
        },
    };
    let case = ServiceCase {
        zones: usize_field(body, "zones", 3)?,
        steps: usize_field(body, "steps", 4)?,
        workers: usize_field(body, "workers", default_workers)?,
        schedule,
        zone_schedule,
        // The scalar default: an explicit `"vector_width": 1` and an
        // omitted field parse to the same case (and hash to the same
        // cache key — the canonical string always spells the width).
        vector_width: usize_field(body, "vector_width", 1)?,
    };
    case.validate()?;
    Ok(SolveRequest {
        case: AnyCase::F3d(case),
        auto,
        bypass,
    })
}

fn parse_fdtd_solve(body: &Json, default_workers: usize) -> Result<SolveRequest, String> {
    parse_object(
        body,
        &[
            "solver",
            "size",
            "steps",
            "workers",
            "schedule",
            "chunk",
            "cache",
            "vector_width",
        ],
    )?;
    let bypass = parse_cache_directive(body)?;
    let (auto, schedule) = parse_schedule(body)?;
    let case = FdtdCase {
        size: usize_field(body, "size", 16)?,
        steps: usize_field(body, "steps", 4)?,
        workers: usize_field(body, "workers", default_workers)?,
        schedule,
        vector_width: usize_field(body, "vector_width", 1)?,
    };
    case.validate()?;
    Ok(SolveRequest {
        case: AnyCase::Fdtd(case),
        auto,
        bypass,
    })
}

fn checksum_json(zone: &str, sum: &FieldChecksum) -> Json {
    let arr = |v: &[f64]| Json::Array(v.iter().map(|&x| Json::Num(x)).collect());
    Json::object(vec![
        ("zone", Json::str(zone)),
        ("sum", arr(&sum.sum)),
        ("sum_sq", arr(&sum.sum_sq)),
        ("min", arr(&sum.min)),
        ("max", arr(&sum.max)),
    ])
}

/// Render the pair of trace documents retained for a finished solve:
/// the `/v1/trace/{id}` attribution body (per-worker / per-region
/// overhead split, measured-vs-modeled check, per-kernel overheads)
/// and the `?trace=chrome` trace-event document.
#[must_use]
pub fn trace_documents(run: &AnyRun, trace_id: u64) -> (Json, Json) {
    let attr = AttributionReport::from_timeline(run.timeline());
    let kernels = kernel_overheads(run.report(), &attr);
    let attribution = Json::object(vec![
        ("trace_id", Json::from_u64(trace_id)),
        ("case", Json::str(&run.label())),
        ("attribution", attr.to_json()),
        (
            "kernels",
            Json::Array(kernels.iter().map(KernelOverhead::to_json).collect()),
        ),
    ]);
    let chrome = chrome_trace_with_summary(run.timeline(), &attr);
    (attribution, chrome)
}

/// Render the per-kernel configurations an `"auto"` solve resolved:
/// which source decided (`"tune-db"` or, with no database loaded,
/// `"default"`) and the exact worker count and schedule each kernel
/// ran with.
#[must_use]
pub fn tuned_resolution(db: Option<&TuneDb>) -> Json {
    match db {
        None => Json::object(vec![
            ("source", Json::str("default")),
            ("kernels", Json::Array(Vec::new())),
        ]),
        Some(db) => Json::object(vec![
            ("source", Json::str("tune-db")),
            ("pool_width", Json::from_usize(db.pool_width)),
            (
                "kernels",
                Json::Array(
                    db.entries
                        .iter()
                        .map(|e| {
                            let mut pairs = vec![
                                ("kernel", Json::str(&e.kernel)),
                                ("workers", Json::from_usize(e.workers)),
                                ("schedule", Json::str(e.schedule.name())),
                            ];
                            if let Some(chunk) = e.schedule.chunk_param() {
                                pairs.push(("chunk", Json::from_usize(chunk)));
                            }
                            pairs.push(("vector_width", Json::from_usize(e.vector_width)));
                            Json::object(pairs)
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

/// Render a completed solver run as the `/v1/solve` response body.
/// `trace_id` (when the executor retained a flight trace) tells the
/// client where `GET /v1/trace/{id}` will find the breakdown.
/// `tuned` (for `"auto"` solves) names the resolved per-kernel
/// configurations ([`tuned_resolution`]); explicit solves pass
/// [`Json::Null`]. `cache` reports result provenance: `"miss"` (this
/// request executed, result now cached), `"hit"` (served from the
/// content-addressed cache without re-execution), or `"bypass"` (the
/// request opted out of caching and executed unconditionally).
#[must_use]
pub fn solve_response(run: &ServiceRun, trace_id: Option<u64>, tuned: Json, cache: &str) -> Json {
    let mut case = vec![
        ("zones", Json::from_usize(run.case.zones)),
        ("steps", Json::from_usize(run.case.steps)),
        ("workers", Json::from_usize(run.case.workers)),
        ("schedule", Json::str(run.case.schedule.name())),
    ];
    if let Some(chunk) = run.case.schedule.chunk_param() {
        case.push(("chunk", Json::from_usize(chunk)));
    }
    case.push((
        "zone_schedule",
        match run.case.zone_schedule {
            ZoneSchedule::Sequential => Json::str("sequential"),
            ZoneSchedule::Zones(shards) => Json::from_usize(shards),
        },
    ));
    case.push(("vector_width", Json::from_usize(run.case.vector_width)));
    let zone_level = run.zone_stats.map_or(Json::Null, |s| {
        Json::object(vec![
            ("shards", Json::from_usize(s.shards)),
            ("loop_workers", Json::from_usize(s.loop_workers)),
            ("zone_tasks", Json::from_u64(s.zone_tasks)),
            ("exchange_tasks", Json::from_u64(s.exchange_tasks)),
            ("exchange_waves", Json::from_u64(s.exchange_waves)),
            ("peak_ready", Json::from_u64(s.peak_ready)),
        ])
    });
    Json::object(vec![
        ("solver", Json::str("f3d")),
        ("case", Json::object(case)),
        ("zone_level", zone_level),
        (
            "residuals",
            Json::Array(run.residuals.iter().map(|&r| Json::Num(r)).collect()),
        ),
        (
            "forces",
            Json::object(vec![
                ("drag", Json::Num(run.drag)),
                ("lift", Json::Num(run.lift)),
            ]),
        ),
        (
            "checksums",
            Json::Array(
                run.zone_names
                    .iter()
                    .zip(&run.checksums)
                    .map(|(name, sum)| checksum_json(name, sum))
                    .collect(),
            ),
        ),
        ("sync_events", Json::from_u64(run.sync_events)),
        ("report", run.report.to_json()),
        ("trace_id", trace_id.map_or(Json::Null, Json::from_u64)),
        ("tuned", tuned),
        ("cache", Json::str(cache)),
    ])
}

/// Render a completed FDTD run as the `/v1/solve` response body — the
/// `"solver": "fdtd"` counterpart of [`solve_response`], same
/// provenance contract (`trace_id`, `tuned`, `cache`). The physics
/// payload is the per-step electromagnetic energy history and one
/// whole-field checksum per field (`ex`, `ey`, `hz`).
#[must_use]
pub fn fdtd_solve_response(run: &FdtdRun, trace_id: Option<u64>, tuned: Json, cache: &str) -> Json {
    let mut case = vec![
        ("size", Json::from_usize(run.case.size)),
        ("steps", Json::from_usize(run.case.steps)),
        ("workers", Json::from_usize(run.case.workers)),
        ("schedule", Json::str(run.case.schedule.name())),
    ];
    if let Some(chunk) = run.case.schedule.chunk_param() {
        case.push(("chunk", Json::from_usize(chunk)));
    }
    case.push(("vector_width", Json::from_usize(run.case.vector_width)));
    Json::object(vec![
        ("solver", Json::str("fdtd")),
        ("case", Json::object(case)),
        (
            "energy",
            Json::Array(run.energy.iter().map(|&e| Json::Num(e)).collect()),
        ),
        (
            "checksums",
            Json::Array(
                run.checksums
                    .iter()
                    .map(|sum| {
                        Json::object(vec![
                            ("field", Json::str(&sum.field)),
                            ("sum", Json::Num(sum.sum)),
                            ("sum_sq", Json::Num(sum.sum_sq)),
                            ("min", Json::Num(sum.min)),
                            ("max", Json::Num(sum.max)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("sync_events", Json::from_u64(run.sync_events)),
        ("report", run.report.to_json()),
        ("trace_id", trace_id.map_or(Json::Null, Json::from_u64)),
        ("tuned", tuned),
        ("cache", Json::str(cache)),
    ])
}

// ----------------------------------------------------------------- tune

/// A parsed `POST /v1/tune` body: the calibration spec plus the
/// solver whose database the calibration (re)builds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneRequest {
    /// Which solver to calibrate (`"f3d"` when the field is omitted).
    pub solver: String,
    /// The bounded calibration case.
    pub spec: CalibrationSpec,
}

/// Parse a `POST /v1/tune` body: an optional object overriding the
/// calibration case (`zones`, `steps`, `trials`) and selecting the
/// solver to calibrate (`"solver"`, default `"f3d"`); an empty body
/// means the defaults. The `deterministic` flag is the server's to set
/// (it follows the job-gate test hook), never the client's.
///
/// # Errors
/// Unknown solvers, unknown fields, mistyped values, and out-of-cap
/// specs are rejected with a message naming the problem.
pub fn parse_tune_body(text: &str) -> Result<TuneRequest, String> {
    let mut spec = CalibrationSpec::default();
    if text.trim().is_empty() {
        return Ok(TuneRequest {
            solver: "f3d".to_string(),
            spec,
        });
    }
    let body = Json::parse(text)?;
    parse_object(&body, &["solver", "zones", "steps", "trials"])?;
    let solver = match body.get("solver") {
        None => "f3d",
        Some(v) => v.as_str().ok_or("`solver` must be a string")?,
    };
    if !KINDS.contains(&solver) {
        return Err(format!(
            "unknown solver `{solver}`; known solvers: {}",
            KINDS.join(", ")
        ));
    }
    spec.zones = usize_field(&body, "zones", spec.zones)?;
    spec.steps = usize_field(&body, "steps", spec.steps)?;
    spec.trials = usize_field(&body, "trials", spec.trials)?;
    spec.validate()?;
    Ok(TuneRequest {
        solver: solver.to_string(),
        spec,
    })
}

/// Render the `GET /v1/tune` body: the queried solver, its calibration
/// status (`"idle"`, `"calibrating"`, or `"ready"`), its current
/// database, if any, and the kernels the drift watchdog currently
/// flags stale.
#[must_use]
pub fn tune_status_response(solver: &str, status: &str, db: Option<&TuneDb>) -> Json {
    let stale = db.map_or_else(Vec::new, TuneDb::stale_kernels);
    Json::object(vec![
        ("solver", Json::str(solver)),
        ("status", Json::str(status)),
        ("db", db.map_or(Json::Null, TuneDb::to_json)),
        (
            "stale_kernels",
            Json::Array(stale.into_iter().map(Json::Str).collect()),
        ),
    ])
}

/// Render the immediate `POST /v1/tune` acknowledgement: calibration
/// was accepted and runs in the background; poll `GET /v1/tune`.
#[must_use]
pub fn tune_started_response(solver: &str, spec: &CalibrationSpec) -> Json {
    Json::object(vec![
        ("status", Json::str("calibrating")),
        ("solver", Json::str(solver)),
        ("zones", Json::from_usize(spec.zones)),
        ("steps", Json::from_usize(spec.steps)),
        ("trials", Json::from_usize(spec.trials)),
        ("deterministic", Json::Bool(spec.deterministic)),
    ])
}

// ------------------------------------------------------------ telemetry

/// Default number of windows `GET /v1/stats` returns when the query
/// does not say.
pub const DEFAULT_STATS_WINDOWS: usize = 12;

/// Parse the `GET /v1/stats` query: an optional `windows=N` (newest-
/// first count of sealed windows to return, at least 1).
///
/// # Errors
/// Unknown parameters, duplicates, and non-positive counts.
pub fn parse_stats_query(query: &str) -> Result<usize, String> {
    let pairs = parse_query(query, &["windows"])?;
    match query_value(&pairs, "windows") {
        None => Ok(DEFAULT_STATS_WINDOWS),
        Some(raw) => {
            let n: usize = raw
                .parse()
                .map_err(|_| "`windows` must be a positive integer".to_string())?;
            if n == 0 {
                return Err("`windows` must be a positive integer".to_string());
            }
            Ok(n)
        }
    }
}

/// Render the `GET /v1/stats` body: whether continuous telemetry is
/// enabled and the series snapshot (`null` when disabled — the shape a
/// scraper can branch on without guessing).
#[must_use]
pub fn stats_response(series: Json, enabled: bool) -> Json {
    Json::object(vec![
        (
            "telemetry",
            Json::str(if enabled { "enabled" } else { "disabled" }),
        ),
        ("series", series),
    ])
}

/// Render the `GET /v1/health` body.
///
/// `status` is `"ok"` unless the drift watchdog flags stale tune
/// entries (`"degraded"`) or the server is draining (`"draining"` —
/// strongest verdict wins). Degraded is still HTTP 200: the service
/// answers correctly, just possibly slower than its calibration
/// promised.
#[must_use]
pub fn health_response(
    stale_kernels: &[String],
    draining: bool,
    telemetry_enabled: bool,
    windows_sealed: u64,
    drift: &Json,
) -> Json {
    let status = if draining {
        "draining"
    } else if stale_kernels.is_empty() {
        "ok"
    } else {
        "degraded"
    };
    Json::object(vec![
        ("status", Json::str(status)),
        (
            "stale_kernels",
            Json::Array(stale_kernels.iter().map(|k| Json::str(k)).collect()),
        ),
        ("telemetry", Json::Bool(telemetry_enabled)),
        ("windows_sealed", Json::from_u64(windows_sealed)),
        ("drift", drift.clone()),
    ])
}

// --------------------------------------------------------------- advise

/// A parsed `POST /v1/advise` body: the machine description and the
/// profiled loops to judge.
#[derive(Debug, Clone)]
pub struct AdviseQuery {
    /// Machine parameters to judge against.
    pub advisor: Advisor,
    /// Profiled loops, in submitted order.
    pub reports: Vec<LoopReport>,
    /// Zone count for zone-level advice (`U_zones`), when the caller
    /// has a multi-zone case and wants the two-level split judged too.
    pub zones: Option<u64>,
}

/// Parse a `POST /v1/advise` body.
///
/// The body carries the [`Advisor`] machine parameters (`clock_hz`,
/// `sync_cost_cycles`, `processors`, optional `max_overhead_fraction`)
/// and a `loops` array of profile rows (`name`, `invocations`,
/// `total_seconds`, `parallelism`, optional `parallelized`).
/// `fraction_of_total` is derived from the submitted totals, exactly as
/// [`llp::LoopProfiler::report`] derives it.
///
/// # Errors
/// Rejects unknown fields, out-of-range machine parameters (which would
/// panic inside [`Advisor::new`]), oversized loop lists, and mistyped
/// rows.
pub fn parse_advise_body(text: &str) -> Result<AdviseQuery, String> {
    let body = Json::parse(text)?;
    parse_object(
        &body,
        &[
            "clock_hz",
            "sync_cost_cycles",
            "max_overhead_fraction",
            "processors",
            "zones",
            "loops",
        ],
    )?;

    let clock_hz = require_finite(&body, "clock_hz")?;
    if clock_hz <= 0.0 {
        return Err("`clock_hz` must be positive".to_string());
    }
    let sync_cost_cycles = require_u64(&body, "sync_cost_cycles")?;
    let fraction = match body.get("max_overhead_fraction") {
        None => PAPER_OVERHEAD_FRACTION,
        Some(v) => match v.as_f64() {
            Some(f) if f > 0.0 && f <= 1.0 => f,
            _ => return Err("`max_overhead_fraction` must be in (0, 1]".to_string()),
        },
    };
    let processors = require_u64(&body, "processors")?;
    let processors =
        u32::try_from(processors).map_err(|_| "`processors` out of range".to_string())?;
    if processors == 0 {
        return Err("`processors` must be positive".to_string());
    }
    let zones = match body.get("zones") {
        None => None,
        Some(v) => match v.as_u64() {
            Some(z) if z >= 1 => Some(z),
            _ => return Err("`zones` must be a positive integer".to_string()),
        },
    };

    let loops = body
        .get("loops")
        .and_then(Json::as_array)
        .ok_or("`loops` must be an array")?;
    if loops.len() > MAX_ADVISE_LOOPS {
        return Err(format!(
            "{} loops exceeds limit {MAX_ADVISE_LOOPS}",
            loops.len()
        ));
    }

    let mut rows = Vec::with_capacity(loops.len());
    for item in loops {
        parse_object(
            item,
            &[
                "name",
                "invocations",
                "total_seconds",
                "parallelism",
                "parallelized",
            ],
        )?;
        let name = item
            .get("name")
            .and_then(Json::as_str)
            .ok_or("loop `name` must be a string")?;
        if name.is_empty() || name.len() > MAX_NAME_BYTES {
            return Err(format!("loop name must be 1..={MAX_NAME_BYTES} bytes"));
        }
        let total_seconds = require_finite(item, "total_seconds")?;
        if total_seconds < 0.0 {
            return Err("`total_seconds` must be non-negative".to_string());
        }
        rows.push(LoopReport {
            name: name.to_string(),
            stats: LoopStats {
                invocations: require_u64(item, "invocations")?,
                total_seconds,
                parallelism: require_u64(item, "parallelism")?,
                parallelized: item
                    .get("parallelized")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
            },
            fraction_of_total: 0.0,
        });
    }
    let total: f64 = rows.iter().map(|r| r.stats.total_seconds).sum();
    if total > 0.0 {
        for r in &mut rows {
            r.fraction_of_total = r.stats.total_seconds / total;
        }
    }

    Ok(AdviseQuery {
        advisor: Advisor::new(
            clock_hz,
            OverheadBound {
                sync_cost_cycles,
                max_overhead_fraction: fraction,
            },
            processors,
        ),
        reports: rows,
        zones,
    })
}

/// Judge the zone level: for a case of `zones` zones on the advisor's
/// machine, every stair-step plateau edge of the zone-level law is a
/// candidate split `P = shards × loop_workers`. Each split's combined
/// speedup is the zone-level stair-step (`U_zones / ceil(U_zones/s)`)
/// times the loop-level prediction of an advisor re-targeted at the
/// per-shard worker budget — the paper's multi-level picture, where
/// zone parallelism multiplies with the loop parallelism underneath it
/// instead of competing for the same ceiling.
#[must_use]
pub fn zone_level_advice(zones: u64, reports: &[LoopReport], advisor: &Advisor) -> Json {
    let pool = advisor.processors;
    let single_level = advisor.advise(reports).predicted_speedup;
    let mut best: Option<(f64, Json)> = None;
    let mut splits = Vec::new();
    for shards in plateau_edges(zones, pool) {
        let zone_speedup = ideal_speedup(zones, shards);
        let loop_workers = (pool / shards).max(1);
        let loop_advisor = Advisor::new(advisor.clock_hz, advisor.bound, loop_workers);
        let loop_speedup = loop_advisor.advise(reports).predicted_speedup;
        let combined = zone_speedup * loop_speedup;
        let split = Json::object(vec![
            ("zone_shards", Json::from_u64(u64::from(shards))),
            ("loop_workers", Json::from_u64(u64::from(loop_workers))),
            ("zone_speedup", Json::Num(zone_speedup)),
            ("loop_speedup", Json::Num(loop_speedup)),
            ("combined_speedup", Json::Num(combined)),
        ]);
        if best.as_ref().is_none_or(|(b, _)| combined > *b) {
            best = Some((combined, split.clone()));
        }
        splits.push(split);
    }
    Json::object(vec![
        ("zones", Json::from_u64(zones)),
        ("pool_width", Json::from_u64(u64::from(pool))),
        ("single_level_speedup", Json::Num(single_level)),
        ("splits", Json::Array(splits)),
        ("best", best.map_or(Json::Null, |(_, s)| s)),
    ])
}

fn decision_json(decision: &LoopDecision) -> Json {
    match decision {
        LoopDecision::Parallelize { predicted_speedup } => Json::object(vec![
            ("kind", Json::str("parallelize")),
            ("predicted_speedup", Json::Num(*predicted_speedup)),
        ]),
        LoopDecision::TooLittleWork {
            work_cycles,
            required_cycles,
        } => Json::object(vec![
            ("kind", Json::str("too_little_work")),
            ("work_cycles", Json::from_u64(*work_cycles)),
            ("required_cycles", Json::from_u64(*required_cycles)),
        ]),
        LoopDecision::NoParallelism => Json::object(vec![("kind", Json::str("no_parallelism"))]),
    }
}

fn measured_json(m: &MeasuredAdvice) -> Json {
    let mut pairs = vec![
        ("workers", Json::from_usize(m.choice.workers)),
        ("schedule", Json::str(m.choice.schedule.name())),
    ];
    if let Some(chunk) = m.choice.schedule.chunk_param() {
        pairs.push(("chunk", Json::from_usize(chunk)));
    }
    pairs.extend([
        ("vector_width", Json::from_usize(m.choice.vector_width)),
        (
            "measured_cost_ns",
            Json::from_u64(m.choice.measured_cost_ns),
        ),
        ("modeled_cost_ns", Json::from_u64(m.choice.modeled_cost_ns)),
        ("agrees_with_analytic", Json::Bool(m.agrees_with_analytic)),
    ]);
    Json::object(pairs)
}

/// Render advice as the `/v1/advise` response body. Loops covered by a
/// tune-database entry additionally carry a `measured` block — the
/// calibrated choice, its costs, and whether it agrees with the
/// analytic `schedule` — and a `preferred_schedule` naming the
/// schedule the measured entry (preferred over the analytic answer)
/// selects. `zone_level` is the [`zone_level_advice`] block when the
/// query submitted a zone count, [`Json::Null`] otherwise.
#[must_use]
pub fn advise_response(advice: &Advice, zone_level: Json) -> Json {
    Json::object(vec![
        ("zone_level", zone_level),
        (
            "loops",
            Json::Array(
                advice
                    .loops
                    .iter()
                    .map(|l| {
                        let mut pairs = vec![
                            ("name", Json::str(&l.name)),
                            ("fraction_of_total", Json::Num(l.fraction_of_total)),
                            ("decision", decision_json(&l.decision)),
                            ("schedule", Json::str(l.schedule.name())),
                        ];
                        if let Some(chunk) = l.schedule.chunk_param() {
                            pairs.push(("chunk", Json::from_usize(chunk)));
                        }
                        if let Some(m) = &l.measured {
                            pairs.push(("measured", measured_json(m)));
                            pairs.push((
                                "preferred_schedule",
                                Json::str(l.preferred_schedule().name()),
                            ));
                        }
                        Json::object(pairs)
                    })
                    .collect(),
            ),
        ),
        ("serial_fraction", Json::Num(advice.serial_fraction)),
        ("predicted_speedup", Json::Num(advice.predicted_speedup)),
    ])
}

// ---------------------------------------------------------------- model

/// Split a query string into key/value pairs, rejecting keys outside
/// `known` and duplicate keys.
fn parse_query<'q>(query: &'q str, known: &[&str]) -> Result<Vec<(&'q str, &'q str)>, String> {
    let mut pairs = Vec::new();
    for part in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = part.split_once('=').unwrap_or((part, ""));
        if !known.contains(&key) {
            return Err(format!("unknown query parameter `{key}`"));
        }
        if pairs.iter().any(|&(k, _)| k == key) {
            return Err(format!("duplicate query parameter `{key}`"));
        }
        pairs.push((key, value));
    }
    Ok(pairs)
}

fn query_value<'q>(pairs: &[(&'q str, &'q str)], key: &str) -> Option<&'q str> {
    pairs.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v)
}

fn require_query_u64(pairs: &[(&str, &str)], key: &str) -> Result<u64, String> {
    query_value(pairs, key)
        .ok_or_else(|| format!("missing query parameter `{key}`"))?
        .parse()
        .map_err(|_| format!("`{key}` must be a non-negative integer"))
}

fn parse_u64_list(raw: &str, key: &str) -> Result<Vec<u64>, String> {
    raw.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| {
            p.parse()
                .map_err(|_| format!("`{key}` must be a comma-separated integer list"))
        })
        .collect()
}

fn parse_u32_list(raw: &str, key: &str) -> Result<Vec<u32>, String> {
    parse_u64_list(raw, key)?
        .into_iter()
        .map(|v| u32::try_from(v).map_err(|_| format!("`{key}` entry out of range")))
        .collect()
}

/// Answer a `GET /v1/model/{kind}` query.
///
/// * `stairstep?units=15&processors=1,2,4` — the Table 3 / Figure 1 law;
/// * `overhead?sync_cost=10000&processors=2,8&fraction=0.01` — Table 1;
/// * `work_per_sync?dims=100,100,100&work_per_point=10&levels=outer` —
///   Table 2 (omitting `levels` evaluates every level the nest has).
///
/// # Errors
/// Unknown kinds, unknown/duplicate/missing parameters, and model
/// domain errors come back as messages for a 400 response.
pub fn model_response(kind: &str, query: &str) -> Result<Json, String> {
    match kind {
        "stairstep" => {
            let pairs = parse_query(query, &["units", "processors"])?;
            let units = require_query_u64(&pairs, "units")?;
            let processors = parse_u32_list(
                query_value(&pairs, "processors").ok_or("missing query parameter `processors`")?,
                "processors",
            )?;
            let points = stairstep_batch(units, &processors)?;
            Ok(Json::object(vec![
                ("units", Json::from_u64(units)),
                (
                    "points",
                    Json::Array(
                        points
                            .iter()
                            .map(|p| {
                                Json::object(vec![
                                    ("processors", Json::from_u64(u64::from(p.processors))),
                                    ("speedup", Json::Num(p.speedup)),
                                    (
                                        "max_units_per_processor",
                                        Json::from_u64(p.max_units_per_processor),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]))
        }
        "overhead" => {
            let pairs = parse_query(query, &["sync_cost", "fraction", "processors"])?;
            let sync_cost = require_query_u64(&pairs, "sync_cost")?;
            let fraction = match query_value(&pairs, "fraction") {
                None => PAPER_OVERHEAD_FRACTION,
                Some(raw) => raw
                    .parse()
                    .map_err(|_| "`fraction` must be a number".to_string())?,
            };
            let processors = parse_u32_list(
                query_value(&pairs, "processors").ok_or("missing query parameter `processors`")?,
                "processors",
            )?;
            let points = overhead_batch(sync_cost, fraction, &processors)?;
            Ok(Json::object(vec![
                ("sync_cost_cycles", Json::from_u64(sync_cost)),
                ("max_overhead_fraction", Json::Num(fraction)),
                (
                    "points",
                    Json::Array(
                        points
                            .iter()
                            .map(|p| {
                                Json::object(vec![
                                    ("processors", Json::from_u64(u64::from(p.processors))),
                                    ("min_work_cycles", Json::from_u64(p.min_work_cycles)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]))
        }
        "work_per_sync" => {
            let pairs = parse_query(query, &["dims", "work_per_point", "levels"])?;
            let dims = parse_u64_list(
                query_value(&pairs, "dims").ok_or("missing query parameter `dims`")?,
                "dims",
            )?;
            let nest = GridNest::from_dims(&dims)
                .ok_or("`dims` must be 1-3 positive extents whose product fits in u64")?;
            let work_per_point = require_query_u64(&pairs, "work_per_point")?;
            let levels: Vec<LoopLevel> = match query_value(&pairs, "levels") {
                None => LoopLevel::ALL
                    .into_iter()
                    .filter(|&lv| nest.points_per_sync(lv).is_some())
                    .collect(),
                Some(raw) => raw
                    .split(',')
                    .filter(|p| !p.is_empty())
                    .map(|name| {
                        LoopLevel::from_name(name)
                            .ok_or_else(|| format!("unknown loop level `{name}`"))
                    })
                    .collect::<Result<_, _>>()?,
            };
            let points = work_per_sync_batch(nest, work_per_point, &levels)?;
            Ok(Json::object(vec![
                (
                    "dims",
                    Json::Array(dims.iter().map(|&d| Json::from_u64(d)).collect()),
                ),
                ("work_per_point", Json::from_u64(work_per_point)),
                (
                    "points",
                    Json::Array(
                        points
                            .iter()
                            .map(|p| {
                                Json::object(vec![
                                    ("level", Json::str(p.level.name())),
                                    ("points_per_sync", Json::from_u64(p.points_per_sync)),
                                    ("cycles", Json::from_u64(p.cycles)),
                                    (
                                        "available_parallelism",
                                        Json::from_u64(p.available_parallelism),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]))
        }
        other => Err(format!("unknown model `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unwrap the f3d case a parsed request carries.
    fn f3d_case(req: &SolveRequest) -> ServiceCase {
        match &req.case {
            AnyCase::F3d(c) => *c,
            other => panic!("expected an f3d case, got {other:?}"),
        }
    }

    fn fdtd_case(req: &SolveRequest) -> FdtdCase {
        match &req.case {
            AnyCase::Fdtd(c) => *c,
            other => panic!("expected an fdtd case, got {other:?}"),
        }
    }

    #[test]
    fn solve_body_defaults_and_caps() {
        let req = parse_solve_body("{}", 4).unwrap();
        assert!(!req.auto);
        assert_eq!(
            f3d_case(&req),
            ServiceCase {
                zones: 3,
                steps: 4,
                workers: 4,
                schedule: Policy::Static,
                zone_schedule: ZoneSchedule::Sequential,
                vector_width: 1,
            }
        );
        let req = parse_solve_body(r#"{"zones": 2, "steps": 8, "workers": 1}"#, 4).unwrap();
        assert_eq!(
            f3d_case(&req),
            ServiceCase {
                zones: 2,
                steps: 8,
                workers: 1,
                schedule: Policy::Static,
                zone_schedule: ZoneSchedule::Sequential,
                vector_width: 1,
            }
        );
        assert!(parse_solve_body(r#"{"zones": 99}"#, 4).is_err());
        assert!(parse_solve_body(r#"{"zoness": 2}"#, 4).is_err());
        assert!(parse_solve_body(r#"{"zones": -1}"#, 4).is_err());
        assert!(parse_solve_body(r#"{"zones": 1.5}"#, 4).is_err());
        assert!(parse_solve_body("[]", 4).is_err());
        assert!(parse_solve_body("{", 4).is_err());
    }

    #[test]
    fn solve_body_selects_a_solver() {
        // An explicit f3d spelling parses identically to the omitted
        // default.
        let explicit = parse_solve_body(r#"{"solver": "f3d", "zones": 2}"#, 4).unwrap();
        let omitted = parse_solve_body(r#"{"zones": 2}"#, 4).unwrap();
        assert_eq!(explicit, omitted);

        let req = parse_solve_body(r#"{"solver": "fdtd"}"#, 4).unwrap();
        assert_eq!(
            fdtd_case(&req),
            FdtdCase {
                size: 16,
                steps: 4,
                workers: 4,
                schedule: Policy::Static,
                vector_width: 1,
            }
        );
        let req = parse_solve_body(
            r#"{"solver": "fdtd", "size": 32, "steps": 2, "workers": 2,
                "schedule": "dynamic", "chunk": 3, "vector_width": 4}"#,
            4,
        )
        .unwrap();
        let case = fdtd_case(&req);
        assert_eq!((case.size, case.steps, case.workers), (32, 2, 2));
        assert_eq!(case.schedule, Policy::Dynamic { chunk: 3 });
        assert_eq!(case.vector_width, 4);
        // auto and cache directives work for every solver.
        let req = parse_solve_body(r#"{"solver": "fdtd", "schedule": "auto"}"#, 4).unwrap();
        assert!(req.auto);
        let req = parse_solve_body(r#"{"solver": "fdtd", "cache": "bypass"}"#, 4).unwrap();
        assert!(req.bypass);

        // The unknown-solver error names the known vocabulary.
        let err = parse_solve_body(r#"{"solver": "mhd"}"#, 4).unwrap_err();
        assert!(err.contains("`mhd`"), "{err}");
        assert!(err.contains("f3d") && err.contains("fdtd"), "{err}");
        assert!(parse_solve_body(r#"{"solver": 3}"#, 4).is_err());
        // Foreign fields are rejected per solver: `zones` belongs to
        // f3d, `size` to fdtd.
        assert!(parse_solve_body(r#"{"solver": "fdtd", "zones": 2}"#, 4).is_err());
        assert!(parse_solve_body(r#"{"solver": "fdtd", "zone_schedule": 2}"#, 4).is_err());
        assert!(parse_solve_body(r#"{"size": 16}"#, 4).is_err());
        // Out-of-cap fdtd cases are rejected by case validation.
        assert!(parse_solve_body(r#"{"solver": "fdtd", "size": 4}"#, 4).is_err());
        assert!(parse_solve_body(r#"{"solver": "fdtd", "size": 9999}"#, 4).is_err());
        assert!(parse_solve_body(r#"{"solver": "fdtd", "vector_width": 3}"#, 4).is_err());
    }

    #[test]
    fn solve_body_selects_a_schedule() {
        let req = parse_solve_body(r#"{"schedule": "dynamic", "chunk": 2}"#, 4).unwrap();
        assert_eq!(req.case.schedule(), Policy::Dynamic { chunk: 2 });
        assert!(!req.auto);
        let req = parse_solve_body(r#"{"schedule": "dynamic"}"#, 4).unwrap();
        assert_eq!(req.case.schedule(), Policy::Dynamic { chunk: 1 });
        let req = parse_solve_body(r#"{"schedule": "guided", "chunk": 3}"#, 4).unwrap();
        assert_eq!(req.case.schedule(), Policy::Guided { min_chunk: 3 });
        let req = parse_solve_body(r#"{"schedule": "static"}"#, 4).unwrap();
        assert_eq!(req.case.schedule(), Policy::Static);
        // chunk is a self-scheduling parameter: meaningless for static,
        // never zero, bounded by the case validation.
        assert!(parse_solve_body(r#"{"schedule": "static", "chunk": 2}"#, 4).is_err());
        assert!(parse_solve_body(r#"{"chunk": 2}"#, 4).is_err());
        assert!(parse_solve_body(r#"{"schedule": "dynamic", "chunk": 0}"#, 4).is_err());
        assert!(parse_solve_body(r#"{"schedule": "dynamic", "chunk": 9999}"#, 4).is_err());
        assert!(parse_solve_body(r#"{"schedule": "fifo"}"#, 4).is_err());
        assert!(parse_solve_body(r#"{"schedule": 1}"#, 4).is_err());
        assert!(parse_solve_body(r#"{"schedule": "dynamic", "chunk": -3}"#, 4).is_err());
    }

    #[test]
    fn solve_body_auto_defers_to_the_tune_db() {
        let req = parse_solve_body(r#"{"schedule": "auto"}"#, 4).unwrap();
        assert!(req.auto);
        // The case itself carries the static default; the executor
        // overlays the per-kernel configurations at run time.
        assert_eq!(req.case.schedule(), Policy::Static);
        // auto takes no chunk, and the error says whose fault it is.
        let err = parse_solve_body(r#"{"schedule": "auto", "chunk": 2}"#, 4).unwrap_err();
        assert!(err.contains("auto"), "{err}");
        assert!(err.contains("chunk 2"), "{err}");
    }

    #[test]
    fn solve_body_selects_a_zone_schedule() {
        let req = parse_solve_body(r#"{"zones": 4, "zone_schedule": 2}"#, 4).unwrap();
        assert_eq!(f3d_case(&req).zone_schedule, ZoneSchedule::Zones(2));
        let req = parse_solve_body(r#"{"zone_schedule": "sequential"}"#, 4).unwrap();
        assert_eq!(f3d_case(&req).zone_schedule, ZoneSchedule::Sequential);
        let req = parse_solve_body("{}", 4).unwrap();
        assert_eq!(f3d_case(&req).zone_schedule, ZoneSchedule::Sequential);
        // Shard counts ride the case validation: 1..=MAX_ZONES.
        assert!(parse_solve_body(r#"{"zone_schedule": 0}"#, 4).is_err());
        assert!(parse_solve_body(r#"{"zone_schedule": 99}"#, 4).is_err());
        assert!(parse_solve_body(r#"{"zone_schedule": "zoned"}"#, 4).is_err());
        assert!(parse_solve_body(r#"{"zone_schedule": 1.5}"#, 4).is_err());
    }

    #[test]
    fn schedule_errors_name_the_token_and_the_accepted_set() {
        let err = parse_solve_body(r#"{"schedule": "fifo"}"#, 4).unwrap_err();
        assert!(err.contains("\"fifo\""), "{err}");
        for accepted in ["static", "dynamic", "guided"] {
            assert!(err.contains(accepted), "{err} missing {accepted}");
        }
        let err = parse_solve_body(r#"{"schedule": "static", "chunk": 4}"#, 4).unwrap_err();
        assert!(err.contains("static"), "{err}");
        assert!(err.contains("chunk 4"), "{err}");
        let err = parse_solve_body(r#"{"schedule": "dynamic", "chunk": 0}"#, 4).unwrap_err();
        assert!(err.contains("chunk 0"), "{err}");
        assert!(err.contains("positive"), "{err}");
    }

    #[test]
    fn tune_body_defaults_overrides_and_caps() {
        let req = parse_tune_body("").unwrap();
        assert_eq!(req.spec, CalibrationSpec::default());
        assert_eq!(req.solver, "f3d");
        let req = parse_tune_body(r#"{"zones": 1, "steps": 3, "trials": 1}"#).unwrap();
        let spec = req.spec;
        assert_eq!((spec.zones, spec.steps, spec.trials), (1, 3, 1));
        assert!(!spec.deterministic, "deterministic is the server's call");
        // The solver field picks whose database gets rebuilt.
        let req = parse_tune_body(r#"{"solver": "fdtd", "trials": 1}"#).unwrap();
        assert_eq!(req.solver, "fdtd");
        let err = parse_tune_body(r#"{"solver": "mhd"}"#).unwrap_err();
        assert!(err.contains("f3d") && err.contains("fdtd"), "{err}");
        assert!(parse_tune_body(r#"{"solver": 1}"#).is_err());
        assert!(parse_tune_body(r#"{"zones": 99}"#).is_err());
        assert!(parse_tune_body(r#"{"trials": 0}"#).is_err());
        assert!(parse_tune_body(r#"{"deterministic": true}"#).is_err());
        assert!(parse_tune_body("[1]").is_err());
    }

    #[test]
    fn tuned_resolution_names_source_and_kernels() {
        let none = tuned_resolution(None);
        assert_eq!(none.get("source").and_then(Json::as_str), Some("default"));
        let db = TuneDb {
            schema_version: tune::TUNE_SCHEMA_VERSION,
            solver: "f3d".to_string(),
            pool_width: 2,
            zones: 1,
            steps: 1,
            trials: 1,
            sync_cost_ns: 500,
            entries: vec![tune::TuneEntry {
                kernel: "rhs".to_string(),
                workers: 2,
                schedule: Policy::Dynamic { chunk: 2 },
                vector_width: 4,
                iterations: 10,
                candidates_tried: 4,
                measured_cost_ns: 100,
                default_cost_ns: 120,
                modeled_cost_ns: 90,
                model_agrees: true,
                stale: false,
            }],
        };
        let some = tuned_resolution(Some(&db));
        assert_eq!(some.get("source").and_then(Json::as_str), Some("tune-db"));
        let kernels = some.get("kernels").and_then(Json::as_array).unwrap();
        assert_eq!(kernels[0].get("kernel").and_then(Json::as_str), Some("rhs"));
        assert_eq!(kernels[0].get("workers").and_then(Json::as_u64), Some(2));
        assert_eq!(
            kernels[0].get("schedule").and_then(Json::as_str),
            Some("dynamic")
        );
        assert_eq!(kernels[0].get("chunk").and_then(Json::as_u64), Some(2));
        assert_eq!(
            kernels[0].get("vector_width").and_then(Json::as_u64),
            Some(4)
        );
    }

    #[test]
    fn solve_body_selects_a_vector_width() {
        let req = parse_solve_body(r#"{"vector_width": 4}"#, 4).unwrap();
        assert_eq!(req.case.vector_width(), 4);
        // An explicit scalar width parses to the same case as omission.
        let explicit = parse_solve_body(r#"{"vector_width": 1}"#, 4).unwrap();
        let omitted = parse_solve_body("{}", 4).unwrap();
        assert_eq!(explicit.case, omitted.case);
        assert_eq!(
            f3d_case(&explicit).content_hash(),
            f3d_case(&omitted).content_hash()
        );
        // Out-of-vocabulary widths are rejected by case validation.
        assert!(parse_solve_body(r#"{"vector_width": 0}"#, 4).is_err());
        assert!(parse_solve_body(r#"{"vector_width": 3}"#, 4).is_err());
        assert!(parse_solve_body(r#"{"vector_width": 16}"#, 4).is_err());
        assert!(parse_solve_body(r#"{"vector_width": "wide"}"#, 4).is_err());
    }

    #[test]
    fn advise_body_round_trips_through_the_advisor() {
        let body = r#"{
            "clock_hz": 300e6,
            "sync_cost_cycles": 10000,
            "processors": 32,
            "loops": [
                {"name": "rhs", "invocations": 10, "total_seconds": 90.0, "parallelism": 320},
                {"name": "bc", "invocations": 1000, "total_seconds": 10.0, "parallelism": 75}
            ]
        }"#;
        let q = parse_advise_body(body).unwrap();
        assert_eq!(q.reports.len(), 2);
        assert!((q.reports[0].fraction_of_total - 0.9).abs() < 1e-12);
        let advice = q.advisor.advise(&q.reports);
        assert!((advice.serial_fraction - 0.1).abs() < 1e-9);
        let json = advise_response(&advice, Json::Null);
        let loops = json.get("loops").unwrap().as_array().unwrap();
        assert_eq!(
            loops[0]
                .get("decision")
                .unwrap()
                .get("kind")
                .unwrap()
                .as_str(),
            Some("parallelize")
        );
        assert_eq!(
            loops[1]
                .get("decision")
                .unwrap()
                .get("kind")
                .unwrap()
                .as_str(),
            Some("too_little_work")
        );
    }

    #[test]
    fn advise_reports_zone_level_parallelism() {
        // A machine with plenty of processors but a loop whose own
        // parallelism caps out: the zone level multiplies on top.
        let body = r#"{
            "clock_hz": 300e6,
            "sync_cost_cycles": 100,
            "processors": 8,
            "zones": 4,
            "loops": [
                {"name": "rhs", "invocations": 10, "total_seconds": 90.0, "parallelism": 320}
            ]
        }"#;
        let q = parse_advise_body(body).unwrap();
        assert_eq!(q.zones, Some(4));
        let zone = zone_level_advice(4, &q.reports, &q.advisor);
        assert_eq!(zone.get("zones").and_then(Json::as_u64), Some(4));
        assert_eq!(zone.get("pool_width").and_then(Json::as_u64), Some(8));
        let splits = zone.get("splits").and_then(Json::as_array).unwrap();
        // Plateau edges of U_zones = 4 on 8 processors: s = 1, 2, 4.
        let shards: Vec<u64> = splits
            .iter()
            .map(|s| s.get("zone_shards").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(shards, vec![1, 2, 4]);
        for s in splits {
            let zs = s.get("zone_speedup").unwrap().as_f64().unwrap();
            let ls = s.get("loop_speedup").unwrap().as_f64().unwrap();
            let combined = s.get("combined_speedup").unwrap().as_f64().unwrap();
            assert_eq!(combined, zs * ls);
        }
        // The zone-level stair-step at s = 4 is the full U_zones.
        assert_eq!(splits[2].get("zone_speedup").unwrap().as_f64(), Some(4.0));
        assert_eq!(splits[2].get("loop_workers").unwrap().as_u64(), Some(2));
        let best = zone.get("best").unwrap();
        assert!(best.get("combined_speedup").unwrap().as_f64().unwrap() >= 1.0);
        // The block rides the advise response; loop advice is intact.
        let advice = q.advisor.advise(&q.reports);
        let json = advise_response(&advice, zone);
        assert!(json.get("zone_level").unwrap().get("splits").is_some());
        assert_eq!(json.get("loops").unwrap().as_array().unwrap().len(), 1);
        // Without a zone count the query parses to None and the
        // response block is null.
        let q = parse_advise_body(
            r#"{"clock_hz": 1e9, "sync_cost_cycles": 1, "processors": 8, "loops": []}"#,
        )
        .unwrap();
        assert_eq!(q.zones, None);
        assert!(parse_advise_body(
            r#"{"clock_hz": 1e9, "sync_cost_cycles": 1, "processors": 8, "zones": 0, "loops": []}"#
        )
        .is_err());
    }

    #[test]
    fn advise_body_rejects_bad_machines() {
        let with = |patch: &str| {
            format!(
                r#"{{"clock_hz": 300e6, "sync_cost_cycles": 10000, "processors": 8, "loops": []{patch}}}"#
            )
        };
        assert!(parse_advise_body(&with("")).is_ok());
        assert!(parse_advise_body(&with(r#", "max_overhead_fraction": 0.0"#)).is_err());
        assert!(parse_advise_body(&with(r#", "max_overhead_fraction": 2.0"#)).is_err());
        assert!(parse_advise_body(&with(r#", "surprise": 1"#)).is_err());
        assert!(parse_advise_body(
            r#"{"clock_hz": 0, "sync_cost_cycles": 1, "processors": 8, "loops": []}"#
        )
        .is_err());
        assert!(parse_advise_body(
            r#"{"clock_hz": 1e9, "sync_cost_cycles": 1, "processors": 0, "loops": []}"#
        )
        .is_err());
        assert!(parse_advise_body(
            r#"{"clock_hz": 1e9, "sync_cost_cycles": 1, "processors": 8, "loops": [{"name": ""}]}"#
        )
        .is_err());
    }

    #[test]
    fn stairstep_query_reproduces_table3() {
        let j = model_response("stairstep", "units=15&processors=1,4,8,15").unwrap();
        let points = j.get("points").unwrap().as_array().unwrap();
        let speedups: Vec<f64> = points
            .iter()
            .map(|p| p.get("speedup").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(speedups, vec![1.0, 3.75, 7.5, 15.0]);
    }

    #[test]
    fn overhead_query_reproduces_table1() {
        let j = model_response("overhead", "sync_cost=100000&processors=2,128").unwrap();
        let points = j.get("points").unwrap().as_array().unwrap();
        assert_eq!(
            points[0].get("min_work_cycles").unwrap().as_u64(),
            Some(20_000_000)
        );
        assert_eq!(
            points[1].get("min_work_cycles").unwrap().as_u64(),
            Some(1_280_000_000)
        );
    }

    #[test]
    fn work_per_sync_query_reproduces_table2() {
        let j = model_response(
            "work_per_sync",
            "dims=100,100,100&work_per_point=10&levels=inner,middle,outer",
        )
        .unwrap();
        let points = j.get("points").unwrap().as_array().unwrap();
        let cycles: Vec<u64> = points
            .iter()
            .map(|p| p.get("cycles").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(cycles, vec![1_000, 100_000, 10_000_000]);
        // Omitting levels answers every level of the nest.
        let j = model_response("work_per_sync", "dims=1000000&work_per_point=10").unwrap();
        assert_eq!(j.get("points").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn model_queries_reject_garbage() {
        assert!(model_response("galaxy", "").is_err());
        assert!(model_response("stairstep", "units=15").is_err());
        assert!(model_response("stairstep", "units=0&processors=1").is_err());
        assert!(model_response("stairstep", "units=15&processors=1&junk=2").is_err());
        assert!(model_response("stairstep", "units=15&processors=1&units=2").is_err());
        assert!(model_response("overhead", "sync_cost=1&processors=0").is_err());
        assert!(model_response("overhead", "sync_cost=1&fraction=nope&processors=1").is_err());
        assert!(model_response("work_per_sync", "dims=10,10&work_per_point=0").is_err());
        assert!(
            model_response("work_per_sync", "dims=10,10&work_per_point=1&levels=middle").is_err()
        );
        assert!(model_response(
            "work_per_sync",
            "dims=18446744073709551615,3&work_per_point=1"
        )
        .is_err());
    }
}
