//! Service counters behind `GET /metrics`.
//!
//! Everything is a relaxed atomic: connection threads bump request and
//! status counters, the executor bumps job and observability totals,
//! and `/metrics` renders a consistent-enough snapshot without taking
//! any lock. The observability totals (`obs_sync_events_total`,
//! `obs_seconds_total`) accumulate the per-request span reports, so
//! they must agree with the pool's own synchronization-event counter —
//! an invariant the integration tests check end to end.

use crate::solvers::KINDS as SOLVERS;
use f3d::kernels::SUPPORTED_WIDTHS;
use llp::obs::json::Json;
use llp::obs::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};

/// The status codes the service emits, each with its own counter.
pub const TRACKED_STATUSES: [u16; 9] = [200, 400, 404, 405, 408, 413, 429, 500, 503];

/// Request endpoint families, each with its own counter.
pub const ENDPOINTS: [&str; 9] = [
    "solve", "advise", "model", "metrics", "trace", "tune", "health", "stats", "other",
];

/// The parallel kernels with per-kernel solve-seconds counters — the
/// f3d vocabulary followed by the fdtd one — plus a fold-in slot for
/// anything outside the fixed set.
pub const KERNELS: [&str; 9] = [
    "j_factor",
    "k_factor",
    "l_factor_scatter",
    "l_factor_solve",
    "rhs",
    "update",
    "update_e",
    "update_h",
    "other",
];

/// Requested-schedule labels for executed solves.
pub const SCHEDULES: [&str; 4] = ["static", "dynamic", "guided", "auto"];

/// All service counters and gauges.
#[derive(Debug)]
pub struct Metrics {
    requests_total: AtomicU64,
    rejected_total: AtomicU64,
    timeouts_total: AtomicU64,
    queue_depth: AtomicU64,
    executor_busy: AtomicU64,
    executor_panics_total: AtomicU64,
    open_connections: AtomicU64,
    jobs_total: AtomicU64,
    obs_reports_total: AtomicU64,
    obs_sync_events_total: AtomicU64,
    obs_seconds_total_bits: AtomicU64,
    cache_hits_total: AtomicU64,
    cache_misses_total: AtomicU64,
    cache_coalesced_total: AtomicU64,
    cache_bypass_total: AtomicU64,
    cache_evictions_total: AtomicU64,
    cache_entries: AtomicU64,
    zone_jobs_total: AtomicU64,
    zone_tasks_total: AtomicU64,
    zone_shards_last: AtomicU64,
    zone_peak_ready_last: AtomicU64,
    /// Executed solves by solver kind, indexed in
    /// [`crate::solvers::KINDS`] order.
    solves_by_solver: [AtomicU64; SOLVERS.len()],
    /// Solves rejected by memory-budget admission control (413).
    solves_rejected_memory_total: AtomicU64,
    /// Executed solves by the vector width they ran at, indexed in
    /// [`SUPPORTED_WIDTHS`] order.
    solves_by_width: [AtomicU64; SUPPORTED_WIDTHS.len()],
    /// Executed solves by the schedule the request asked for, indexed
    /// in [`SCHEDULES`] order.
    solves_by_schedule: [AtomicU64; SCHEDULES.len()],
    /// Attributed wall seconds per kernel (f64 bits), indexed in
    /// [`KERNELS`] order.
    kernel_seconds_bits: [AtomicU64; KERNELS.len()],
    /// Tune entries currently flagged stale by the drift watchdog.
    tune_entries_stale: AtomicU64,
    by_endpoint: [AtomicU64; ENDPOINTS.len()],
    by_status: [AtomicU64; TRACKED_STATUSES.len()],
    /// End-to-end request latency (parse through response build), ms.
    latency: Histogram,
    /// Queue depth sampled at every admission — the distribution a
    /// single `queue_depth` gauge cannot show.
    queue_depths: Histogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh zeroed metrics.
    #[must_use]
    pub fn new() -> Self {
        Self {
            requests_total: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
            timeouts_total: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            executor_busy: AtomicU64::new(0),
            executor_panics_total: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            jobs_total: AtomicU64::new(0),
            obs_reports_total: AtomicU64::new(0),
            obs_sync_events_total: AtomicU64::new(0),
            obs_seconds_total_bits: AtomicU64::new(0),
            cache_hits_total: AtomicU64::new(0),
            cache_misses_total: AtomicU64::new(0),
            cache_coalesced_total: AtomicU64::new(0),
            cache_bypass_total: AtomicU64::new(0),
            cache_evictions_total: AtomicU64::new(0),
            cache_entries: AtomicU64::new(0),
            zone_jobs_total: AtomicU64::new(0),
            zone_tasks_total: AtomicU64::new(0),
            zone_shards_last: AtomicU64::new(0),
            zone_peak_ready_last: AtomicU64::new(0),
            solves_by_solver: std::array::from_fn(|_| AtomicU64::new(0)),
            solves_rejected_memory_total: AtomicU64::new(0),
            solves_by_width: std::array::from_fn(|_| AtomicU64::new(0)),
            solves_by_schedule: std::array::from_fn(|_| AtomicU64::new(0)),
            kernel_seconds_bits: std::array::from_fn(|_| AtomicU64::new(0)),
            tune_entries_stale: AtomicU64::new(0),
            by_endpoint: std::array::from_fn(|_| AtomicU64::new(0)),
            by_status: std::array::from_fn(|_| AtomicU64::new(0)),
            latency: Histogram::latency_ms(),
            queue_depths: Histogram::queue_depth(),
        }
    }

    /// Count one request routed to `endpoint` (see [`ENDPOINTS`]).
    pub fn request(&self, endpoint: &str) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        let idx = ENDPOINTS
            .iter()
            .position(|&e| e == endpoint)
            .unwrap_or(ENDPOINTS.len() - 1);
        self.by_endpoint[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Count one response with `status`.
    pub fn response(&self, status: u16) {
        if let Some(idx) = TRACKED_STATUSES.iter().position(|&s| s == status) {
            self.by_status[idx].fetch_add(1, Ordering::Relaxed);
        }
        if status == 429 {
            self.rejected_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count one request abandoned at its deadline.
    pub fn timeout(&self) {
        self.timeouts_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Total 429 responses so far.
    #[must_use]
    pub fn rejected_total(&self) -> u64 {
        self.rejected_total.load(Ordering::Relaxed)
    }

    /// Set the queued-job gauge.
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth as u64, Ordering::Relaxed);
    }

    /// Record one end-to-end request latency in milliseconds.
    pub fn observe_latency_ms(&self, ms: f64) {
        self.latency.record(ms);
    }

    /// Sample the queue depth seen by one admission attempt.
    pub fn observe_queue_depth(&self, depth: usize) {
        #[allow(clippy::cast_precision_loss)]
        self.queue_depths.record(depth as f64);
    }

    /// Estimated request-latency quantile in milliseconds (`None`
    /// before any request completed).
    #[must_use]
    pub fn latency_quantile_ms(&self, q: f64) -> Option<f64> {
        self.latency.quantile(q)
    }

    /// One executor shard started computing a job: the `executor_busy`
    /// gauge counts shards currently mid-job.
    pub fn executor_started(&self) {
        self.executor_busy.fetch_add(1, Ordering::Relaxed);
    }

    /// See [`Metrics::executor_started`].
    pub fn executor_finished(&self) {
        self.executor_busy.fetch_sub(1, Ordering::Relaxed);
    }

    /// Number of executor shards currently computing a job.
    #[must_use]
    pub fn executors_busy(&self) -> u64 {
        self.executor_busy.load(Ordering::Relaxed)
    }

    /// Count one job that panicked and was contained by its shard.
    pub fn executor_panicked(&self) {
        self.executor_panics_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Adjust the open-connection gauge by +1 / -1.
    pub fn connection_opened(&self) {
        self.open_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// See [`Metrics::connection_opened`].
    pub fn connection_closed(&self) {
        self.open_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Number of connections currently open.
    #[must_use]
    pub fn open_connections(&self) -> u64 {
        self.open_connections.load(Ordering::Relaxed)
    }

    /// Count one executed job that produced no observability report
    /// (advice is pure computation — no pool work, no spans).
    pub fn job_executed(&self) {
        self.jobs_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one completed pool job's observability report totals in.
    pub fn job_done(&self, report_sync_events: u64, report_seconds: f64) {
        self.jobs_total.fetch_add(1, Ordering::Relaxed);
        self.obs_reports_total.fetch_add(1, Ordering::Relaxed);
        self.obs_sync_events_total
            .fetch_add(report_sync_events, Ordering::Relaxed);
        // f64 accumulation via compare-exchange on the bit pattern: the
        // executor is the only writer, so this loop runs once.
        let mut current = self.obs_seconds_total_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + report_seconds).to_bits();
            match self.obs_seconds_total_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// Fold one zone-scheduled solve's step statistics in: how many
    /// zone shards it dispatched over, how many zone tasks it stepped
    /// across the whole run, and the step DAG's peak ready-queue
    /// occupancy (`U_zones`). The shard and peak gauges keep the last
    /// value — the queue picture of the most recent zone job.
    pub fn zone_job(&self, shards: u64, zone_tasks: u64, peak_ready: u64) {
        self.zone_jobs_total.fetch_add(1, Ordering::Relaxed);
        self.zone_tasks_total
            .fetch_add(zone_tasks, Ordering::Relaxed);
        self.zone_shards_last.store(shards, Ordering::Relaxed);
        self.zone_peak_ready_last
            .store(peak_ready, Ordering::Relaxed);
    }

    /// Count one executed solve of `kind` (see [`crate::solvers::KINDS`];
    /// unknown kinds fold into the first slot — they cannot reach the
    /// executor, admission rejects them).
    pub fn solve_solver(&self, kind: &str) {
        let idx = SOLVERS.iter().position(|&k| k == kind).unwrap_or(0);
        self.solves_by_solver[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Count one solve rejected with 413 because its estimated memory
    /// footprint exceeded the configured budget.
    pub fn solve_rejected_memory(&self) {
        self.solves_rejected_memory_total
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Count one executed solve at `width` lanes. Unsupported widths
    /// cannot reach the executor (admission validates them), but an
    /// unknown value folds into the scalar bucket rather than panicking
    /// in the metrics path.
    pub fn solve_width(&self, width: usize) {
        let idx = SUPPORTED_WIDTHS
            .iter()
            .position(|&w| w == width)
            .unwrap_or(0);
        self.solves_by_width[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Count one executed solve under the requested schedule label
    /// (see [`SCHEDULES`]; unknown labels fold into `static`).
    pub fn solve_schedule(&self, schedule: &str) {
        let idx = SCHEDULES.iter().position(|&s| s == schedule).unwrap_or(0);
        self.solves_by_schedule[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Fold attributed wall seconds into `kernel`'s counter (see
    /// [`KERNELS`]; names outside the vocabulary fold into `other`).
    pub fn kernel_seconds(&self, kernel: &str, seconds: f64) {
        let idx = KERNELS
            .iter()
            .position(|&k| k == kernel)
            .unwrap_or(KERNELS.len() - 1);
        let cell = &self.kernel_seconds_bits[idx];
        let mut current = cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + seconds).to_bits();
            match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// Set the stale-tune-entries gauge (the drift watchdog's count).
    pub fn set_tune_entries_stale(&self, n: usize) {
        self.tune_entries_stale.store(n as u64, Ordering::Relaxed);
    }

    /// Count one solve served straight from the content-addressed
    /// cache (no execution).
    pub fn cache_hit(&self) {
        self.cache_hits_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one solve that missed the cache and executed (its result
    /// was inserted afterwards).
    pub fn cache_miss(&self) {
        self.cache_misses_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one solve coalesced onto an identical in-flight execution
    /// (it waited for that execution instead of queueing its own job).
    pub fn cache_coalesced(&self) {
        self.cache_coalesced_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one `"cache": "bypass"` solve (executed unconditionally).
    pub fn cache_bypass(&self) {
        self.cache_bypass_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` evicted cache entries and set the resident-entry gauge.
    pub fn cache_evicted(&self, n: u64, entries: usize) {
        self.cache_evictions_total.fetch_add(n, Ordering::Relaxed);
        self.cache_entries.store(entries as u64, Ordering::Relaxed);
    }

    /// Total cache hits so far.
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits_total.load(Ordering::Relaxed)
    }

    /// Render the snapshot, including the shared pool's own counters
    /// and shard count (passed in by the server, which owns the pool).
    #[must_use]
    pub fn to_json(
        &self,
        pool_workers: usize,
        executor_shards: usize,
        pool_sync_events: u64,
        pool_regions: u64,
    ) -> Json {
        let load = |a: &AtomicU64| Json::from_u64(a.load(Ordering::Relaxed));
        Json::object(vec![
            ("requests_total", load(&self.requests_total)),
            ("rejected_total", load(&self.rejected_total)),
            ("timeouts_total", load(&self.timeouts_total)),
            ("queue_depth", load(&self.queue_depth)),
            ("executor_busy", load(&self.executor_busy)),
            ("executor_shards", Json::from_usize(executor_shards)),
            ("executor_panics_total", load(&self.executor_panics_total)),
            ("open_connections", load(&self.open_connections)),
            ("jobs_total", load(&self.jobs_total)),
            (
                "cache",
                Json::object(vec![
                    ("hits", load(&self.cache_hits_total)),
                    ("misses", load(&self.cache_misses_total)),
                    ("coalesced", load(&self.cache_coalesced_total)),
                    ("bypass", load(&self.cache_bypass_total)),
                    ("evictions", load(&self.cache_evictions_total)),
                    ("entries", load(&self.cache_entries)),
                ]),
            ),
            (
                "zones",
                Json::object(vec![
                    ("jobs", load(&self.zone_jobs_total)),
                    ("tasks", load(&self.zone_tasks_total)),
                    ("shards_last", load(&self.zone_shards_last)),
                    ("peak_ready_last", load(&self.zone_peak_ready_last)),
                ]),
            ),
            (
                "solves_by_solver",
                Json::Object(
                    SOLVERS
                        .iter()
                        .zip(&self.solves_by_solver)
                        .map(|(&kind, counter)| (kind.to_string(), load(counter)))
                        .collect(),
                ),
            ),
            (
                "solves_rejected_memory_total",
                load(&self.solves_rejected_memory_total),
            ),
            (
                "solves_by_vector_width",
                Json::Object(
                    SUPPORTED_WIDTHS
                        .iter()
                        .zip(&self.solves_by_width)
                        .map(|(&w, counter)| (w.to_string(), load(counter)))
                        .collect(),
                ),
            ),
            (
                "solves_by_schedule",
                Json::Object(
                    SCHEDULES
                        .iter()
                        .zip(&self.solves_by_schedule)
                        .map(|(&name, counter)| (name.to_string(), load(counter)))
                        .collect(),
                ),
            ),
            (
                "kernel_seconds",
                Json::Object(
                    KERNELS
                        .iter()
                        .zip(&self.kernel_seconds_bits)
                        .map(|(&name, bits)| {
                            (
                                name.to_string(),
                                Json::Num(f64::from_bits(bits.load(Ordering::Relaxed))),
                            )
                        })
                        .collect(),
                ),
            ),
            ("tune_entries_stale", load(&self.tune_entries_stale)),
            (
                "endpoints",
                Json::Object(
                    ENDPOINTS
                        .iter()
                        .zip(&self.by_endpoint)
                        .map(|(&name, counter)| (name.to_string(), load(counter)))
                        .collect(),
                ),
            ),
            (
                "status",
                Json::Object(
                    TRACKED_STATUSES
                        .iter()
                        .zip(&self.by_status)
                        .map(|(&status, counter)| (status.to_string(), load(counter)))
                        .collect(),
                ),
            ),
            ("pool_workers", Json::from_usize(pool_workers)),
            ("pool_sync_events_total", Json::from_u64(pool_sync_events)),
            ("pool_regions_total", Json::from_u64(pool_regions)),
            ("obs_reports_total", load(&self.obs_reports_total)),
            ("obs_sync_events_total", load(&self.obs_sync_events_total)),
            (
                "obs_seconds_total",
                Json::Num(f64::from_bits(
                    self.obs_seconds_total_bits.load(Ordering::Relaxed),
                )),
            ),
            ("latency_ms", self.latency.to_json()),
            ("queue_depths", self.queue_depths.to_json()),
        ])
    }

    /// Render the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): one `# TYPE`d family per signal, labels for
    /// endpoint / status / kernel / schedule / `vector_width`, and the
    /// two histograms as cumulative `_bucket` / `_sum` / `_count`
    /// series. Takes the same pool context as [`Metrics::to_json`] —
    /// the two renderings are views of one set of counters.
    #[must_use]
    pub fn to_prometheus(
        &self,
        pool_workers: usize,
        executor_shards: usize,
        pool_sync_events: u64,
        pool_regions: u64,
    ) -> String {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut out = String::with_capacity(4096);
        let mut plain = |name: &str, kind: &str, help: &str, value: String| {
            out.push_str(&format!(
                "# HELP llpd_{name} {help}\n# TYPE llpd_{name} {kind}\nllpd_{name} {value}\n"
            ));
        };
        plain(
            "requests_total",
            "counter",
            "Requests routed, all endpoints.",
            load(&self.requests_total).to_string(),
        );
        plain(
            "rejected_total",
            "counter",
            "Requests rejected with 429 back-pressure.",
            load(&self.rejected_total).to_string(),
        );
        plain(
            "timeouts_total",
            "counter",
            "Requests abandoned at their deadline.",
            load(&self.timeouts_total).to_string(),
        );
        plain(
            "jobs_total",
            "counter",
            "Executor jobs completed.",
            load(&self.jobs_total).to_string(),
        );
        plain(
            "executor_panics_total",
            "counter",
            "Jobs that panicked and were contained.",
            load(&self.executor_panics_total).to_string(),
        );
        plain(
            "queue_depth",
            "gauge",
            "Jobs currently queued.",
            load(&self.queue_depth).to_string(),
        );
        plain(
            "executor_busy",
            "gauge",
            "Executor shards currently mid-job.",
            load(&self.executor_busy).to_string(),
        );
        plain(
            "executor_shards",
            "gauge",
            "Executor shards configured.",
            executor_shards.to_string(),
        );
        plain(
            "open_connections",
            "gauge",
            "Connections currently open.",
            self.open_connections().to_string(),
        );
        plain(
            "pool_workers",
            "gauge",
            "Worker lanes in the shared pool.",
            pool_workers.to_string(),
        );
        plain(
            "pool_sync_events_total",
            "counter",
            "Synchronization events executed by the pool.",
            pool_sync_events.to_string(),
        );
        plain(
            "pool_regions_total",
            "counter",
            "Parallel regions executed by the pool.",
            pool_regions.to_string(),
        );
        plain(
            "obs_reports_total",
            "counter",
            "Span reports folded into the totals.",
            load(&self.obs_reports_total).to_string(),
        );
        plain(
            "obs_sync_events_total",
            "counter",
            "Sync events attributed by span reports.",
            load(&self.obs_sync_events_total).to_string(),
        );
        plain(
            "obs_seconds_total",
            "counter",
            "Solver wall seconds attributed by span reports.",
            prom_f64(f64::from_bits(
                self.obs_seconds_total_bits.load(Ordering::Relaxed),
            )),
        );
        plain(
            "tune_entries_stale",
            "gauge",
            "Tune entries the drift watchdog has flagged stale.",
            load(&self.tune_entries_stale).to_string(),
        );
        plain(
            "solves_rejected_memory_total",
            "counter",
            "Solves rejected by memory-budget admission control.",
            load(&self.solves_rejected_memory_total).to_string(),
        );
        // Cache and zone counter families.
        for (name, help, cell) in [
            (
                "cache_hits_total",
                "Solves served from the result cache.",
                &self.cache_hits_total,
            ),
            (
                "cache_misses_total",
                "Solves that missed the cache and executed.",
                &self.cache_misses_total,
            ),
            (
                "cache_coalesced_total",
                "Solves coalesced onto in-flight executions.",
                &self.cache_coalesced_total,
            ),
            (
                "cache_bypass_total",
                "Solves that bypassed the cache on request.",
                &self.cache_bypass_total,
            ),
            (
                "cache_evictions_total",
                "Cache entries evicted.",
                &self.cache_evictions_total,
            ),
            (
                "zone_jobs_total",
                "Zone-scheduled solves executed.",
                &self.zone_jobs_total,
            ),
            (
                "zone_tasks_total",
                "Zone tasks stepped across zone-scheduled solves.",
                &self.zone_tasks_total,
            ),
        ] {
            plain(name, "counter", help, load(cell).to_string());
        }
        for (name, help, cell) in [
            (
                "cache_entries",
                "Cache entries currently resident.",
                &self.cache_entries,
            ),
            (
                "zone_shards_last",
                "Shards the most recent zone job dispatched over.",
                &self.zone_shards_last,
            ),
            (
                "zone_peak_ready_last",
                "Peak ready-queue occupancy of the most recent zone job.",
                &self.zone_peak_ready_last,
            ),
        ] {
            plain(name, "gauge", help, load(cell).to_string());
        }
        // Labeled families.
        out.push_str(
            "# HELP llpd_requests_by_endpoint_total Requests routed, by endpoint family.\n\
             # TYPE llpd_requests_by_endpoint_total counter\n",
        );
        for (name, counter) in ENDPOINTS.iter().zip(&self.by_endpoint) {
            out.push_str(&format!(
                "llpd_requests_by_endpoint_total{{endpoint=\"{name}\"}} {}\n",
                load(counter)
            ));
        }
        out.push_str(
            "# HELP llpd_responses_total Responses sent, by status code.\n\
             # TYPE llpd_responses_total counter\n",
        );
        for (status, counter) in TRACKED_STATUSES.iter().zip(&self.by_status) {
            out.push_str(&format!(
                "llpd_responses_total{{status=\"{status}\"}} {}\n",
                load(counter)
            ));
        }
        out.push_str(
            "# HELP llpd_solves_by_solver_total Executed solves, by solver kind.\n\
             # TYPE llpd_solves_by_solver_total counter\n",
        );
        for (kind, counter) in SOLVERS.iter().zip(&self.solves_by_solver) {
            out.push_str(&format!(
                "llpd_solves_by_solver_total{{solver=\"{kind}\"}} {}\n",
                load(counter)
            ));
        }
        out.push_str(
            "# HELP llpd_solves_by_vector_width_total Executed solves, by SLP lane width.\n\
             # TYPE llpd_solves_by_vector_width_total counter\n",
        );
        for (width, counter) in SUPPORTED_WIDTHS.iter().zip(&self.solves_by_width) {
            out.push_str(&format!(
                "llpd_solves_by_vector_width_total{{vector_width=\"{width}\"}} {}\n",
                load(counter)
            ));
        }
        out.push_str(
            "# HELP llpd_solves_by_schedule_total Executed solves, by requested schedule.\n\
             # TYPE llpd_solves_by_schedule_total counter\n",
        );
        for (schedule, counter) in SCHEDULES.iter().zip(&self.solves_by_schedule) {
            out.push_str(&format!(
                "llpd_solves_by_schedule_total{{schedule=\"{schedule}\"}} {}\n",
                load(counter)
            ));
        }
        out.push_str(
            "# HELP llpd_kernel_seconds_total Attributed wall seconds, by kernel.\n\
             # TYPE llpd_kernel_seconds_total counter\n",
        );
        for (kernel, bits) in KERNELS.iter().zip(&self.kernel_seconds_bits) {
            out.push_str(&format!(
                "llpd_kernel_seconds_total{{kernel=\"{kernel}\"}} {}\n",
                prom_f64(f64::from_bits(bits.load(Ordering::Relaxed)))
            ));
        }
        // Histograms.
        prom_histogram(
            &mut out,
            "request_latency_ms",
            "End-to-end request latency in milliseconds.",
            &self.latency,
        );
        prom_histogram(
            &mut out,
            "queue_depth_observed",
            "Queue depth sampled at each admission attempt.",
            &self.queue_depths,
        );
        out
    }
}

/// Format an `f64` for the exposition format (finite shortest form;
/// infinities as `+Inf`/`-Inf`).
fn prom_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Append one histogram family: cumulative `_bucket{le=...}` series
/// (ending at `le="+Inf"`), `_sum`, and `_count`.
fn prom_histogram(out: &mut String, name: &str, help: &str, hist: &Histogram) {
    out.push_str(&format!(
        "# HELP llpd_{name} {help}\n# TYPE llpd_{name} histogram\n"
    ));
    for (bound, cumulative) in hist.cumulative_buckets() {
        out.push_str(&format!(
            "llpd_{name}_bucket{{le=\"{}\"}} {cumulative}\n",
            prom_f64(bound)
        ));
    }
    out.push_str(&format!("llpd_{name}_sum {}\n", prom_f64(hist.sum())));
    out.push_str(&format!("llpd_{name}_count {}\n", hist.count()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_land_in_the_snapshot() {
        let m = Metrics::new();
        m.request("solve");
        m.request("solve");
        m.request("model");
        m.request("nonsense"); // folds into "other"
        m.response(200);
        m.response(429);
        m.timeout();
        m.connection_opened();
        m.job_done(18, 0.25);
        m.job_done(18, 0.25);
        let j = m.to_json(4, 2, 36, 36);
        assert_eq!(j.get("requests_total").unwrap().as_u64(), Some(4));
        assert_eq!(j.get("rejected_total").unwrap().as_u64(), Some(1));
        assert_eq!(j.get("timeouts_total").unwrap().as_u64(), Some(1));
        assert_eq!(j.get("open_connections").unwrap().as_u64(), Some(1));
        assert_eq!(j.get("jobs_total").unwrap().as_u64(), Some(2));
        let endpoints = j.get("endpoints").unwrap();
        assert_eq!(endpoints.get("solve").unwrap().as_u64(), Some(2));
        assert_eq!(endpoints.get("model").unwrap().as_u64(), Some(1));
        assert_eq!(endpoints.get("other").unwrap().as_u64(), Some(1));
        let status = j.get("status").unwrap();
        assert_eq!(status.get("200").unwrap().as_u64(), Some(1));
        assert_eq!(status.get("429").unwrap().as_u64(), Some(1));
        assert_eq!(j.get("pool_sync_events_total").unwrap().as_u64(), Some(36));
        assert_eq!(j.get("obs_sync_events_total").unwrap().as_u64(), Some(36));
        assert_eq!(j.get("obs_seconds_total").unwrap().as_f64(), Some(0.5));
        assert_eq!(j.get("executor_shards").unwrap().as_u64(), Some(2));
        assert_eq!(j.get("executor_panics_total").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn solve_width_counters_land_in_the_snapshot() {
        let m = Metrics::new();
        m.solve_width(1);
        m.solve_width(4);
        m.solve_width(4);
        m.solve_width(999); // unknown widths fold into the scalar bucket
        let j = m.to_json(1, 1, 0, 0);
        let by_width = j.get("solves_by_vector_width").unwrap();
        assert_eq!(by_width.get("1").unwrap().as_u64(), Some(2));
        assert_eq!(by_width.get("2").unwrap().as_u64(), Some(0));
        assert_eq!(by_width.get("4").unwrap().as_u64(), Some(2));
        assert_eq!(by_width.get("8").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn solver_counters_land_in_the_snapshot() {
        let m = Metrics::new();
        m.solve_solver("f3d");
        m.solve_solver("fdtd");
        m.solve_solver("fdtd");
        m.solve_solver("nonsense"); // folds into the first slot
        m.solve_rejected_memory();
        let j = m.to_json(1, 1, 0, 0);
        let by_solver = j.get("solves_by_solver").unwrap();
        assert_eq!(by_solver.get("f3d").unwrap().as_u64(), Some(2));
        assert_eq!(by_solver.get("fdtd").unwrap().as_u64(), Some(2));
        assert_eq!(
            j.get("solves_rejected_memory_total").unwrap().as_u64(),
            Some(1)
        );
        let text = m.to_prometheus(1, 1, 0, 0);
        assert!(text.contains("llpd_solves_by_solver_total{solver=\"f3d\"} 2\n"));
        assert!(text.contains("llpd_solves_by_solver_total{solver=\"fdtd\"} 2\n"));
        assert!(text.contains("llpd_solves_rejected_memory_total 1\n"));
    }

    #[test]
    fn fdtd_kernels_have_their_own_seconds_buckets() {
        let m = Metrics::new();
        m.kernel_seconds("update_e", 0.25);
        m.kernel_seconds("update_h", 0.5);
        let kernels = m.to_json(1, 1, 0, 0).get("kernel_seconds").unwrap().clone();
        assert_eq!(kernels.get("update_e").unwrap().as_f64(), Some(0.25));
        assert_eq!(kernels.get("update_h").unwrap().as_f64(), Some(0.5));
        assert_eq!(kernels.get("other").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn cache_counters_land_in_the_snapshot() {
        let m = Metrics::new();
        m.cache_miss();
        m.cache_hit();
        m.cache_hit();
        m.cache_coalesced();
        m.cache_bypass();
        m.cache_evicted(1, 7);
        assert_eq!(m.cache_hits(), 2);
        let cache = m.to_json(1, 1, 0, 0).get("cache").unwrap().clone();
        assert_eq!(cache.get("hits").unwrap().as_u64(), Some(2));
        assert_eq!(cache.get("misses").unwrap().as_u64(), Some(1));
        assert_eq!(cache.get("coalesced").unwrap().as_u64(), Some(1));
        assert_eq!(cache.get("bypass").unwrap().as_u64(), Some(1));
        assert_eq!(cache.get("evictions").unwrap().as_u64(), Some(1));
        assert_eq!(cache.get("entries").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn zone_counters_land_in_the_snapshot() {
        let m = Metrics::new();
        let zones = m.to_json(1, 1, 0, 0).get("zones").unwrap().clone();
        assert_eq!(zones.get("jobs").unwrap().as_u64(), Some(0));
        m.zone_job(2, 12, 4);
        m.zone_job(4, 16, 4);
        let zones = m.to_json(1, 1, 0, 0).get("zones").unwrap().clone();
        assert_eq!(zones.get("jobs").unwrap().as_u64(), Some(2));
        assert_eq!(zones.get("tasks").unwrap().as_u64(), Some(28));
        assert_eq!(zones.get("shards_last").unwrap().as_u64(), Some(4));
        assert_eq!(zones.get("peak_ready_last").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn gauges_move_both_ways() {
        let m = Metrics::new();
        m.set_queue_depth(3);
        m.executor_started();
        m.executor_started();
        m.connection_opened();
        m.connection_opened();
        m.connection_closed();
        let j = m.to_json(1, 1, 0, 0);
        assert_eq!(j.get("queue_depth").unwrap().as_u64(), Some(3));
        assert_eq!(j.get("executor_busy").unwrap().as_u64(), Some(2));
        assert_eq!(m.executors_busy(), 2);
        assert_eq!(j.get("open_connections").unwrap().as_u64(), Some(1));
        m.set_queue_depth(0);
        m.executor_finished();
        m.executor_finished();
        m.executor_panicked();
        let j = m.to_json(1, 1, 0, 0);
        assert_eq!(j.get("queue_depth").unwrap().as_u64(), Some(0));
        assert_eq!(j.get("executor_busy").unwrap().as_u64(), Some(0));
        assert_eq!(j.get("executor_panics_total").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn schedule_kernel_and_stale_counters_land_in_the_snapshot() {
        let m = Metrics::new();
        m.solve_schedule("dynamic");
        m.solve_schedule("auto");
        m.solve_schedule("weird"); // folds into static
        m.kernel_seconds("rhs", 0.25);
        m.kernel_seconds("rhs", 0.25);
        m.kernel_seconds("no_such_kernel", 0.125);
        m.set_tune_entries_stale(3);
        let j = m.to_json(1, 1, 0, 0);
        let sched = j.get("solves_by_schedule").unwrap();
        assert_eq!(sched.get("dynamic").unwrap().as_u64(), Some(1));
        assert_eq!(sched.get("auto").unwrap().as_u64(), Some(1));
        assert_eq!(sched.get("static").unwrap().as_u64(), Some(1));
        let kernels = j.get("kernel_seconds").unwrap();
        assert_eq!(kernels.get("rhs").unwrap().as_f64(), Some(0.5));
        assert_eq!(kernels.get("other").unwrap().as_f64(), Some(0.125));
        assert_eq!(j.get("tune_entries_stale").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn prometheus_rendering_is_typed_labeled_and_cumulative() {
        let m = Metrics::new();
        m.request("solve");
        m.request("metrics");
        m.response(200);
        m.response(429);
        m.solve_width(4);
        m.solve_schedule("auto");
        m.kernel_seconds("rhs", 0.5);
        m.set_tune_entries_stale(1);
        m.observe_latency_ms(3.0);
        m.observe_latency_ms(700.0);
        let text = m.to_prometheus(4, 2, 36, 18);
        // Typed families.
        assert!(text.contains("# TYPE llpd_requests_total counter\n"));
        assert!(text.contains("# TYPE llpd_queue_depth gauge\n"));
        assert!(text.contains("# TYPE llpd_request_latency_ms histogram\n"));
        assert!(text.contains("# TYPE llpd_tune_entries_stale gauge\n"));
        // Values and labels.
        assert!(text.contains("\nllpd_requests_total 2\n"), "{text}");
        assert!(text.contains("llpd_requests_by_endpoint_total{endpoint=\"solve\"} 1\n"));
        assert!(text.contains("llpd_responses_total{status=\"429\"} 1\n"));
        assert!(text.contains("llpd_solves_by_vector_width_total{vector_width=\"4\"} 1\n"));
        assert!(text.contains("llpd_solves_by_schedule_total{schedule=\"auto\"} 1\n"));
        assert!(text.contains("llpd_kernel_seconds_total{kernel=\"rhs\"} 0.5\n"));
        assert!(text.contains("llpd_tune_entries_stale 1\n"));
        assert!(text.contains("llpd_pool_workers 4\n"));
        assert!(text.contains("llpd_pool_sync_events_total 36\n"));
        // Histogram: cumulative buckets end at +Inf and match count.
        assert!(text.contains("llpd_request_latency_ms_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("llpd_request_latency_ms_count 2\n"));
        assert!(text.contains("llpd_request_latency_ms_sum 703\n"));
        let mut last = 0u64;
        let mut buckets = 0;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("llpd_request_latency_ms_bucket{le=\"") {
                let count: u64 = rest.split("} ").nth(1).unwrap().parse().unwrap();
                assert!(count >= last, "buckets must be cumulative: {line}");
                last = count;
                buckets += 1;
            }
        }
        assert!(buckets > 2, "expected a bucket ladder");
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').unwrap();
            assert!(name.starts_with("llpd_"), "{line}");
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf",
                "unparseable value in {line}"
            );
        }
    }

    #[test]
    fn histograms_land_in_the_snapshot() {
        let m = Metrics::new();
        m.observe_latency_ms(0.7);
        m.observe_latency_ms(3.0);
        m.observe_latency_ms(40.0);
        m.observe_queue_depth(0);
        m.observe_queue_depth(5);
        let j = m.to_json(1, 1, 0, 0);
        let lat = j.get("latency_ms").unwrap();
        assert_eq!(lat.get("count").and_then(Json::as_u64), Some(3));
        assert!(lat.get("p50").unwrap().as_f64().unwrap() <= 5.0);
        assert!(lat.get("p99").unwrap().as_f64().unwrap() >= 40.0);
        let q = j.get("queue_depths").unwrap();
        assert_eq!(q.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(m.latency_quantile_ms(0.5), Some(5.0));
        // Cumulative buckets end at +Inf.
        let buckets = lat.get("buckets").and_then(Json::as_array).unwrap();
        assert_eq!(
            buckets.last().unwrap().get("le").and_then(Json::as_str),
            Some("+Inf")
        );
    }
}
