//! Structured access logging for `llpd`.
//!
//! Every finished request emits one NDJSON line on stderr — a single
//! JSON object per line, so `jq`, `grep`, and log shippers can consume
//! the stream without a parser of their own. The line is built with the
//! same [`Json`] serializer the API uses, which guarantees correct
//! string escaping for hostile request paths.
//!
//! Verbosity is controlled by the `LLPD_LOG` environment variable,
//! read once per process:
//!
//! * `error` — only failed requests (status ≥ 500);
//! * `info` (default) — every completed request;
//! * `debug` — every completed request (reserved headroom for more
//!   detail; currently identical to `info` for access lines).
//!
//! Unknown values fall back to `info`. Each line is written with a
//! single locked `writeln!`, so concurrent connection threads never
//! interleave partial lines.

use llp::obs::json::Json;
use std::io::Write;
use std::sync::OnceLock;

/// Log verbosity, parsed from `LLPD_LOG`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Only server-side failures (status ≥ 500).
    Error,
    /// Every completed request (the default).
    Info,
    /// Everything `info` logs, plus future diagnostic lines.
    Debug,
}

impl LogLevel {
    /// Parse a `LLPD_LOG` value; anything unrecognized means `Info`.
    #[must_use]
    pub fn parse(value: &str) -> Self {
        match value.trim().to_ascii_lowercase().as_str() {
            "error" => Self::Error,
            "debug" => Self::Debug,
            _ => Self::Info,
        }
    }
}

static LEVEL: OnceLock<LogLevel> = OnceLock::new();

/// The process-wide log level: `LLPD_LOG` parsed once, `Info` when
/// unset.
pub fn level() -> LogLevel {
    *LEVEL.get_or_init(|| {
        std::env::var("LLPD_LOG")
            .map(|v| LogLevel::parse(&v))
            .unwrap_or(LogLevel::Info)
    })
}

/// Whether an access line for `status` should be emitted at `level`.
#[must_use]
pub fn logs_status(level: LogLevel, status: u16) -> bool {
    match level {
        LogLevel::Error => status >= 500,
        LogLevel::Info | LogLevel::Debug => true,
    }
}

/// Build one NDJSON access-log line (without the trailing newline).
///
/// Field order is fixed so the stream is diffable: `ts_ms`, `req`,
/// `method`, `path`, `status`, `ms`, `trace_id` (null when the request
/// produced no trace).
#[must_use]
pub fn access_line(
    ts_ms: u64,
    req_id: u64,
    method: &str,
    path: &str,
    status: u16,
    latency_ms: f64,
    trace_id: Option<u64>,
) -> String {
    Json::object(vec![
        ("ts_ms", Json::from_u64(ts_ms)),
        ("req", Json::from_u64(req_id)),
        ("method", Json::str(method)),
        ("path", Json::str(path)),
        ("status", Json::Num(f64::from(status))),
        ("ms", Json::Num((latency_ms * 1000.0).round() / 1000.0)),
        ("trace_id", trace_id.map_or(Json::Null, Json::from_u64)),
    ])
    .to_string()
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
#[must_use]
pub fn epoch_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

/// Emit one access line for a finished request, honoring the
/// process-wide level. One locked write per line: concurrent callers
/// never interleave.
pub fn access(req_id: u64, method: &str, path: &str, status: u16, ms: f64, trace_id: Option<u64>) {
    if !logs_status(level(), status) {
        return;
    }
    let line = access_line(epoch_ms(), req_id, method, path, status, ms, trace_id);
    let stderr = std::io::stderr();
    let mut handle = stderr.lock();
    let _ = writeln!(handle, "{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_levels_with_an_info_fallback() {
        assert_eq!(LogLevel::parse("error"), LogLevel::Error);
        assert_eq!(LogLevel::parse(" DEBUG "), LogLevel::Debug);
        assert_eq!(LogLevel::parse("info"), LogLevel::Info);
        assert_eq!(LogLevel::parse("verbose?"), LogLevel::Info);
        assert_eq!(LogLevel::parse(""), LogLevel::Info);
    }

    #[test]
    fn error_level_only_logs_failures() {
        assert!(!logs_status(LogLevel::Error, 200));
        assert!(!logs_status(LogLevel::Error, 429));
        assert!(logs_status(LogLevel::Error, 500));
        assert!(logs_status(LogLevel::Info, 200));
        assert!(logs_status(LogLevel::Debug, 404));
    }

    #[test]
    fn access_lines_are_valid_json_with_fixed_fields() {
        let line = access_line(
            1_700_000_000_123,
            7,
            "GET",
            "/v1/solve",
            200,
            12.3456,
            Some(42),
        );
        let parsed = Json::parse(&line).expect("line parses");
        assert_eq!(
            parsed.get("ts_ms").and_then(Json::as_u64),
            Some(1_700_000_000_123)
        );
        assert_eq!(parsed.get("req").and_then(Json::as_u64), Some(7));
        assert_eq!(parsed.get("method").and_then(Json::as_str), Some("GET"));
        assert_eq!(parsed.get("path").and_then(Json::as_str), Some("/v1/solve"));
        assert_eq!(parsed.get("status").and_then(Json::as_u64), Some(200));
        assert_eq!(parsed.get("ms").and_then(Json::as_f64), Some(12.346));
        assert_eq!(parsed.get("trace_id").and_then(Json::as_u64), Some(42));
        assert!(!line.contains('\n'), "one line per record");
    }

    #[test]
    fn missing_trace_ids_serialize_as_null() {
        let line = access_line(1, 2, "GET", "/metrics", 200, 0.5, None);
        let parsed = Json::parse(&line).expect("line parses");
        assert!(matches!(parsed.get("trace_id"), Some(Json::Null)));
    }

    #[test]
    fn hostile_paths_are_escaped() {
        let line = access_line(1, 2, "GET", "/a\"b\\c\n", 404, 0.1, None);
        let parsed = Json::parse(&line).expect("escaped line parses");
        assert_eq!(
            parsed.get("path").and_then(Json::as_str),
            Some("/a\"b\\c\n")
        );
    }
}
