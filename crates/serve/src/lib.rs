//! `llpserve`: a dependency-free HTTP service over the loop-level
//! parallelism suite.
//!
//! The binary `llpd` exposes three kinds of queries over one shared
//! doacross pool:
//!
//! * `POST /v1/solve` — a bounded solver run for any registered
//!   physics ([`solvers`]): the default `"solver": "f3d"` multi-zone
//!   flow solve ([`f3d::service`]) returning residual history, force
//!   coefficients, field checksums, and the run's observability span
//!   report, or `"solver": "fdtd"` for the 2-D FDTD Maxwell solve
//!   ([`fdtd`]) returning the energy history and field checksums;
//!   `"schedule": "auto"` resolves per-kernel configurations from the
//!   solver's tune database ([`tune`]) — bit-exact with the defaults,
//!   only cheaper. Solves whose estimated memory footprint exceeds
//!   `--memory-budget` are rejected with 413 before any pool work;
//! * `POST /v1/advise` — §4-style parallelize-or-not advice
//!   ([`llp::advisor`]) for a submitted loop profile, overlaid with the
//!   tune database's measured choices when kernels match;
//! * `POST /v1/tune` — start a bounded background calibration
//!   ([`tune::calibrate`]) on a dedicated pool slice (one at a time;
//!   concurrent requests get 429); `GET /v1/tune` polls its status and
//!   returns the current database;
//! * `GET /v1/model/{stairstep,overhead,work_per_sync}` — batched
//!   performance-model queries ([`perfmodel`]);
//! * `GET /metrics` — Prometheus text exposition of the service
//!   counters, request-latency and queue-depth histograms, and the
//!   shared pool's synchronization-event totals (`Accept:
//!   application/json` or `?format=json` selects the JSON form);
//! * `GET /v1/health` — liveness plus the drift watchdog's verdict:
//!   `degraded` when tune entries have gone stale;
//! * `GET /v1/stats` — recent telemetry windows from the in-process
//!   time series ([`llp::obs::series`]);
//! * `GET /v1/trace/{id}` — per-worker overhead attribution for a
//!   recent solve (append `?trace=chrome` for a Chrome trace-event
//!   download), backed by a bounded in-memory [`trace`] ring fed by
//!   the executors' flight recorders.
//!
//! Everything is `std`-only: HTTP framing is hand-rolled
//! ([`http`]), connections are multiplexed on one `poll(2)`-based
//! readiness event loop ([`evloop`]) with HTTP/1.1 keep-alive, JSON is
//! `llp::obs::json`, and signals are a two-line binding to `signal(2)`
//! ([`signal`]). Identical in-flight `/v1/solve` requests coalesce into
//! one execution and completed results land in a bounded
//! content-addressed cache ([`cache`]). See [`server`] for the
//! event-loop and admission-control architecture.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod evloop;
pub mod http;
pub mod log;
pub mod metrics;
pub mod server;
pub mod signal;
pub mod solvers;
pub mod trace;

pub use server::{Server, ServerConfig};
