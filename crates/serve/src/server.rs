//! The `llpd` server: one listener, one shared doacross pool, and a
//! bounded job queue feeding a sharded executor pool.
//!
//! # Architecture
//!
//! Connection threads parse and validate requests, then answer cheap
//! queries (`/metrics`, `/v1/model/*`) inline. Pool-backed work
//! (`/v1/solve`, `/v1/advise`) goes through admission control: a
//! bounded queue in front of **N executor shards**. Each shard is a
//! thread owning a disjoint [`Workers::sized_view`] slice of the shared
//! pool — the slices share the pool's synchronization-event counters,
//! so `/metrics` totals stay exact, but each shard carries its **own
//! span recorder**. That per-shard recorder is what makes concurrency
//! sound: a recorder keeps one span stack, so two requests may not
//! interleave on the same recorder, but requests on *different* shards
//! record independently and each response still contains exactly its
//! own spans. Per-request worker counts come from a further
//! `sized_view` of the shard, which clamps to the shard's width and
//! surfaces the clamp in the report.
//!
//! Admission control is deliberate back-pressure, not failure: when the
//! queue is full the service answers `429` with a `Retry-After` derived
//! from the **observed drain rate** (a window over recent job
//! completion times — see [`DrainEstimator`]) instead of queueing
//! unboundedly, and each queued request carries a deadline after which
//! its connection gives up with `503` (an executor still finishes the
//! job; the reply is simply dropped).
//!
//! Shards are panic-proof: a job that panics (a solver bug, not bad
//! input — input is validated at admission) is contained with
//! [`std::panic::catch_unwind`], answered with `500`, counted in
//! `executor_panics_total`, and the shard's recorder is
//! [reset](llp::Recorder::reset) so the next job on that shard starts
//! with a clean span stack.
//!
//! Shutdown is graceful: draining flips first (new work gets `503`),
//! every shard finishes everything already admitted, and the server
//! waits for open connections to flush their responses.

use crate::api;
use crate::http::{read_request, write_response, HttpError, Request, Response};
use crate::metrics::Metrics;
use crate::trace::{TraceEntry, TraceStore};
use f3d::service::MAX_WORKERS;
use llp::obs::timeline::DEFAULT_EVENT_CAPACITY;
use llp::{FlightRecorder, Recorder, Workers};
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};
use tune::{calibrate, CalibrationSpec, TuneDb};

/// Default shard width used when [`ServerConfig::shards`] is 0 and
/// `LLPD_SHARDS` is unset: the pool is cut into slices of this many
/// workers each.
const DEFAULT_SHARD_WIDTH: usize = 2;

/// Completion-time window the [`DrainEstimator`] averages over.
const DRAIN_WINDOW: usize = 8;

/// `Retry-After` ceiling in seconds; a stalled service never asks a
/// client to back off longer than this.
const MAX_RETRY_AFTER_SECS: f64 = 60.0;

/// Lock a mutex, tolerating poison: admission-control state is always
/// valid at rest (push/pop/record are atomic units), so a panic while
/// holding the lock cannot leave it half-updated. Inheriting the data
/// beats wedging every subsequent request on an `unwrap`.
fn lock_clean<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker count of the shared pool (the maximum any request can
    /// ask for, capped at [`MAX_WORKERS`]).
    pub workers: usize,
    /// Executor shard count. Each shard owns a
    /// `workers / shards`-wide slice of the pool and executes one job
    /// at a time, so up to `shards` jobs run concurrently. `0` means
    /// auto: the `LLPD_SHARDS` environment variable when set to a
    /// positive integer, else one shard per [`DEFAULT_SHARD_WIDTH`]
    /// workers. Clamped to `1..=workers`.
    pub shards: usize,
    /// Jobs admitted beyond the ones executing; the next is rejected
    /// with 429.
    pub queue_capacity: usize,
    /// Per-request deadline covering queue wait plus compute.
    pub deadline: Duration,
    /// Maximum accepted request-body size.
    pub max_body_bytes: usize,
    /// Test hook: when set, every shard locks this mutex after popping
    /// each job and before computing it, so tests can hold the lock to
    /// pin executors "busy" deterministically.
    pub job_gate: Option<Arc<Mutex<()>>>,
    /// Test hook: while `true`, executing a job panics instead of
    /// computing it — exercises the panic-containment path exactly as a
    /// solver bug would.
    pub job_fault: Option<Arc<AtomicBool>>,
    /// Tune database loaded at startup (`llpd --tune-db` /
    /// `LLPD_TUNE_DB`): per-kernel configurations `"schedule": "auto"`
    /// solves resolve against until a `POST /v1/tune` calibration
    /// replaces it.
    pub tune_db: Option<TuneDb>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: llp::default_worker_count().min(MAX_WORKERS),
            shards: 0,
            queue_capacity: 8,
            deadline: Duration::from_secs(30),
            max_body_bytes: 64 * 1024,
            job_gate: None,
            job_fault: None,
            tune_db: None,
        }
    }
}

impl ServerConfig {
    /// The shard count [`Server::start`] will actually run with: the
    /// explicit setting, else `LLPD_SHARDS`, else one shard per
    /// [`DEFAULT_SHARD_WIDTH`] workers — always in `1..=workers`.
    #[must_use]
    pub fn resolved_shards(&self) -> usize {
        let auto = || {
            llp::env::positive_usize("LLPD_SHARDS")
                .unwrap_or_else(|| self.workers.max(1) / DEFAULT_SHARD_WIDTH)
        };
        let shards = if self.shards > 0 { self.shards } else { auto() };
        shards.clamp(1, self.workers.max(1))
    }
}

/// Estimates how long a rejected client should wait before retrying,
/// from the observed queue drain rate.
///
/// Completion instants of the last [`DRAIN_WINDOW`] jobs give an
/// average per-job service interval; the estimate for a backlog of `k`
/// jobs is `k` intervals. Two properties matter more than precision:
///
/// * **Stall-awareness**: the time since the *last* completion (or
///   since startup, if nothing has completed) is a lower bound on the
///   per-job interval. A wedged executor therefore produces estimates
///   that grow with the stall instead of repeating a stale average —
///   successive rejections report non-decreasing `Retry-After`.
/// * **Bounds**: always at least 1 second (the HTTP granularity) and at
///   most [`MAX_RETRY_AFTER_SECS`].
#[derive(Debug)]
pub struct DrainEstimator {
    state: Mutex<DrainState>,
}

#[derive(Debug)]
struct DrainState {
    /// Last completion, or construction time before any completion.
    last_event: Instant,
    /// Seconds between consecutive completions, newest last.
    intervals: VecDeque<f64>,
}

impl DrainEstimator {
    /// A fresh estimator; "now" seeds the stall clock.
    #[must_use]
    pub fn new() -> Self {
        Self::starting_at(Instant::now())
    }

    fn starting_at(start: Instant) -> Self {
        Self {
            state: Mutex::new(DrainState {
                last_event: start,
                intervals: VecDeque::with_capacity(DRAIN_WINDOW),
            }),
        }
    }

    /// Record that a job just finished.
    pub fn record_completion(&self) {
        self.record_completion_at(Instant::now());
    }

    fn record_completion_at(&self, now: Instant) {
        let mut s = lock_clean(&self.state);
        let interval = now.duration_since(s.last_event).as_secs_f64();
        if s.intervals.len() == DRAIN_WINDOW {
            s.intervals.pop_front();
        }
        s.intervals.push_back(interval);
        s.last_event = now;
    }

    /// Seconds a client with `jobs_ahead` jobs in front of it should
    /// wait before retrying.
    #[must_use]
    pub fn retry_after_secs(&self, jobs_ahead: usize) -> u64 {
        self.retry_after_secs_at(jobs_ahead, Instant::now())
    }

    fn retry_after_secs_at(&self, jobs_ahead: usize, now: Instant) -> u64 {
        let s = lock_clean(&self.state);
        let stall = now.duration_since(s.last_event).as_secs_f64();
        let average = if s.intervals.is_empty() {
            0.0
        } else {
            s.intervals.iter().sum::<f64>() / s.intervals.len() as f64
        };
        let per_job = average.max(stall);
        let estimate = per_job * jobs_ahead.max(1) as f64;
        estimate.ceil().clamp(1.0, MAX_RETRY_AFTER_SECS) as u64
    }
}

impl Default for DrainEstimator {
    fn default() -> Self {
        Self::new()
    }
}

enum JobKind {
    Solve {
        case: f3d::service::ServiceCase,
        /// `"schedule": "auto"`: overlay the tune database's
        /// per-kernel configurations.
        auto: bool,
    },
    Advise(Box<api::AdviseQuery>),
}

/// The autotuner's server-side state: whether a calibration is
/// running (one at a time; concurrent requests get 429) and the
/// current database — seeded from [`ServerConfig::tune_db`], replaced
/// by each completed calibration.
struct TuneState {
    running: AtomicBool,
    db: Mutex<Option<Arc<TuneDb>>>,
}

struct Job {
    kind: JobKind,
    reply: mpsc::Sender<Response>,
}

struct Shared {
    metrics: Metrics,
    pool: Workers,
    shards: usize,
    queue: Mutex<VecDeque<Job>>,
    queue_signal: Condvar,
    draining: AtomicBool,
    drain_rate: DrainEstimator,
    traces: TraceStore,
    tune: TuneState,
    /// Monotone per-process request ids for the access log.
    request_seq: AtomicU64,
    config: ServerConfig,
}

impl Shared {
    /// Snapshot the current tune database (cheap Arc clone).
    fn tune_db(&self) -> Option<Arc<TuneDb>> {
        lock_clean(&self.tune.db).clone()
    }
}

/// A running `llpd` instance; dropping it without calling
/// [`Server::shutdown`] leaves its threads running detached.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<thread::JoinHandle<()>>,
    executors: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the accept loop and the executor shards, and return.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn start(config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let workers = config.workers.clamp(1, MAX_WORKERS);
        let shards = config.resolved_shards().min(workers);
        let shared = Arc::new(Shared {
            metrics: Metrics::new(),
            pool: Workers::new(workers),
            shards,
            queue: Mutex::new(VecDeque::new()),
            queue_signal: Condvar::new(),
            draining: AtomicBool::new(false),
            drain_rate: DrainEstimator::new(),
            traces: TraceStore::default(),
            tune: TuneState {
                running: AtomicBool::new(false),
                db: Mutex::new(config.tune_db.clone().map(Arc::new)),
            },
            request_seq: AtomicU64::new(1),
            config,
        });

        let accept = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&listener, &shared))
        };
        let shard_width = (workers / shards).max(1);
        let executors = (0..shards)
            .map(|_| {
                let shared = Arc::clone(&shared);
                // Each shard slice shares the pool's counters but owns
                // a private recorder and flight recorder: concurrent
                // jobs never interleave spans or timelines, and
                // /metrics pool totals stay exact. Jobs on one shard
                // are serial, so each job drains exactly its own
                // flight events.
                let mut slice = shared.pool.sized_view(shard_width);
                slice.set_recorder(Recorder::enabled());
                slice.set_flight(FlightRecorder::enabled(shard_width, DEFAULT_EVENT_CAPACITY));
                thread::spawn(move || executor_loop(&shared, &slice))
            })
            .collect();

        Ok(Self {
            shared,
            addr,
            accept: Some(accept),
            executors,
        })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of executor shards actually running.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shared.shards
    }

    /// Total requests rejected with 429 so far.
    #[must_use]
    pub fn rejected_total(&self) -> u64 {
        self.shared.metrics.rejected_total()
    }

    /// Drain and stop: new work is refused with 503, everything already
    /// admitted completes, then threads are joined and open connections
    /// are given a bounded grace period to flush.
    pub fn shutdown(mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue_signal.notify_all();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for handle in self.executors.drain(..) {
            let _ = handle.join();
        }
        // Executed jobs have replies in flight; give their connection
        // threads a bounded window to write and hang up.
        for _ in 0..500 {
            if self.shared.metrics.open_connections() == 0 {
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                shared.metrics.connection_opened();
                let shared = Arc::clone(shared);
                thread::spawn(move || {
                    handle_connection(stream, &shared);
                    shared.metrics.connection_closed();
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// One executor shard: pop admitted jobs and run them on this shard's
/// pool slice until drained.
fn executor_loop(shared: &Arc<Shared>, slice: &Workers) {
    loop {
        let job = {
            let mut queue = lock_clean(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    shared.metrics.set_queue_depth(queue.len());
                    break job;
                }
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared
                    .queue_signal
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        shared.metrics.executor_started();
        if let Some(gate) = &shared.config.job_gate {
            // Test hook: block here while a test holds the gate.
            drop(lock_clean(gate));
        }
        let response = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_job(shared, slice, &job.kind)
        })) {
            Ok(response) => response,
            Err(_) => {
                // A panicking job (solver bug — inputs were validated at
                // admission) must not take the shard down with it. The
                // recorder may hold a half-built span stack and the
                // flight rings partial events; reset and drain so the
                // next job's report and timeline are exactly its own.
                shared.metrics.executor_panicked();
                slice.recorder().reset();
                let _ = slice.flight().take_timeline();
                Response::error(500, "internal error: job panicked")
            }
        };
        shared.metrics.executor_finished();
        shared.drain_rate.record_completion();
        // The requester may have hit its deadline and gone away.
        job.reply.send(response).ok();
    }
}

fn execute_job(shared: &Arc<Shared>, slice: &Workers, kind: &JobKind) -> Response {
    if let Some(fault) = &shared.config.job_fault {
        assert!(
            !fault.load(Ordering::SeqCst),
            "injected job fault (test hook)"
        );
    }
    match kind {
        JobKind::Solve { case, auto } => {
            let view = slice.sized_view(case.workers);
            // "auto": overlay the tune database's per-kernel
            // configurations. The schedules only reorder work within
            // each doacross region, so results stay bit-exact with the
            // default path — the overlay changes cost, never answers.
            let db = if *auto { shared.tune_db() } else { None };
            let map = db.as_ref().map(|d| d.schedule_map());
            let tuned = if *auto {
                api::tuned_resolution(db.as_deref())
            } else {
                llp::obs::json::Json::Null
            };
            match f3d::service::run_scheduled(case, &view, map.as_ref()) {
                Ok(run) => {
                    shared
                        .metrics
                        .job_done(run.sync_events, run.report.total_seconds());
                    // Retain the run's flight trace (attribution +
                    // Chrome documents) and hand the client its id.
                    let trace_id = if run.timeline.is_empty() {
                        None
                    } else {
                        let id = shared.traces.allocate_id();
                        let (attribution, chrome) = api::trace_documents(&run, id);
                        shared.traces.insert(TraceEntry {
                            id,
                            case: run.case.label(),
                            attribution,
                            chrome,
                        });
                        Some(id)
                    };
                    Response::ok(api::solve_response(&run, trace_id, tuned).to_string())
                }
                // Validation happened at admission; anything left is an
                // internal fault.
                Err(msg) => Response::error(500, &msg),
            }
        }
        JobKind::Advise(query) => {
            shared.metrics.job_executed();
            // Measured tune-db entries overlay the analytic advice —
            // the response reports both and their (dis)agreement.
            let measured = shared
                .tune_db()
                .map_or_else(Vec::new, |db| db.measured_choices());
            let advice = query
                .advisor
                .advise_with_measured(&query.reports, &measured);
            Response::ok(api::advise_response(&advice).to_string())
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    // Generous socket timeout: the per-request deadline governs job
    // latency; this only bounds how long a silent peer can pin the
    // thread.
    let io_timeout = shared.config.deadline + Duration::from_secs(5);
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let started = Instant::now();
    let req_id = shared.request_seq.fetch_add(1, Ordering::Relaxed);
    let (response, method, path) = match read_request(&mut reader, shared.config.max_body_bytes) {
        Ok(request) => {
            let response = route(&request, shared);
            (response, request.method, request.path)
        }
        Err(HttpError { status, message }) => {
            shared.metrics.request("other");
            (
                Response::error(status, &message),
                "-".to_string(),
                "-".to_string(),
            )
        }
    };
    let elapsed_ms = started.elapsed().as_secs_f64() * 1_000.0;
    shared.metrics.response(response.status);
    shared.metrics.observe_latency_ms(elapsed_ms);
    // Structured one-line access log: parse/queue/compute end to end.
    eprintln!(
        "llpd req={req_id} method={method} path={path} status={} ms={elapsed_ms:.2}",
        response.status
    );
    let mut stream = stream;
    let _ = write_response(&mut stream, &response);
}

fn route(request: &Request, shared: &Arc<Shared>) -> Response {
    let (endpoint, expect_post) = match request.path.as_str() {
        "/metrics" => ("metrics", false),
        "/v1/solve" => ("solve", true),
        "/v1/advise" => ("advise", true),
        // /v1/tune speaks both verbs: POST starts a calibration, GET
        // polls its status. Expecting whichever of the two arrived
        // still rejects every other method with 405.
        "/v1/tune" => ("tune", request.method == "POST"),
        p if p.starts_with("/v1/model/") => ("model", false),
        p if p.starts_with("/v1/trace/") => ("trace", false),
        _ => ("other", false),
    };
    shared.metrics.request(endpoint);
    if endpoint == "other" {
        return Response::error(404, &format!("no route for {}", request.path));
    }
    let expected = if expect_post { "POST" } else { "GET" };
    if request.method != expected {
        return Response::error(405, &format!("{} requires {expected}", request.path));
    }

    match endpoint {
        "metrics" => Response::ok(
            shared
                .metrics
                .to_json(
                    shared.pool.processors(),
                    shared.shards,
                    shared.pool.sync_event_count(),
                    shared.pool.region_count(),
                )
                .to_string(),
        ),
        "model" => {
            let kind = &request.path["/v1/model/".len()..];
            match api::model_response(kind, &request.query) {
                Ok(json) => Response::ok(json.to_string()),
                Err(msg) => Response::error(400, &msg),
            }
        }
        "trace" => {
            let raw = &request.path["/v1/trace/".len()..];
            match raw.parse::<u64>() {
                Err(_) => Response::error(400, "trace id must be a non-negative integer"),
                Ok(id) => match shared.traces.get(id) {
                    None => {
                        Response::error(404, &format!("no trace {id} (evicted or never existed)"))
                    }
                    Some(entry) => match request.query.as_str() {
                        "" => Response::ok(entry.attribution.to_string()),
                        "trace=chrome" => Response::ok(entry.chrome.to_string()),
                        other => Response::error(
                            400,
                            &format!("unknown query `{other}` (use ?trace=chrome)"),
                        ),
                    },
                },
            }
        }
        "solve" => {
            let default_workers = shared.pool.processors().min(MAX_WORKERS);
            match api::parse_solve_body(&request.body, default_workers) {
                Ok(req) => submit(
                    shared,
                    JobKind::Solve {
                        case: req.case,
                        auto: req.auto,
                    },
                ),
                Err(msg) => Response::error(400, &msg),
            }
        }
        "tune" => {
            if request.method == "GET" {
                let db = shared.tune_db();
                let status = if shared.tune.running.load(Ordering::SeqCst) {
                    "calibrating"
                } else if db.is_some() {
                    "ready"
                } else {
                    "idle"
                };
                Response::ok(api::tune_status_response(status, db.as_deref()).to_string())
            } else {
                start_calibration(shared, &request.body)
            }
        }
        "advise" => match api::parse_advise_body(&request.body) {
            Ok(query) => submit(shared, JobKind::Advise(Box::new(query))),
            Err(msg) => Response::error(400, &msg),
        },
        // The match above covers every routed endpoint; answer a clean
        // 500 rather than panicking the connection thread if routing
        // and dispatch ever drift apart.
        _ => Response::error(500, "internal error: unroutable endpoint"),
    }
}

/// `POST /v1/tune`: start a bounded background calibration.
///
/// At most one calibration runs at a time — a second request while one
/// is in flight gets `429`. The calibration runs on a *dedicated*
/// shard-width slice of the pool (its own thread, recorder, and flight
/// rings — `calibrate` instruments its own view), so the executor
/// shards keep serving while it measures. With the `job_gate` test
/// hook installed the calibration honors the gate before starting and
/// selects winners in deterministic (structural) mode, so tests can
/// pin it mid-flight and reproduce its decisions exactly.
fn start_calibration(shared: &Arc<Shared>, body: &str) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::error(503, "shutting down");
    }
    let spec = match api::parse_tune_body(body) {
        Ok(spec) => CalibrationSpec {
            deterministic: shared.config.job_gate.is_some(),
            ..spec
        },
        Err(msg) => return Response::error(400, &msg),
    };
    if shared.tune.running.swap(true, Ordering::SeqCst) {
        return Response::error(429, "calibration already running").with_retry_after(1);
    }
    let shared = Arc::clone(shared);
    thread::spawn(move || {
        if let Some(gate) = &shared.config.job_gate {
            drop(lock_clean(gate));
        }
        let width = (shared.pool.processors() / shared.shards).max(1);
        let slice = shared.pool.sized_view(width);
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| calibrate(&slice, &spec)));
        match outcome {
            Ok(Ok(db)) => {
                *lock_clean(&shared.tune.db) = Some(Arc::new(db));
            }
            Ok(Err(msg)) => eprintln!("llpd: calibration failed: {msg}"),
            Err(_) => eprintln!("llpd: calibration panicked"),
        }
        shared.tune.running.store(false, Ordering::SeqCst);
    });
    Response::ok(api::tune_started_response(&spec).to_string())
}

/// `Retry-After` for a rejection while `queued` jobs wait: everything
/// queued plus everything currently executing is ahead of the client.
fn retry_after(shared: &Arc<Shared>, queued: usize) -> u64 {
    let ahead = queued + shared.metrics.executors_busy() as usize;
    shared.drain_rate.retry_after_secs(ahead)
}

/// Admission control: enqueue a validated job and wait for its reply
/// until the deadline.
fn submit(shared: &Arc<Shared>, kind: JobKind) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        let queued = lock_clean(&shared.queue).len();
        return Response::error(503, "shutting down").with_retry_after(retry_after(shared, queued));
    }
    let (reply, receiver) = mpsc::channel();
    {
        let mut queue = lock_clean(&shared.queue);
        shared.metrics.observe_queue_depth(queue.len());
        if queue.len() >= shared.config.queue_capacity {
            let queued = queue.len();
            drop(queue);
            return Response::error(429, "queue full")
                .with_retry_after(retry_after(shared, queued));
        }
        queue.push_back(Job { kind, reply });
        shared.metrics.set_queue_depth(queue.len());
    }
    shared.queue_signal.notify_one();
    match receiver.recv_timeout(shared.config.deadline) {
        Ok(response) => response,
        Err(_) => {
            shared.metrics.timeout();
            let queued = lock_clean(&shared.queue).len();
            Response::error(503, "deadline exceeded").with_retry_after(retry_after(shared, queued))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_resolution_clamps_and_defaults() {
        let config = |workers, shards| ServerConfig {
            workers,
            shards,
            ..ServerConfig::default()
        };
        // Explicit counts are honored but clamped to the pool width.
        assert_eq!(config(8, 4).resolved_shards(), 4);
        assert_eq!(config(2, 64).resolved_shards(), 2);
        assert_eq!(config(1, 3).resolved_shards(), 1);
        // Auto: one shard per DEFAULT_SHARD_WIDTH workers, at least 1.
        // (LLPD_SHARDS is not set in the test environment.)
        assert_eq!(config(8, 0).resolved_shards(), 4);
        assert_eq!(config(1, 0).resolved_shards(), 1);
    }

    #[test]
    fn drain_estimate_is_monotone_under_a_stall() {
        let t0 = Instant::now();
        let est = DrainEstimator::starting_at(t0);
        // A healthy phase: four jobs completing one second apart.
        for i in 1..=4 {
            est.record_completion_at(t0 + Duration::from_secs(i));
        }
        let healthy = est.retry_after_secs_at(2, t0 + Duration::from_secs(4));
        assert_eq!(healthy, 2, "two jobs ahead at ~1 s/job");
        // Then the executor stalls: no completions, queries drift out.
        let stalled: Vec<u64> = [6u64, 9, 14, 30]
            .iter()
            .map(|&s| est.retry_after_secs_at(2, t0 + Duration::from_secs(s)))
            .collect();
        for pair in stalled.windows(2) {
            assert!(pair[0] <= pair[1], "estimates shrank during a stall");
        }
        assert!(stalled[0] >= healthy);
        // The stall term dominates the stale 1 s/job average.
        assert!(stalled[3] >= 26 * 2 - 1);
    }

    #[test]
    fn drain_estimate_stays_bounded() {
        let t0 = Instant::now();
        let est = DrainEstimator::starting_at(t0);
        // Nothing observed yet: minimum one second.
        assert_eq!(est.retry_after_secs_at(0, t0), 1);
        assert_eq!(est.retry_after_secs_at(100, t0), 1);
        // A very fast drain still answers at least 1.
        est.record_completion_at(t0 + Duration::from_millis(1));
        est.record_completion_at(t0 + Duration::from_millis(2));
        assert_eq!(est.retry_after_secs_at(1, t0 + Duration::from_millis(2)), 1);
        // A deeply stalled backlog is capped.
        assert_eq!(
            est.retry_after_secs_at(50, t0 + Duration::from_secs(10_000)),
            MAX_RETRY_AFTER_SECS as u64
        );
    }

    #[test]
    fn drain_estimate_recovers_after_a_stall() {
        let t0 = Instant::now();
        let est = DrainEstimator::starting_at(t0);
        est.record_completion_at(t0 + Duration::from_secs(30));
        // The long first interval dominates...
        assert!(est.retry_after_secs_at(1, t0 + Duration::from_secs(30)) >= 3);
        // ...until a run of fast completions ages it out of the window.
        let mut t = t0 + Duration::from_secs(30);
        for _ in 0..DRAIN_WINDOW {
            t += Duration::from_millis(100);
            est.record_completion_at(t);
        }
        assert_eq!(est.retry_after_secs_at(1, t), 1);
    }
}
