//! The `llpd` server: one readiness event loop, one shared doacross
//! pool, and a bounded job queue feeding a sharded executor pool.
//!
//! # Architecture
//!
//! A single **event-loop thread** owns the nonblocking listener and
//! every connection, multiplexed through a hand-declared `poll(2)`
//! binding (see [`crate::evloop`]). Each connection is a small state
//! machine: bytes accumulate in a read buffer, the incremental HTTP
//! parser re-examines the prefix on every readable event, and response
//! bytes drain through a bounded write buffer on writable events.
//! Connections are keep-alive by default (HTTP/1.1 semantics) and
//! serial: one request is in flight per connection, pipelined bytes
//! wait buffered until the current response is written — that is the
//! write-backpressure bound, since a response is never queued behind an
//! unbounded backlog.
//!
//! Cheap queries (`/metrics`, `/v1/model/*`, `/v1/trace/*`, `/v1/tune`)
//! are answered inline on the event loop. Pool-backed work
//! (`/v1/solve`, `/v1/advise`) goes through admission control: a
//! bounded queue in front of **N executor shards**, each a thread
//! owning a disjoint [`Workers::sized_view`] slice of the shared pool
//! with its own span recorder and flight recorder. Executors push
//! completions over a channel and wake the event loop, which writes the
//! response on the requester's connection — or drops it, if the
//! requester hit its deadline or hung up.
//!
//! # Content-addressed reuse
//!
//! Solves are deterministic and worker/schedule-invariant, so identical
//! requests have identical answers. At admission every `/v1/solve` body
//! is canonicalized to a [`ContentKey`] (built from the *parsed* case —
//! JSON key order and whitespace cannot split the cache):
//!
//! * **hit** — the bounded LRU [`SolveCache`] already holds the
//!   pre-rendered result: answered inline, no execution.
//! * **coalesce** — an identical solve is already executing: this
//!   requester parks on the same in-flight entry and the one execution
//!   fans out to every waiter, each with its own `trace_id`.
//! * **miss** — a job is enqueued and the result is cached on
//!   completion.
//! * `"cache": "bypass"` skips all of the above: the solve executes
//!   unconditionally and touches neither the cache nor the in-flight
//!   table (the escape hatch for measuring real execution).
//!
//! Admission control is deliberate back-pressure, not failure: when the
//! queue is full the service answers `429` with a `Retry-After` derived
//! from the **observed drain rate** ([`DrainEstimator`]) applied to the
//! event loop's actual queue depth at rejection time, and each admitted
//! request carries a deadline after which the event loop answers `503`
//! (an executor still finishes the job; the completion is dropped).
//!
//! Shards are panic-proof: a job that panics is contained with
//! [`std::panic::catch_unwind`], every parked waiter gets `500`, the
//! in-flight entry is removed (so the next identical request executes
//! rather than parking forever), and the shard's recorder is reset.
//!
//! Shutdown is graceful: draining flips first (new work gets `503`),
//! every shard finishes everything already admitted, the event loop
//! delivers the final completions, closes idle keep-alive connections,
//! and exits once every connection has flushed.

use crate::api;
use crate::cache::{ContentKey, SolveCache, DEFAULT_CACHE_CAPACITY};
use crate::evloop::{self, Conn, PollFd, ReadOutcome, WakeReceiver, Waker, POLLIN, POLLOUT};
use crate::http::{parse_request_bytes, render_response, Parse, Request, Response, MAX_HEAD_BYTES};
use crate::metrics::Metrics;
use crate::solvers::{AnyCase, AnyRun, KINDS};
use crate::trace::{TraceEntry, TraceStore};
use f3d::service::MAX_WORKERS;
use llp::obs::attr::kernel_overheads;
use llp::obs::json::Json;
use llp::obs::series::DEFAULT_WINDOW_MS;
use llp::obs::timeline::DEFAULT_EVENT_CAPACITY;
use llp::obs::{AttributionReport, Series};
use llp::{FlightRecorder, Recorder, Workers};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};
use tune::{
    calibrate, calibrate_fdtd, expected_cost_ns, CalibrationSpec, DriftConfig, DriftTracker, TuneDb,
};

/// Default shard width used when [`ServerConfig::shards`] is 0 and
/// `LLPD_SHARDS` is unset: the pool is cut into slices of this many
/// workers each.
const DEFAULT_SHARD_WIDTH: usize = 2;

/// Completion-time window the [`DrainEstimator`] averages over.
const DRAIN_WINDOW: usize = 8;

/// `Retry-After` ceiling in seconds; a stalled service never asks a
/// client to back off longer than this.
const MAX_RETRY_AFTER_SECS: f64 = 60.0;

/// Hard cap on concurrently open connections; beyond it the listener
/// is simply not polled and the kernel backlog absorbs the burst.
const MAX_CONNECTIONS: usize = 1024;

/// Poll timeout: the granularity of deadline expiry and idle sweeps.
const POLL_TICK_MS: i32 = 25;

/// Lock a mutex, tolerating poison: admission-control state is always
/// valid at rest (push/pop/record are atomic units), so a panic while
/// holding the lock cannot leave it half-updated. Inheriting the data
/// beats wedging every subsequent request on an `unwrap`.
fn lock_clean<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker count of the shared pool (the maximum any request can
    /// ask for, capped at [`MAX_WORKERS`]).
    pub workers: usize,
    /// Executor shard count. Each shard owns a
    /// `workers / shards`-wide slice of the pool and executes one job
    /// at a time, so up to `shards` jobs run concurrently. `0` means
    /// auto: the `LLPD_SHARDS` environment variable when set to a
    /// positive integer, else one shard per [`DEFAULT_SHARD_WIDTH`]
    /// workers. Clamped to `1..=workers`.
    pub shards: usize,
    /// Jobs admitted beyond the ones executing; the next is rejected
    /// with 429.
    pub queue_capacity: usize,
    /// Per-request deadline covering queue wait plus compute.
    pub deadline: Duration,
    /// Maximum accepted request-body size.
    pub max_body_bytes: usize,
    /// Content-addressed solve cache capacity in entries; 0 disables
    /// caching (coalescing of identical in-flight solves still
    /// happens).
    pub cache_capacity: usize,
    /// Test hook: when set, every shard locks this mutex after popping
    /// each job and before computing it, so tests can hold the lock to
    /// pin executors "busy" deterministically.
    pub job_gate: Option<Arc<Mutex<()>>>,
    /// Test hook: while `true`, executing a job panics instead of
    /// computing it — exercises the panic-containment path exactly as a
    /// solver bug would.
    pub job_fault: Option<Arc<AtomicBool>>,
    /// Tune database loaded at startup (`llpd --tune-db` /
    /// `LLPD_TUNE_DB`): per-kernel configurations `"schedule": "auto"`
    /// solves resolve against until a `POST /v1/tune` calibration
    /// replaces it. The database names its solver; it seeds that
    /// solver's slot and other solvers start untuned.
    pub tune_db: Option<TuneDb>,
    /// Peak estimated solve footprint in bytes admitted per request
    /// (`llpd --memory-budget` / `LLPD_MEM_BUDGET`): a solve whose
    /// [`AnyCase::memory_usage_estimate`] exceeds the budget is
    /// rejected with `413` before it touches the cache, the queue, or
    /// the pool. `None` (the default) admits everything.
    pub memory_budget: Option<u64>,
    /// Width of one telemetry window in milliseconds (`/v1/stats`, the
    /// drift watchdog). `0` disables continuous telemetry entirely —
    /// the series records nothing and allocates nothing, and the drift
    /// watchdog (which advances on window boundaries) never fires.
    pub telemetry_window_ms: u64,
    /// Drift-watchdog thresholds; the defaults flag a tune entry after
    /// [`tune::DriftConfig::windows`] consecutive windows in which live
    /// solves cost more than `1 + threshold` times the model's
    /// prediction.
    pub drift_config: DriftConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: llp::default_worker_count().min(MAX_WORKERS),
            shards: 0,
            queue_capacity: 8,
            deadline: Duration::from_secs(30),
            max_body_bytes: 64 * 1024,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            job_gate: None,
            job_fault: None,
            tune_db: None,
            memory_budget: None,
            telemetry_window_ms: DEFAULT_WINDOW_MS,
            drift_config: DriftConfig::default(),
        }
    }
}

impl ServerConfig {
    /// The shard count [`Server::start`] will actually run with: the
    /// explicit setting, else `LLPD_SHARDS`, else one shard per
    /// [`DEFAULT_SHARD_WIDTH`] workers — always in `1..=workers`.
    #[must_use]
    pub fn resolved_shards(&self) -> usize {
        let auto = || {
            llp::env::positive_usize("LLPD_SHARDS")
                .unwrap_or_else(|| self.workers.max(1) / DEFAULT_SHARD_WIDTH)
        };
        let shards = if self.shards > 0 { self.shards } else { auto() };
        shards.clamp(1, self.workers.max(1))
    }
}

/// Estimates how long a rejected client should wait before retrying,
/// from the observed queue drain rate.
///
/// Completion instants of the last [`DRAIN_WINDOW`] jobs give an
/// average per-job service interval; the estimate for a backlog of `k`
/// jobs is `k` intervals. Two properties matter more than precision:
///
/// * **Stall-awareness**: the time since the *last* completion (or
///   since startup, if nothing has completed) is a lower bound on the
///   per-job interval. A wedged executor therefore produces estimates
///   that grow with the stall instead of repeating a stale average —
///   successive rejections report non-decreasing `Retry-After`.
/// * **Bounds**: always at least 1 second (the HTTP granularity) and at
///   most [`MAX_RETRY_AFTER_SECS`].
#[derive(Debug)]
pub struct DrainEstimator {
    state: Mutex<DrainState>,
}

#[derive(Debug)]
struct DrainState {
    /// Last completion, or construction time before any completion.
    last_event: Instant,
    /// Seconds between consecutive completions, newest last.
    intervals: VecDeque<f64>,
}

impl DrainEstimator {
    /// A fresh estimator; "now" seeds the stall clock.
    #[must_use]
    pub fn new() -> Self {
        Self::starting_at(Instant::now())
    }

    fn starting_at(start: Instant) -> Self {
        Self {
            state: Mutex::new(DrainState {
                last_event: start,
                intervals: VecDeque::with_capacity(DRAIN_WINDOW),
            }),
        }
    }

    /// Record that a job just finished.
    pub fn record_completion(&self) {
        self.record_completion_at(Instant::now());
    }

    fn record_completion_at(&self, now: Instant) {
        let mut s = lock_clean(&self.state);
        let interval = now.duration_since(s.last_event).as_secs_f64();
        if s.intervals.len() == DRAIN_WINDOW {
            s.intervals.pop_front();
        }
        s.intervals.push_back(interval);
        s.last_event = now;
    }

    /// Seconds a client with `jobs_ahead` jobs in front of it should
    /// wait before retrying.
    #[must_use]
    pub fn retry_after_secs(&self, jobs_ahead: usize) -> u64 {
        self.retry_after_secs_at(jobs_ahead, Instant::now())
    }

    fn retry_after_secs_at(&self, jobs_ahead: usize, now: Instant) -> u64 {
        let s = lock_clean(&self.state);
        let stall = now.duration_since(s.last_event).as_secs_f64();
        let average = if s.intervals.is_empty() {
            0.0
        } else {
            s.intervals.iter().sum::<f64>() / s.intervals.len() as f64
        };
        let per_job = average.max(stall);
        let estimate = per_job * jobs_ahead.max(1) as f64;
        estimate.ceil().clamp(1.0, MAX_RETRY_AFTER_SECS) as u64
    }
}

impl Default for DrainEstimator {
    fn default() -> Self {
        Self::new()
    }
}

/// One parked requester: the connection and the per-request token that
/// guards against stale completions (a deadline-expired request's token
/// no longer matches, so its late completion is dropped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Waiter {
    conn: u64,
    token: u64,
}

enum JobKind {
    Solve {
        case: AnyCase,
        /// `"schedule": "auto"`: overlay the solver's tune database's
        /// per-kernel configurations.
        auto: bool,
    },
    Advise(Box<api::AdviseQuery>),
}

/// Where a job's completion(s) go.
enum JobOrigin {
    /// Reply to exactly this waiter (advise jobs, bypass solves).
    Direct(Waiter),
    /// Reply to every waiter parked in the in-flight table under this
    /// key, and insert the rendered result into the solve cache.
    Keyed(ContentKey),
}

struct Job {
    kind: JobKind,
    origin: JobOrigin,
}

/// One finished job reply, routed back to the event loop.
struct Completion {
    waiter: Waiter,
    response: Response,
}

/// The autotuner's server-side state: whether a calibration is
/// running (one at a time across every solver; concurrent requests get
/// 429), one database slot per solver kind — seeded from
/// [`ServerConfig::tune_db`], each replaced by its solver's completed
/// calibrations — and a generation counter the solve-cache keys embed
/// so a recalibration invalidates `auto` entries.
struct TuneState {
    running: AtomicBool,
    db: Mutex<HashMap<String, Arc<TuneDb>>>,
    generation: AtomicU64,
}

struct Shared {
    metrics: Metrics,
    pool: Workers,
    shards: usize,
    queue: Mutex<VecDeque<Job>>,
    queue_signal: Condvar,
    draining: AtomicBool,
    drain_rate: DrainEstimator,
    traces: TraceStore,
    tune: TuneState,
    cache: SolveCache,
    /// Coalescing table: canonical key → waiters parked on the one
    /// in-flight execution of that key. An entry exists exactly while
    /// its job is queued or executing; the executor removes it (under
    /// this lock) when fanning out completions, so joining an entry
    /// and removing it cannot interleave.
    inflight: Mutex<HashMap<String, Vec<Waiter>>>,
    completions: mpsc::Sender<Completion>,
    waker: Waker,
    /// Monotone per-process request ids for the access log.
    request_seq: AtomicU64,
    /// Windowed telemetry ring (`/v1/stats`); disabled (and free) when
    /// [`ServerConfig::telemetry_window_ms`] is 0.
    series: Series,
    /// Drift watchdog: per-(kernel, config) EWMA of live solves'
    /// measured-over-predicted cost excess, advanced on telemetry
    /// window boundaries by the event loop.
    drift: Mutex<DriftTracker>,
    /// Server start instant — the telemetry series' time origin.
    started: Instant,
    config: ServerConfig,
}

impl Shared {
    /// Snapshot a solver's current tune database (cheap Arc clone).
    fn tune_db(&self, kind: &str) -> Option<Arc<TuneDb>> {
        lock_clean(&self.tune.db).get(kind).cloned()
    }

    /// Kernels whose tune entries the watchdog currently flags stale,
    /// across every solver's database (kernel vocabularies are
    /// disjoint), in a stable order.
    fn stale_kernels(&self) -> Vec<String> {
        let guard = lock_clean(&self.tune.db);
        let mut all: Vec<String> = guard.values().flat_map(|db| db.stale_kernels()).collect();
        drop(guard);
        all.sort();
        all
    }
}

/// A running `llpd` instance; dropping it without calling
/// [`Server::shutdown`] leaves its threads running detached.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    event_loop: Option<thread::JoinHandle<()>>,
    executors: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the event loop and the executor shards, and return.
    ///
    /// # Errors
    /// Propagates bind and waker-setup failures.
    pub fn start(config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (waker, wake_rx) = evloop::waker()?;
        let (completions_tx, completions_rx) = mpsc::channel();

        let workers = config.workers.clamp(1, MAX_WORKERS);
        let shards = config.resolved_shards().min(workers);
        let cache_capacity = config.cache_capacity;
        let shared = Arc::new(Shared {
            metrics: Metrics::new(),
            pool: Workers::new(workers),
            shards,
            queue: Mutex::new(VecDeque::new()),
            queue_signal: Condvar::new(),
            draining: AtomicBool::new(false),
            drain_rate: DrainEstimator::new(),
            traces: TraceStore::default(),
            tune: TuneState {
                running: AtomicBool::new(false),
                db: Mutex::new(
                    config
                        .tune_db
                        .clone()
                        .map(|db| HashMap::from([(db.solver.clone(), Arc::new(db))]))
                        .unwrap_or_default(),
                ),
                generation: AtomicU64::new(0),
            },
            cache: SolveCache::new(cache_capacity),
            inflight: Mutex::new(HashMap::new()),
            completions: completions_tx,
            waker,
            request_seq: AtomicU64::new(1),
            series: if config.telemetry_window_ms == 0 {
                Series::disabled()
            } else {
                Series::enabled(
                    config.telemetry_window_ms,
                    llp::obs::series::DEFAULT_CAPACITY,
                )
            },
            drift: Mutex::new(DriftTracker::new(config.drift_config)),
            started: Instant::now(),
            config,
        });

        let event_loop = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                EventLoop::new(shared, listener, wake_rx, completions_rx).run();
            })
        };
        let shard_width = (workers / shards).max(1);
        let executors = (0..shards)
            .map(|_| {
                let shared = Arc::clone(&shared);
                // Each shard slice shares the pool's counters but owns
                // a private recorder and flight recorder: concurrent
                // jobs never interleave spans or timelines, and
                // /metrics pool totals stay exact. Jobs on one shard
                // are serial, so each job drains exactly its own
                // flight events.
                let mut slice = shared.pool.sized_view(shard_width);
                slice.set_recorder(Recorder::enabled());
                slice.set_flight(FlightRecorder::enabled(shard_width, DEFAULT_EVENT_CAPACITY));
                thread::spawn(move || executor_loop(&shared, &slice))
            })
            .collect();

        Ok(Self {
            shared,
            addr,
            event_loop: Some(event_loop),
            executors,
        })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of executor shards actually running.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shared.shards
    }

    /// Total requests rejected with 429 so far.
    #[must_use]
    pub fn rejected_total(&self) -> u64 {
        self.shared.metrics.rejected_total()
    }

    /// Drain and stop: new work is refused with 503, everything already
    /// admitted completes and its response is written, idle keep-alive
    /// connections are closed, then threads are joined.
    pub fn shutdown(self) {
        let _ = self.shutdown_with_telemetry();
    }

    /// [`Server::shutdown`], returning a final telemetry snapshot after
    /// the drain: the open window is force-sealed (so requests served
    /// moments before the drain are visible), every sealed window is
    /// included, and the drift watchdog's state rides along. `llpd`
    /// writes this to `--telemetry-out` (or stderr) on SIGTERM so an
    /// operator keeps the last windows of a dying process.
    pub fn shutdown_with_telemetry(mut self) -> Json {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue_signal.notify_all();
        self.shared.waker.wake();
        for handle in self.executors.drain(..) {
            let _ = handle.join();
        }
        // Executors are done; wake the loop so it delivers the final
        // completions and closes out.
        self.shared.waker.wake();
        if let Some(handle) = self.event_loop.take() {
            let _ = handle.join();
        }
        // Everything is drained; seal the in-progress window by ticking
        // one full window past "now" so the drain snapshot includes it.
        let shared = &self.shared;
        if shared.series.is_enabled() {
            let now_ms = u64::try_from(shared.started.elapsed().as_millis()).unwrap_or(u64::MAX);
            shared
                .series
                .tick(now_ms.saturating_add(shared.config.telemetry_window_ms));
        }
        let windows = shared.series.snapshot(usize::MAX);
        Json::object(vec![
            ("event", Json::str("llpd.drain")),
            ("series", windows),
            ("drift", lock_clean(&shared.drift).to_json()),
            (
                "stale_kernels",
                Json::Array(shared.stale_kernels().into_iter().map(Json::Str).collect()),
            ),
        ])
    }
}

// ------------------------------------------------------------ executors

/// One executor shard: pop admitted jobs and run them on this shard's
/// pool slice until drained.
fn executor_loop(shared: &Arc<Shared>, slice: &Workers) {
    loop {
        let job = {
            let mut queue = lock_clean(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    shared.metrics.set_queue_depth(queue.len());
                    break job;
                }
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared
                    .queue_signal
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        shared.metrics.executor_started();
        if let Some(gate) = &shared.config.job_gate {
            // Test hook: block here while a test holds the gate.
            drop(lock_clean(gate));
        }
        let completions = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_job(shared, slice, &job)
        })) {
            Ok(completions) => completions,
            Err(_) => {
                // A panicking job (solver bug — inputs were validated at
                // admission) must not take the shard down with it. The
                // recorder may hold a half-built span stack and the
                // flight rings partial events; reset and drain so the
                // next job's report and timeline are exactly its own.
                // Every parked waiter gets the 500 and the in-flight
                // entry is removed, so the next identical request
                // executes instead of parking on a dead entry.
                shared.metrics.executor_panicked();
                slice.recorder().reset();
                let _ = slice.flight().take_timeline();
                fail_job(
                    shared,
                    &job.origin,
                    &Response::error(500, "internal error: job panicked"),
                )
            }
        };
        shared.metrics.executor_finished();
        shared.drain_rate.record_completion();
        for completion in completions {
            // The event loop may already be gone at hard teardown.
            shared.completions.send(completion).ok();
        }
        shared.waker.wake();
    }
}

/// Everyone waiting on this job. For keyed solves this *removes* the
/// in-flight entry — from that point a new identical request starts a
/// fresh execution (or hits the cache, if the result landed there).
fn take_waiters(shared: &Arc<Shared>, origin: &JobOrigin) -> Vec<Waiter> {
    match origin {
        JobOrigin::Direct(waiter) => vec![*waiter],
        JobOrigin::Keyed(key) => lock_clean(&shared.inflight)
            .remove(key.canonical())
            .unwrap_or_default(),
    }
}

fn fail_job(shared: &Arc<Shared>, origin: &JobOrigin, response: &Response) -> Vec<Completion> {
    take_waiters(shared, origin)
        .into_iter()
        .map(|waiter| Completion {
            waiter,
            response: response.clone(),
        })
        .collect()
}

/// Retain the run's flight trace (attribution + Chrome documents) and
/// return the id the response advertises. Each waiter of a coalesced
/// fan-out gets its *own* trace entry and id: the documents describe
/// the one shared execution, but every client can fetch and correlate
/// independently.
fn retain_trace(shared: &Arc<Shared>, run: &AnyRun) -> Option<u64> {
    if run.timeline().is_empty() {
        return None;
    }
    let id = shared.traces.allocate_id();
    let (attribution, chrome) = api::trace_documents(run, id);
    shared.traces.insert(TraceEntry {
        id,
        case: run.label(),
        attribution,
        chrome,
    });
    Some(id)
}

/// Feed one completed solve into the windowed telemetry series and the
/// drift watchdog. Gated on the series being enabled, so a server with
/// telemetry off pays nothing — not even the attribution derivation.
fn observe_solve(shared: &Arc<Shared>, run: &AnyRun, auto: bool, db: Option<&TuneDb>) {
    if !shared.series.is_enabled() {
        return;
    }
    let attr = AttributionReport::from_timeline(run.timeline());
    let overheads = kernel_overheads(run.report(), &attr);
    let check = attr.model_check();
    for k in &overheads {
        shared
            .metrics
            .kernel_seconds(&k.kernel, k.wall_ns as f64 / 1e9);
    }
    let total_seconds = run.report().total_seconds();
    shared.series.record_solve(
        total_seconds,
        check.as_ref().map(|c| c.measured_fraction),
        || {
            // A per-solver pseudo-kernel rides along with the real
            // kernel rows, so /v1/stats windows carry one series per
            // physics without a schema change.
            let mut rows: Vec<(String, f64)> = overheads
                .iter()
                .map(|k| (k.kernel.clone(), k.wall_ns as f64 / 1e9))
                .collect();
            rows.push((format!("solver/{}", run.kind()), total_seconds));
            rows
        },
    );
    if let AnyRun::F3d(r) = run {
        if let Some(stats) = &r.zone_stats {
            shared
                .series
                .record_zone_job(stats.zone_tasks * r.case.steps as u64);
        }
    }
    let mut drift = lock_clean(&shared.drift);
    // Score each tuned kernel's live cost against the analytic form the
    // calibration trusted. Only `auto` solves run the tuned
    // configurations, so only they can indict a tune entry.
    if auto {
        if let Some(db) = db {
            for k in &overheads {
                let Some(entry) = db.entries.iter().find(|e| e.kernel == k.kernel) else {
                    continue;
                };
                if k.regions == 0 {
                    continue;
                }
                let u = k.iterations as f64 / k.regions as f64;
                let expected = expected_cost_ns(
                    k.compute_ns as f64,
                    u,
                    entry.workers,
                    k.regions,
                    db.sync_cost_ns,
                );
                drift.observe(&k.kernel, &entry.config_label(), k.wall_ns as f64, expected);
            }
        }
    }
    // The pool-wide sync fraction is scored as a pseudo-kernel: it maps
    // to no tune entry (so it can never flag one) but its EWMA shows up
    // in /v1/health as an overall model-health signal.
    if let Some(check) = &check {
        drift.observe(
            "sync_fraction",
            "pool",
            check.measured_fraction,
            check.modeled_fraction,
        );
    }
}

fn execute_job(shared: &Arc<Shared>, slice: &Workers, job: &Job) -> Vec<Completion> {
    if let Some(fault) = &shared.config.job_fault {
        assert!(
            !fault.load(Ordering::SeqCst),
            "injected job fault (test hook)"
        );
    }
    match &job.kind {
        JobKind::Solve { case, auto } => {
            let view = slice.sized_view(case.workers());
            // "auto": overlay the solver's tune database's per-kernel
            // configurations. The schedules only reorder work within
            // each doacross region, so results stay bit-exact with the
            // default path — the overlay changes cost, never answers.
            let db = if *auto { shared.tune_db(case.kind()) } else { None };
            let map = db.as_ref().map(|d| d.schedule_map());
            // Tuned per-kernel widths overlay the case-level width the
            // same way tuned schedules overlay the case-level policy:
            // both change only the performance shape, never the answer.
            let widths = db.as_ref().map(|d| d.width_map());
            let tuned = if *auto {
                api::tuned_resolution(db.as_deref())
            } else {
                llp::obs::json::Json::Null
            };
            let outcome = match case {
                AnyCase::F3d(c) => {
                    f3d::service::run_tuned(c, &view, map.as_ref(), widths.as_ref())
                        .map(AnyRun::F3d)
                }
                AnyCase::Fdtd(c) => {
                    fdtd::service::run_tuned(c, &view, map.as_ref(), widths.as_ref())
                        .map(AnyRun::Fdtd)
                }
            };
            match outcome {
                Ok(run) => {
                    shared
                        .metrics
                        .job_done(run.sync_events(), run.report().total_seconds());
                    shared.metrics.solve_solver(run.kind());
                    shared.metrics.solve_width(case.vector_width());
                    shared.metrics.solve_schedule(if *auto {
                        "auto"
                    } else {
                        case.schedule().name()
                    });
                    if let AnyRun::F3d(r) = &run {
                        if let Some(stats) = &r.zone_stats {
                            shared.metrics.zone_job(
                                stats.shards as u64,
                                stats.zone_tasks * r.case.steps as u64,
                                stats.peak_ready,
                            );
                        }
                    }
                    observe_solve(shared, &run, *auto, db.as_deref());
                    let render = |trace_id: Option<u64>, tuned: Json, cache: &str| match &run {
                        AnyRun::F3d(r) => api::solve_response(r, trace_id, tuned, cache),
                        AnyRun::Fdtd(r) => api::fdtd_solve_response(r, trace_id, tuned, cache),
                    };
                    match &job.origin {
                        JobOrigin::Direct(waiter) => {
                            let trace_id = retain_trace(shared, &run);
                            let body = render(trace_id, tuned, "bypass");
                            vec![Completion {
                                waiter: *waiter,
                                response: Response::ok(body.to_string()).with_trace_id(trace_id),
                            }]
                        }
                        JobOrigin::Keyed(key) => {
                            // Cache first, then take the waiters: a new
                            // identical request arriving in between hits
                            // the cache instead of duplicating work.
                            // The cached body is rendered with a null
                            // trace_id and a "hit" marker — a hit serves
                            // no fresh trace.
                            let cached = render(None, tuned.clone(), "hit");
                            let evicted = shared.cache.insert(key, Arc::new(cached.to_string()));
                            shared
                                .metrics
                                .cache_evicted(evicted as u64, shared.cache.len());
                            take_waiters(shared, &job.origin)
                                .into_iter()
                                .map(|waiter| {
                                    let trace_id = retain_trace(shared, &run);
                                    let body = render(trace_id, tuned.clone(), "miss");
                                    Completion {
                                        waiter,
                                        response: Response::ok(body.to_string())
                                            .with_trace_id(trace_id),
                                    }
                                })
                                .collect()
                        }
                    }
                }
                // Validation happened at admission; anything left is an
                // internal fault.
                Err(msg) => fail_job(shared, &job.origin, &Response::error(500, &msg)),
            }
        }
        JobKind::Advise(query) => {
            shared.metrics.job_executed();
            // Measured tune-db entries overlay the analytic advice —
            // the response reports both and their (dis)agreement. The
            // advisor speaks the f3d kernel vocabulary.
            let measured = shared
                .tune_db("f3d")
                .map_or_else(Vec::new, |db| db.measured_choices());
            let advice = query
                .advisor
                .advise_with_measured(&query.reports, &measured);
            let zone_level = query.zones.map_or(llp::obs::json::Json::Null, |zones| {
                api::zone_level_advice(zones, &query.reports, &query.advisor)
            });
            let response = Response::ok(api::advise_response(&advice, zone_level).to_string());
            take_waiters(shared, &job.origin)
                .into_iter()
                .map(|waiter| Completion {
                    waiter,
                    response: response.clone(),
                })
                .collect()
        }
    }
}

// ----------------------------------------------------------- event loop

/// A request parked on its connection while an executor computes.
struct PendingReq {
    token: u64,
    deadline: Instant,
    started: Instant,
    req_id: u64,
    keep_alive: bool,
    method: String,
    path: String,
}

struct ConnState {
    conn: Conn,
    pending: Option<PendingReq>,
    idle_since: Instant,
}

/// What `route` decided: answer now, or queue a job.
enum RouteOutcome {
    Inline(Response),
    Submit(JobKind, /* bypass: */ bool),
}

struct EventLoop {
    shared: Arc<Shared>,
    listener: TcpListener,
    wake_rx: WakeReceiver,
    completions: mpsc::Receiver<Completion>,
    conns: HashMap<u64, ConnState>,
    next_conn_id: u64,
    next_token: u64,
    /// Read-buffer cap: any legal request (head + declared body) fits,
    /// with one read chunk of slack for pipelined follow-ups.
    read_cap: usize,
    /// Idle connections (including half-sent requests) are closed after
    /// this long; parked requests are governed by the job deadline
    /// instead.
    io_timeout: Duration,
}

impl EventLoop {
    fn new(
        shared: Arc<Shared>,
        listener: TcpListener,
        wake_rx: WakeReceiver,
        completions: mpsc::Receiver<Completion>,
    ) -> Self {
        let read_cap = MAX_HEAD_BYTES + shared.config.max_body_bytes + 4096;
        let io_timeout = shared.config.deadline + Duration::from_secs(5);
        Self {
            shared,
            listener,
            wake_rx,
            completions,
            conns: HashMap::new(),
            next_conn_id: 1,
            next_token: 1,
            read_cap,
            io_timeout,
        }
    }

    fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    fn run(&mut self) {
        loop {
            if self.draining() {
                self.close_idle_for_drain();
                if self.conns.is_empty() {
                    return;
                }
            }
            // Build the poll set: listener (unless draining or at the
            // connection cap), the waker, and every connection with an
            // interest. A connection waiting on a job or holding a
            // full read buffer registers nothing — that is the
            // backpressure: its socket simply stops being read.
            let mut fds = Vec::with_capacity(self.conns.len() + 2);
            let listener_slot = if !self.draining() && self.conns.len() < MAX_CONNECTIONS {
                fds.push(PollFd::new(evloop::raw_fd(&self.listener), POLLIN));
                Some(0)
            } else {
                None
            };
            let wake_slot = fds.len();
            fds.push(PollFd::new(self.wake_rx.fd(), POLLIN));
            let mut conn_slots: Vec<(usize, u64)> = Vec::new();
            for (&id, state) in &self.conns {
                let mut events: i16 = 0;
                if state.conn.has_pending_write() {
                    events |= POLLOUT;
                } else if state.pending.is_none()
                    && !state.conn.close_after_write
                    && state.conn.read_buf.len() < self.read_cap
                {
                    events |= POLLIN;
                }
                if events != 0 {
                    conn_slots.push((fds.len(), id));
                    fds.push(PollFd::new(state.conn.fd(), events));
                }
            }
            if evloop::wait(&mut fds, POLL_TICK_MS).is_err() {
                // poll(2) itself failing is unrecoverable enough that
                // spinning would only burn a core; nap instead.
                thread::sleep(Duration::from_millis(POLL_TICK_MS as u64));
            }
            if fds[wake_slot].ready(POLLIN) {
                self.wake_rx.drain();
            }
            self.deliver_completions();
            if let Some(slot) = listener_slot {
                if fds[slot].ready(POLLIN) {
                    self.accept_ready();
                }
            }
            for (slot, id) in conn_slots {
                let revents = fds[slot];
                self.service_conn(id, revents);
            }
            self.expire_deadlines();
            self.sweep_idle();
            self.tick_telemetry();
        }
    }

    /// Advance the telemetry clock on the poll tick: seal windows that
    /// have elapsed, advance the drift watchdog once per sealed window,
    /// and reconcile the tune database's stale flags with the
    /// watchdog's verdict.
    fn tick_telemetry(&mut self) {
        if !self.shared.series.is_enabled() {
            return;
        }
        let now_ms = u64::try_from(self.shared.started.elapsed().as_millis()).unwrap_or(u64::MAX);
        let sealed = self.shared.series.tick(now_ms);
        if sealed == 0 {
            return;
        }
        {
            let mut drift = lock_clean(&self.shared.drift);
            // One drift window per sealed telemetry window; a long poll
            // stall seals many at once, and each empty window freezes
            // (not resets) streaks, so iterating is cheap and correct.
            // Cap defensively against clock jumps.
            for _ in 0..sealed.min(128) {
                drift.end_window();
            }
        }
        // Reconcile staleness wholesale — flagging and healing both —
        // across every solver's database (kernel vocabularies are
        // disjoint, so one verdict list serves all slots), and
        // clone-and-swap a shared database only when a flag actually
        // moved. The tune *generation* is untouched: staleness never
        // changes answers, so cached solves stay valid.
        let verdict = lock_clean(&self.shared.drift).stale_kernels();
        let mut guard = lock_clean(&self.shared.tune.db);
        let any_db = !guard.is_empty();
        let mut stale_count = 0;
        for slot in guard.values_mut() {
            let mut next = (**slot).clone();
            let mut changed = false;
            for kernel in next
                .entries
                .iter()
                .map(|e| e.kernel.clone())
                .collect::<Vec<_>>()
            {
                let stale = verdict.iter().any(|k| k == &kernel);
                changed |= next.set_stale(&kernel, stale);
            }
            if changed {
                *slot = Arc::new(next);
            }
            stale_count += slot.stale_kernels().len();
        }
        drop(guard);
        if any_db {
            self.shared.metrics.set_tune_entries_stale(stale_count);
        }
    }

    fn alloc_token(&mut self) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        token
    }

    fn close(&mut self, id: u64) {
        if self.conns.remove(&id).is_some() {
            self.shared.metrics.connection_closed();
        }
    }

    /// Drain phase: hang up every connection with nothing in flight.
    fn close_idle_for_drain(&mut self) {
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, s)| s.pending.is_none() && !s.conn.has_pending_write())
            .map(|(&id, _)| id)
            .collect();
        for id in idle {
            self.close(id);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            if self.conns.len() >= MAX_CONNECTIONS {
                return;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.shared.metrics.connection_opened();
                    match Conn::new(stream) {
                        Ok(conn) => {
                            let id = self.next_conn_id;
                            self.next_conn_id += 1;
                            self.conns.insert(
                                id,
                                ConnState {
                                    conn,
                                    pending: None,
                                    idle_since: Instant::now(),
                                },
                            );
                        }
                        Err(_) => self.shared.metrics.connection_closed(),
                    }
                }
                Err(_) => return,
            }
        }
    }

    fn service_conn(&mut self, id: u64, revents: PollFd) {
        if revents.ready(POLLOUT) {
            let Some(state) = self.conns.get_mut(&id) else {
                return;
            };
            if state.conn.has_pending_write() {
                match state.conn.flush_some() {
                    Ok(true) => {
                        if state.conn.close_after_write {
                            self.close(id);
                            return;
                        }
                        state.idle_since = Instant::now();
                        // The response is out; a pipelined request may
                        // already be buffered.
                        self.try_advance(id);
                    }
                    Ok(false) => {}
                    Err(_) => {
                        self.close(id);
                        return;
                    }
                }
            }
        }
        if revents.ready(POLLIN) {
            let Some(state) = self.conns.get_mut(&id) else {
                return;
            };
            // Guard re-checked here: the fallback `wait` marks every
            // registered descriptor ready, and a POLLOUT registration
            // may coincide with error/hangup bits.
            if state.pending.is_some()
                || state.conn.close_after_write
                || state.conn.has_pending_write()
            {
                return;
            }
            match state.conn.read_some(self.read_cap) {
                ReadOutcome::Progress => {
                    state.idle_since = Instant::now();
                    self.try_advance(id);
                }
                ReadOutcome::Idle => {}
                ReadOutcome::Eof => {
                    if state.conn.read_buf.is_empty() {
                        // Orderly keep-alive hangup between requests.
                        self.close(id);
                    } else {
                        // The peer quit mid-request: same answer the
                        // one-shot parser gave on a truncated stream.
                        self.shared.metrics.request("other");
                        let response = Response::error(400, "connection closed mid-request");
                        self.finish_request(id, response, false, Instant::now(), None);
                    }
                }
                ReadOutcome::Failed => self.close(id),
            }
        }
    }

    /// Parse-and-dispatch loop: frame as many buffered requests as the
    /// connection's serial-response discipline allows (one response
    /// must fully flush before the next request is considered).
    fn try_advance(&mut self, id: u64) {
        loop {
            let Some(state) = self.conns.get_mut(&id) else {
                return;
            };
            if state.pending.is_some()
                || state.conn.has_pending_write()
                || state.conn.close_after_write
            {
                return;
            }
            if state.conn.read_buf.is_empty() {
                return;
            }
            match parse_request_bytes(&state.conn.read_buf, self.shared.config.max_body_bytes) {
                Ok(Parse::Partial) => return,
                Err(e) => {
                    // Framing failure: answer and close, exactly like
                    // the one-shot path did.
                    self.shared.metrics.request("other");
                    let response = Response::error(e.status, &e.message);
                    self.finish_request(id, response, false, Instant::now(), None);
                    return;
                }
                Ok(Parse::Complete(request, consumed)) => {
                    state.conn.consume(consumed);
                    let started = Instant::now();
                    self.handle_request(id, request, started);
                }
            }
        }
    }

    fn handle_request(&mut self, id: u64, request: Request, started: Instant) {
        let req_id = self.shared.request_seq.fetch_add(1, Ordering::Relaxed);
        let log = Some((req_id, request.method.clone(), request.path.clone()));
        match route(&request, &self.shared) {
            RouteOutcome::Inline(response) => {
                self.finish_request(id, response, request.keep_alive, started, log);
            }
            RouteOutcome::Submit(kind, bypass) => {
                self.admit(id, &request, kind, bypass, started, req_id);
            }
        }
    }

    /// `Retry-After` for a rejection: the event loop's actual queue
    /// depth at rejection time plus every job currently executing is
    /// ahead of the client, whatever number of keep-alive connections
    /// those jobs arrived on.
    fn retry_after(&self, queued: usize) -> u64 {
        let ahead = queued + self.shared.metrics.executors_busy() as usize;
        self.shared.drain_rate.retry_after_secs(ahead)
    }

    /// Admission control for pool-backed work: cache lookup, coalesce,
    /// or enqueue — then park the requester on its connection.
    fn admit(
        &mut self,
        id: u64,
        request: &Request,
        kind: JobKind,
        bypass: bool,
        started: Instant,
        req_id: u64,
    ) {
        let log = Some((req_id, request.method.clone(), request.path.clone()));
        if self.draining() {
            let queued = lock_clean(&self.shared.queue).len();
            let response =
                Response::error(503, "shutting down").with_retry_after(self.retry_after(queued));
            self.finish_request(id, response, request.keep_alive, started, log);
            return;
        }
        // Memory-budget admission control: an over-budget solve is
        // refused with 413 before it can touch the cache, coalesce, or
        // occupy a queue slot — bypass solves included. The estimate is
        // the solver's own formula over the validated case, so the
        // check costs arithmetic, never pool work.
        if let JobKind::Solve { case, .. } = &kind {
            if let Some(budget) = self.shared.config.memory_budget {
                let estimated = case.memory_usage_estimate();
                if estimated > budget {
                    self.shared.metrics.solve_rejected_memory();
                    let body = Json::object(vec![
                        (
                            "error",
                            Json::str("estimated solve memory exceeds the server budget"),
                        ),
                        ("estimated_bytes", Json::from_u64(estimated)),
                        ("budget_bytes", Json::from_u64(budget)),
                    ]);
                    let response = Response {
                        status: 413,
                        body: body.to_string(),
                        content_type: "application/json",
                        retry_after: None,
                        trace_id: None,
                    };
                    self.finish_request(id, response, request.keep_alive, started, log);
                    return;
                }
            }
        }
        let origin = match &kind {
            JobKind::Solve { case, auto } if !bypass => {
                let generation = self.shared.tune.generation.load(Ordering::SeqCst);
                let key = ContentKey::for_case(case, *auto, generation);
                if let Some(body) = self.shared.cache.get(&key) {
                    self.shared.metrics.cache_hit();
                    self.shared.series.record_cache(true);
                    let response = Response::ok((*body).clone());
                    self.finish_request(id, response, request.keep_alive, started, log);
                    return;
                }
                let token = self.alloc_token();
                let waiter = Waiter { conn: id, token };
                // Coalesce: if an identical solve is queued or
                // executing, park on its in-flight entry. The executor
                // removes entries under this same lock, so a join
                // cannot race a fan-out.
                let mut inflight = lock_clean(&self.shared.inflight);
                if let Some(waiters) = inflight.get_mut(key.canonical()) {
                    waiters.push(waiter);
                    drop(inflight);
                    self.shared.metrics.cache_coalesced();
                    self.park(id, token, request, started, req_id);
                    return;
                }
                // Fresh execution: reserve the in-flight entry and
                // enqueue while holding the inflight lock (lock order
                // inflight → queue; the executors take them singly).
                let mut queue = lock_clean(&self.shared.queue);
                self.shared.metrics.observe_queue_depth(queue.len());
                if queue.len() >= self.shared.config.queue_capacity {
                    let queued = queue.len();
                    drop(queue);
                    drop(inflight);
                    let response = Response::error(429, "queue full")
                        .with_retry_after(self.retry_after(queued));
                    self.finish_request(id, response, request.keep_alive, started, log);
                    return;
                }
                inflight.insert(key.canonical().to_string(), vec![waiter]);
                self.shared.metrics.cache_miss();
                self.shared.series.record_cache(false);
                queue.push_back(Job {
                    kind,
                    origin: JobOrigin::Keyed(key),
                });
                self.shared.metrics.set_queue_depth(queue.len());
                drop(queue);
                drop(inflight);
                self.shared.queue_signal.notify_one();
                self.park(id, token, request, started, req_id);
                return;
            }
            JobKind::Solve { .. } => {
                self.shared.metrics.cache_bypass();
                JobOrigin::Direct(Waiter {
                    conn: id,
                    token: self.alloc_token(),
                })
            }
            JobKind::Advise(_) => JobOrigin::Direct(Waiter {
                conn: id,
                token: self.alloc_token(),
            }),
        };
        // Direct path (advise, bypass solves): plain bounded-queue
        // admission.
        let JobOrigin::Direct(waiter) = origin else {
            unreachable!("keyed admissions return above");
        };
        let mut queue = lock_clean(&self.shared.queue);
        self.shared.metrics.observe_queue_depth(queue.len());
        if queue.len() >= self.shared.config.queue_capacity {
            let queued = queue.len();
            drop(queue);
            let response =
                Response::error(429, "queue full").with_retry_after(self.retry_after(queued));
            self.finish_request(id, response, request.keep_alive, started, log);
            return;
        }
        queue.push_back(Job {
            kind,
            origin: JobOrigin::Direct(waiter),
        });
        self.shared.metrics.set_queue_depth(queue.len());
        drop(queue);
        self.shared.queue_signal.notify_one();
        self.park(id, waiter.token, request, started, req_id);
    }

    fn park(&mut self, id: u64, token: u64, request: &Request, started: Instant, req_id: u64) {
        if let Some(state) = self.conns.get_mut(&id) {
            state.pending = Some(PendingReq {
                token,
                deadline: started + self.shared.config.deadline,
                started,
                req_id,
                keep_alive: request.keep_alive,
                method: request.method.clone(),
                path: request.path.clone(),
            });
        }
    }

    /// Queue a response on the connection, log it, and opportunistically
    /// flush. `log` is `(req_id, method, path)` — `None` for framing
    /// errors that never had a routed request.
    fn finish_request(
        &mut self,
        id: u64,
        response: Response,
        keep_alive: bool,
        started: Instant,
        log: Option<(u64, String, String)>,
    ) {
        let status = response.status;
        let elapsed_ms = started.elapsed().as_secs_f64() * 1_000.0;
        self.shared.metrics.response(status);
        self.shared.metrics.observe_latency_ms(elapsed_ms);
        self.shared.series.record_request(status, elapsed_ms);
        // Structured NDJSON access line: parse/queue/compute end to
        // end, one JSON object per request (gated by LLPD_LOG).
        let (req_id, method, path) = log.unwrap_or_else(|| {
            (
                self.shared.request_seq.fetch_add(1, Ordering::Relaxed),
                "-".to_string(),
                "-".to_string(),
            )
        });
        crate::log::access(
            req_id,
            &method,
            &path,
            status,
            elapsed_ms,
            response.trace_id,
        );
        let keep = keep_alive && !self.draining();
        let Some(state) = self.conns.get_mut(&id) else {
            return;
        };
        state.conn.queue_write(&render_response(&response, keep));
        state.conn.close_after_write = !keep;
        state.idle_since = Instant::now();
        match state.conn.flush_some() {
            Ok(true) => {
                if state.conn.close_after_write {
                    self.close(id);
                }
            }
            Ok(false) => {}
            Err(_) => self.close(id),
        }
    }

    fn deliver_completions(&mut self) {
        while let Ok(Completion { waiter, response }) = self.completions.try_recv() {
            let Some(state) = self.conns.get_mut(&waiter.conn) else {
                continue; // requester hung up
            };
            let stale = state
                .pending
                .as_ref()
                .is_none_or(|p| p.token != waiter.token);
            if stale {
                continue; // requester hit its deadline; drop the reply
            }
            let p = state.pending.take().expect("matched above");
            self.finish_request(
                waiter.conn,
                response,
                p.keep_alive,
                p.started,
                Some((p.req_id, p.method, p.path)),
            );
            // A pipelined follow-up may already be buffered.
            self.try_advance(waiter.conn);
        }
    }

    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, s)| s.pending.as_ref().is_some_and(|p| p.deadline <= now))
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            let Some(state) = self.conns.get_mut(&id) else {
                continue;
            };
            let Some(p) = state.pending.take() else {
                continue;
            };
            self.shared.metrics.timeout();
            let queued = lock_clean(&self.shared.queue).len();
            let response = Response::error(503, "deadline exceeded")
                .with_retry_after(self.retry_after(queued));
            self.finish_request(
                id,
                response,
                p.keep_alive,
                p.started,
                Some((p.req_id, p.method, p.path)),
            );
        }
    }

    /// Close connections that have sat silent too long: a half-sent
    /// request gets the same 408 the blocking read timeout produced,
    /// an idle keep-alive connection is just hung up.
    fn sweep_idle(&mut self) {
        let now = Instant::now();
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, s)| {
                s.pending.is_none()
                    && !s.conn.has_pending_write()
                    && now.duration_since(s.idle_since) > self.io_timeout
            })
            .map(|(&id, _)| id)
            .collect();
        for id in idle {
            let has_partial = self
                .conns
                .get(&id)
                .is_some_and(|s| !s.conn.read_buf.is_empty());
            if has_partial {
                self.shared.metrics.request("other");
                let response = Response::error(408, "timed out reading request");
                self.finish_request(id, response, false, Instant::now(), None);
            } else {
                self.close(id);
            }
        }
    }
}

// -------------------------------------------------------------- routing

/// Resolve the `?solver=` query on `GET /v1/tune` to a registered
/// solver kind; an empty query means the `f3d` default.
fn tune_query_solver(query: &str) -> Result<&'static str, String> {
    if query.is_empty() {
        return Ok(KINDS[0]);
    }
    let Some(kind) = query.strip_prefix("solver=") else {
        return Err(format!("unknown query `{query}` (use ?solver=<kind>)"));
    };
    KINDS
        .iter()
        .find(|k| **k == kind)
        .copied()
        .ok_or_else(|| format!("unknown solver `{kind}`; known solvers: {}", KINDS.join(", ")))
}

fn route(request: &Request, shared: &Arc<Shared>) -> RouteOutcome {
    let (endpoint, expect_post) = match request.path.as_str() {
        "/metrics" => ("metrics", false),
        "/v1/health" => ("health", false),
        "/v1/stats" => ("stats", false),
        "/v1/solve" => ("solve", true),
        "/v1/advise" => ("advise", true),
        // /v1/tune speaks both verbs: POST starts a calibration, GET
        // polls its status. Expecting whichever of the two arrived
        // still rejects every other method with 405.
        "/v1/tune" => ("tune", request.method == "POST"),
        p if p.starts_with("/v1/model/") => ("model", false),
        p if p.starts_with("/v1/trace/") => ("trace", false),
        _ => ("other", false),
    };
    shared.metrics.request(endpoint);
    if endpoint == "other" {
        return RouteOutcome::Inline(Response::error(
            404,
            &format!("no route for {}", request.path),
        ));
    }
    let expected = if expect_post { "POST" } else { "GET" };
    if request.method != expected {
        return RouteOutcome::Inline(Response::error(
            405,
            &format!("{} requires {expected}", request.path),
        ));
    }

    match endpoint {
        "metrics" => RouteOutcome::Inline(metrics_response(request, shared)),
        "health" => RouteOutcome::Inline(health_response(shared)),
        "stats" => RouteOutcome::Inline(match api::parse_stats_query(&request.query) {
            Err(msg) => Response::error(400, &msg),
            Ok(windows) => Response::ok(
                api::stats_response(shared.series.snapshot(windows), shared.series.is_enabled())
                    .to_string(),
            ),
        }),
        "model" => {
            let kind = &request.path["/v1/model/".len()..];
            RouteOutcome::Inline(match api::model_response(kind, &request.query) {
                Ok(json) => Response::ok(json.to_string()),
                Err(msg) => Response::error(400, &msg),
            })
        }
        "trace" => {
            let raw = &request.path["/v1/trace/".len()..];
            RouteOutcome::Inline(match raw.parse::<u64>() {
                Err(_) => Response::error(400, "trace id must be a non-negative integer"),
                Ok(id) => match shared.traces.get(id) {
                    None => {
                        Response::error(404, &format!("no trace {id} (evicted or never existed)"))
                    }
                    Some(entry) => match request.query.as_str() {
                        "" => Response::ok(entry.attribution.to_string()),
                        "trace=chrome" => Response::ok(entry.chrome.to_string()),
                        other => Response::error(
                            400,
                            &format!("unknown query `{other}` (use ?trace=chrome)"),
                        ),
                    },
                },
            })
        }
        "solve" => {
            let default_workers = shared.pool.processors().min(MAX_WORKERS);
            match api::parse_solve_body(&request.body, default_workers) {
                Ok(req) => RouteOutcome::Submit(
                    JobKind::Solve {
                        case: req.case,
                        auto: req.auto,
                    },
                    req.bypass,
                ),
                Err(msg) => RouteOutcome::Inline(Response::error(400, &msg)),
            }
        }
        "tune" => RouteOutcome::Inline(if request.method == "GET" {
            match tune_query_solver(&request.query) {
                Err(msg) => Response::error(400, &msg),
                Ok(solver) => {
                    let db = shared.tune_db(solver);
                    let status = if shared.tune.running.load(Ordering::SeqCst) {
                        "calibrating"
                    } else if db.is_some() {
                        "ready"
                    } else {
                        "idle"
                    };
                    Response::ok(api::tune_status_response(solver, status, db.as_deref()).to_string())
                }
            }
        } else {
            start_calibration(shared, &request.body)
        }),
        "advise" => match api::parse_advise_body(&request.body) {
            Ok(query) => RouteOutcome::Submit(JobKind::Advise(Box::new(query)), false),
            Err(msg) => RouteOutcome::Inline(Response::error(400, &msg)),
        },
        // The match above covers every routed endpoint; answer a clean
        // 500 rather than panicking the event loop if routing and
        // dispatch ever drift apart.
        _ => RouteOutcome::Inline(Response::error(500, "internal error: unroutable endpoint")),
    }
}

/// `GET /metrics`: Prometheus text exposition by default, the JSON
/// form via `?format=json` or an `Accept: application/json` header.
/// `?format=prometheus` forces the text form regardless of `Accept`.
fn metrics_response(request: &Request, shared: &Arc<Shared>) -> Response {
    let json = match request.query.as_str() {
        "format=json" => true,
        "format=prometheus" => false,
        "" => request.accept.contains("application/json"),
        other => {
            return Response::error(
                400,
                &format!("unknown query `{other}` (use ?format=json or ?format=prometheus)"),
            )
        }
    };
    if json {
        Response::ok(
            shared
                .metrics
                .to_json(
                    shared.pool.processors(),
                    shared.shards,
                    shared.pool.sync_event_count(),
                    shared.pool.region_count(),
                )
                .to_string(),
        )
    } else {
        Response::prometheus(shared.metrics.to_prometheus(
            shared.pool.processors(),
            shared.shards,
            shared.pool.sync_event_count(),
            shared.pool.region_count(),
        ))
    }
}

/// `GET /v1/health`: liveness plus the drift watchdog's verdict. The
/// service reports `degraded` (still HTTP 200 — it serves correctly,
/// just possibly slower than tuned) when any tune entry is stale.
fn health_response(shared: &Arc<Shared>) -> Response {
    let stale = shared.stale_kernels();
    let body = api::health_response(
        &stale,
        shared.draining.load(Ordering::SeqCst),
        shared.series.is_enabled(),
        shared.series.windows_sealed(),
        &lock_clean(&shared.drift).to_json(),
    );
    Response::ok(body.to_string())
}

/// `POST /v1/tune`: start a bounded background calibration.
///
/// At most one calibration runs at a time — a second request while one
/// is in flight gets `429`. The calibration runs on a *dedicated*
/// shard-width slice of the pool (its own thread, recorder, and flight
/// rings — `calibrate` instruments its own view), so the executor
/// shards keep serving while it measures. With the `job_gate` test
/// hook installed the calibration honors the gate before starting and
/// selects winners in deterministic (structural) mode, so tests can
/// pin it mid-flight and reproduce its decisions exactly. A completed
/// calibration bumps the tune generation, which invalidates every
/// cached `auto` solve (their content keys embed the generation).
fn start_calibration(shared: &Arc<Shared>, body: &str) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::error(503, "shutting down");
    }
    let req = match api::parse_tune_body(body) {
        Ok(req) => req,
        Err(msg) => return Response::error(400, &msg),
    };
    let spec = CalibrationSpec {
        deterministic: shared.config.job_gate.is_some(),
        ..req.spec
    };
    if shared.tune.running.swap(true, Ordering::SeqCst) {
        return Response::error(429, "calibration already running").with_retry_after(1);
    }
    let started = api::tune_started_response(&req.solver, &spec);
    let solver = req.solver;
    let shared = Arc::clone(shared);
    thread::spawn(move || {
        if let Some(gate) = &shared.config.job_gate {
            drop(lock_clean(gate));
        }
        let width = (shared.pool.processors() / shared.shards).max(1);
        let slice = shared.pool.sized_view(width);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
            || match solver.as_str() {
                "fdtd" => calibrate_fdtd(&slice, &spec),
                _ => calibrate(&slice, &spec),
            },
        ));
        match outcome {
            Ok(Ok(db)) => {
                let mut guard = lock_clean(&shared.tune.db);
                guard.insert(db.solver.clone(), Arc::new(db));
                // Freshly-measured entries are never stale; the other
                // solvers' verdicts carry over untouched.
                let stale: usize = guard.values().map(|d| d.stale_kernels().len()).sum();
                drop(guard);
                shared.tune.generation.fetch_add(1, Ordering::SeqCst);
                // Fresh measurements supersede every drift verdict: the
                // watchdog restarts from scratch against the new entries.
                lock_clean(&shared.drift).reset();
                shared.metrics.set_tune_entries_stale(stale);
            }
            Ok(Err(msg)) => eprintln!("llpd: calibration failed: {msg}"),
            Err(_) => eprintln!("llpd: calibration panicked"),
        }
        shared.tune.running.store(false, Ordering::SeqCst);
    });
    Response::ok(started.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_resolution_clamps_and_defaults() {
        let config = |workers, shards| ServerConfig {
            workers,
            shards,
            ..ServerConfig::default()
        };
        // Explicit counts are honored but clamped to the pool width.
        assert_eq!(config(8, 4).resolved_shards(), 4);
        assert_eq!(config(2, 64).resolved_shards(), 2);
        assert_eq!(config(1, 3).resolved_shards(), 1);
        // Auto: one shard per DEFAULT_SHARD_WIDTH workers, at least 1.
        // (LLPD_SHARDS is not set in the test environment.)
        assert_eq!(config(8, 0).resolved_shards(), 4);
        assert_eq!(config(1, 0).resolved_shards(), 1);
    }

    #[test]
    fn drain_estimate_is_monotone_under_a_stall() {
        let t0 = Instant::now();
        let est = DrainEstimator::starting_at(t0);
        // A healthy phase: four jobs completing one second apart.
        for i in 1..=4 {
            est.record_completion_at(t0 + Duration::from_secs(i));
        }
        let healthy = est.retry_after_secs_at(2, t0 + Duration::from_secs(4));
        assert_eq!(healthy, 2, "two jobs ahead at ~1 s/job");
        // Then the executor stalls: no completions, queries drift out.
        let stalled: Vec<u64> = [6u64, 9, 14, 30]
            .iter()
            .map(|&s| est.retry_after_secs_at(2, t0 + Duration::from_secs(s)))
            .collect();
        for pair in stalled.windows(2) {
            assert!(pair[0] <= pair[1], "estimates shrank during a stall");
        }
        assert!(stalled[0] >= healthy);
        // The stall term dominates the stale 1 s/job average.
        assert!(stalled[3] >= 26 * 2 - 1);
    }

    #[test]
    fn drain_estimate_stays_bounded() {
        let t0 = Instant::now();
        let est = DrainEstimator::starting_at(t0);
        // Nothing observed yet: minimum one second.
        assert_eq!(est.retry_after_secs_at(0, t0), 1);
        assert_eq!(est.retry_after_secs_at(100, t0), 1);
        // A very fast drain still answers at least 1.
        est.record_completion_at(t0 + Duration::from_millis(1));
        est.record_completion_at(t0 + Duration::from_millis(2));
        assert_eq!(est.retry_after_secs_at(1, t0 + Duration::from_millis(2)), 1);
        // A deeply stalled backlog is capped.
        assert_eq!(
            est.retry_after_secs_at(50, t0 + Duration::from_secs(10_000)),
            MAX_RETRY_AFTER_SECS as u64
        );
    }

    #[test]
    fn drain_estimate_recovers_after_a_stall() {
        let t0 = Instant::now();
        let est = DrainEstimator::starting_at(t0);
        est.record_completion_at(t0 + Duration::from_secs(30));
        // The long first interval dominates...
        assert!(est.retry_after_secs_at(1, t0 + Duration::from_secs(30)) >= 3);
        // ...until a run of fast completions ages it out of the window.
        let mut t = t0 + Duration::from_secs(30);
        for _ in 0..DRAIN_WINDOW {
            t += Duration::from_millis(100);
            est.record_completion_at(t);
        }
        assert_eq!(est.retry_after_secs_at(1, t), 1);
    }
}
