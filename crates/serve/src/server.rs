//! The `llpd` server: one listener, one shared doacross pool, and a
//! bounded job queue between them.
//!
//! # Architecture
//!
//! Connection threads parse and validate requests, then answer cheap
//! queries (`/metrics`, `/v1/model/*`) inline. Pool-backed work
//! (`/v1/solve`, `/v1/advise`) goes through admission control: a
//! bounded queue in front of a **single executor thread** that owns the
//! shared [`Workers`] pool. One executor is a correctness requirement,
//! not a simplification — the pool's span [`recorder`](Workers::recorder)
//! keeps one span stack, so requests must execute serially for each
//! request's report to contain exactly its own spans. Per-request
//! worker counts come from [`Workers::sized_view`], which shares the
//! pool's counters and recorder while scheduling its own chunk widths.
//!
//! Admission control is deliberate back-pressure, not failure: when the
//! queue is full the service answers `429` with `Retry-After` instead
//! of queueing unboundedly, and each queued request carries a deadline
//! after which its connection gives up with `503` (the executor still
//! finishes the job; the reply is simply dropped).
//!
//! Shutdown is graceful: draining flips first (new work gets `503`),
//! the executor finishes everything already admitted, and the server
//! waits for open connections to flush their responses.

use crate::api;
use crate::http::{read_request, write_response, HttpError, Request, Response};
use crate::metrics::Metrics;
use f3d::service::MAX_WORKERS;
use llp::Workers;
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker count of the shared pool (the maximum any request can
    /// ask for, capped at [`MAX_WORKERS`]).
    pub workers: usize,
    /// Jobs admitted beyond the one executing; the next is rejected
    /// with 429.
    pub queue_capacity: usize,
    /// Per-request deadline covering queue wait plus compute.
    pub deadline: Duration,
    /// Maximum accepted request-body size.
    pub max_body_bytes: usize,
    /// Test hook: when set, the executor locks this mutex after
    /// popping each job and before computing it, so tests can hold the
    /// lock to pin the executor "busy" deterministically.
    pub job_gate: Option<Arc<Mutex<()>>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: llp::default_worker_count().min(MAX_WORKERS),
            queue_capacity: 8,
            deadline: Duration::from_secs(30),
            max_body_bytes: 64 * 1024,
            job_gate: None,
        }
    }
}

enum JobKind {
    Solve(f3d::service::ServiceCase),
    Advise(Box<api::AdviseQuery>),
}

struct Job {
    kind: JobKind,
    reply: mpsc::Sender<Response>,
}

struct Shared {
    metrics: Metrics,
    pool: Workers,
    queue: Mutex<VecDeque<Job>>,
    queue_signal: Condvar,
    draining: AtomicBool,
    config: ServerConfig,
}

/// A running `llpd` instance; dropping it without calling
/// [`Server::shutdown`] leaves its threads running detached.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<thread::JoinHandle<()>>,
    executor: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the accept loop and the pool executor, and return.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn start(config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shared = Arc::new(Shared {
            metrics: Metrics::new(),
            pool: Workers::recorded(config.workers.clamp(1, MAX_WORKERS)),
            queue: Mutex::new(VecDeque::new()),
            queue_signal: Condvar::new(),
            draining: AtomicBool::new(false),
            config,
        });

        let accept = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&listener, &shared))
        };
        let executor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || executor_loop(&shared))
        };

        Ok(Self {
            shared,
            addr,
            accept: Some(accept),
            executor: Some(executor),
        })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total requests rejected with 429 so far.
    #[must_use]
    pub fn rejected_total(&self) -> u64 {
        self.shared.metrics.rejected_total()
    }

    /// Drain and stop: new work is refused with 503, everything already
    /// admitted completes, then threads are joined and open connections
    /// are given a bounded grace period to flush.
    pub fn shutdown(mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue_signal.notify_all();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.executor.take() {
            let _ = handle.join();
        }
        // Executed jobs have replies in flight; give their connection
        // threads a bounded window to write and hang up.
        for _ in 0..500 {
            if self.shared.metrics.open_connections() == 0 {
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                shared.metrics.connection_opened();
                let shared = Arc::clone(shared);
                thread::spawn(move || {
                    handle_connection(stream, &shared);
                    shared.metrics.connection_closed();
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn executor_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    shared.metrics.set_queue_depth(queue.len());
                    break job;
                }
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.queue_signal.wait(queue).expect("queue poisoned");
            }
        };
        shared.metrics.set_executor_busy(true);
        if let Some(gate) = &shared.config.job_gate {
            // Test hook: block here while a test holds the gate.
            drop(gate.lock().expect("gate poisoned"));
        }
        let response = match job.kind {
            JobKind::Solve(case) => {
                let view = shared.pool.sized_view(case.workers);
                match f3d::service::run(&case, &view) {
                    Ok(run) => {
                        shared
                            .metrics
                            .job_done(run.sync_events, run.report.total_seconds());
                        Response::ok(api::solve_response(&run).to_string())
                    }
                    // Validation happened at admission; anything left
                    // is an internal fault.
                    Err(msg) => Response::error(500, &msg),
                }
            }
            JobKind::Advise(query) => {
                shared.metrics.job_executed();
                let advice = query.advisor.advise(&query.reports);
                Response::ok(api::advise_response(&advice).to_string())
            }
        };
        shared.metrics.set_executor_busy(false);
        // The requester may have hit its deadline and gone away.
        job.reply.send(response).ok();
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    // Generous socket timeout: the per-request deadline governs job
    // latency; this only bounds how long a silent peer can pin the
    // thread.
    let io_timeout = shared.config.deadline + Duration::from_secs(5);
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let response = match read_request(&mut reader, shared.config.max_body_bytes) {
        Ok(request) => route(&request, shared),
        Err(HttpError { status, message }) => {
            shared.metrics.request("other");
            Response::error(status, &message)
        }
    };
    shared.metrics.response(response.status);
    let mut stream = stream;
    let _ = write_response(&mut stream, &response);
}

fn route(request: &Request, shared: &Arc<Shared>) -> Response {
    let (endpoint, expect_post) = match request.path.as_str() {
        "/metrics" => ("metrics", false),
        "/v1/solve" => ("solve", true),
        "/v1/advise" => ("advise", true),
        p if p.starts_with("/v1/model/") => ("model", false),
        _ => ("other", false),
    };
    shared.metrics.request(endpoint);
    if endpoint == "other" {
        return Response::error(404, &format!("no route for {}", request.path));
    }
    let expected = if expect_post { "POST" } else { "GET" };
    if request.method != expected {
        return Response::error(405, &format!("{} requires {expected}", request.path));
    }

    match endpoint {
        "metrics" => Response::ok(
            shared
                .metrics
                .to_json(
                    shared.pool.processors(),
                    shared.pool.sync_event_count(),
                    shared.pool.region_count(),
                )
                .to_string(),
        ),
        "model" => {
            let kind = &request.path["/v1/model/".len()..];
            match api::model_response(kind, &request.query) {
                Ok(json) => Response::ok(json.to_string()),
                Err(msg) => Response::error(400, &msg),
            }
        }
        "solve" => {
            let default_workers = shared.pool.processors().min(MAX_WORKERS);
            match api::parse_solve_body(&request.body, default_workers) {
                Ok(case) => submit(shared, JobKind::Solve(case)),
                Err(msg) => Response::error(400, &msg),
            }
        }
        "advise" => match api::parse_advise_body(&request.body) {
            Ok(query) => submit(shared, JobKind::Advise(Box::new(query))),
            Err(msg) => Response::error(400, &msg),
        },
        _ => unreachable!("endpoint matched above"),
    }
}

/// Admission control: enqueue a validated job and wait for its reply
/// until the deadline.
fn submit(shared: &Arc<Shared>, kind: JobKind) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::error(503, "shutting down").with_retry_after(1);
    }
    let (reply, receiver) = mpsc::channel();
    {
        let mut queue = shared.queue.lock().expect("queue poisoned");
        if queue.len() >= shared.config.queue_capacity {
            drop(queue);
            return Response::error(429, "queue full").with_retry_after(1);
        }
        queue.push_back(Job { kind, reply });
        shared.metrics.set_queue_depth(queue.len());
    }
    shared.queue_signal.notify_one();
    match receiver.recv_timeout(shared.config.deadline) {
        Ok(response) => response,
        Err(_) => {
            shared.metrics.timeout();
            Response::error(503, "deadline exceeded").with_retry_after(1)
        }
    }
}
