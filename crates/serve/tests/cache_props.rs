//! Property tests for solve-request canonicalization.
//!
//! The content-addressed cache is only sound if the key function is
//! both *stable* (every syntactic spelling of the same solve maps to
//! one key — JSON key order, whitespace, explicit-vs-default fields)
//! and *injective over semantics* (any change to what would actually
//! execute maps to a different key). Both directions are exercised
//! here through the real request parser, exactly the path the server's
//! admission control takes, plus one golden digest pin so the key
//! format cannot drift silently.

use proptest::prelude::*;
use serve::api::parse_solve_body;
use serve::cache::ContentKey;

const DEFAULT_WORKERS: usize = 4;

/// The semantic content of a solve request, small enough to enumerate
/// mutations over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fields {
    zones: usize,
    steps: usize,
    workers: usize,
    /// 0 = static, 1 = dynamic, 2 = guided, 3 = auto.
    schedule: usize,
    chunk: usize,
    /// 0 = sequential (the default), n > 0 = `"zone_schedule": n`.
    zone_shards: usize,
    /// SLP lane width; rendered only when > 1 so the omitted-field
    /// spelling of the scalar default is exercised by construction.
    vector_width: usize,
}

impl Fields {
    fn schedule_token(self) -> &'static str {
        ["static", "dynamic", "guided", "auto"][self.schedule]
    }

    /// Whether this schedule takes a `chunk` field.
    fn chunked(self) -> bool {
        self.schedule == 1 || self.schedule == 2
    }

    /// Render as a JSON body with the given key order and whitespace
    /// filler. `order` is a permutation seed; `ws` pads around every
    /// token.
    fn render(self, order: usize, ws: &str) -> String {
        let mut pairs = vec![
            format!("\"zones\":{ws}{}", self.zones),
            format!("\"steps\":{ws}{}", self.steps),
            format!("\"workers\":{ws}{}", self.workers),
            format!("\"schedule\":{ws}\"{}\"", self.schedule_token()),
        ];
        if self.chunked() {
            pairs.push(format!("\"chunk\":{ws}{}", self.chunk));
        }
        if self.zone_shards > 0 {
            pairs.push(format!("\"zone_schedule\":{ws}{}", self.zone_shards));
        }
        if self.vector_width > 1 {
            pairs.push(format!("\"vector_width\":{ws}{}", self.vector_width));
        }
        // Rotate + optionally reverse: enough permutations to cover
        // every adjacency without a factorial generator.
        let n = pairs.len();
        pairs.rotate_left(order % n);
        if (order / n) % 2 == 1 {
            pairs.reverse();
        }
        format!("{{{ws}{}{ws}}}", pairs.join(&format!(",{ws}")))
    }
}

fn fields() -> impl Strategy<Value = Fields> {
    (
        1usize..=4,
        1usize..=6,
        1usize..=4,
        0usize..4,
        1usize..=8,
        0usize..=4,
        0usize..f3d::kernels::SUPPORTED_WIDTHS.len(),
    )
        .prop_map(
            |(zones, steps, workers, schedule, chunk, zone_shards, width_at)| Fields {
                zones,
                steps,
                workers,
                schedule,
                chunk,
                zone_shards,
                vector_width: f3d::kernels::SUPPORTED_WIDTHS[width_at],
            },
        )
}

fn whitespace(seed: usize) -> &'static str {
    ["", " ", "  ", "\n", "\t", " \n "][seed % 6]
}

/// Parse a body exactly as the server's admission path does and build
/// its content key.
fn key_of(body: &str) -> ContentKey {
    let req = parse_solve_body(body, DEFAULT_WORKERS)
        .unwrap_or_else(|e| panic!("body must parse: {e}\n{body}"));
    ContentKey::for_case(&req.case, req.auto, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Key order and whitespace never split the cache: every rendering
    /// of the same fields produces the identical key.
    #[test]
    fn spelling_variants_share_one_key(
        f in fields(),
        order_a in 0usize..10,
        order_b in 0usize..10,
        ws_a in 0usize..6,
        ws_b in 0usize..6,
    ) {
        let a = key_of(&f.render(order_a, whitespace(ws_a)));
        let b = key_of(&f.render(order_b, whitespace(ws_b)));
        prop_assert_eq!(&a, &b, "spelling split the cache");
        prop_assert_eq!(a.digest(), b.digest());
    }

    /// Omitting `workers` and spelling out the default are the same
    /// solve, so they must share a key.
    #[test]
    fn default_workers_and_explicit_workers_share_one_key(
        zones in 1usize..=4,
        steps in 1usize..=6,
    ) {
        let implicit = key_of(&format!("{{\"zones\": {zones}, \"steps\": {steps}}}"));
        let explicit = key_of(&format!(
            "{{\"zones\": {zones}, \"steps\": {steps}, \"workers\": {DEFAULT_WORKERS}}}"
        ));
        prop_assert_eq!(&implicit, &explicit);
    }

    /// Omitting `zone_schedule` and spelling out `"sequential"` are the
    /// same solve, so they must share a key.
    #[test]
    fn default_zone_schedule_and_explicit_sequential_share_one_key(
        zones in 1usize..=4,
        steps in 1usize..=6,
    ) {
        let implicit = key_of(&format!("{{\"zones\": {zones}, \"steps\": {steps}}}"));
        let explicit = key_of(&format!(
            "{{\"zones\": {zones}, \"steps\": {steps}, \"zone_schedule\": \"sequential\"}}"
        ));
        prop_assert_eq!(&implicit, &explicit);
    }

    /// Omitting `vector_width` and spelling out the scalar default are
    /// the same solve, so they must share a key — the fix for the
    /// cache split where `"vector_width": 1` hashed apart from the
    /// omitted spelling.
    #[test]
    fn default_width_and_explicit_scalar_width_share_one_key(
        zones in 1usize..=4,
        steps in 1usize..=6,
    ) {
        let implicit = key_of(&format!("{{\"zones\": {zones}, \"steps\": {steps}}}"));
        let explicit = key_of(&format!(
            "{{\"zones\": {zones}, \"steps\": {steps}, \"vector_width\": 1}}"
        ));
        prop_assert_eq!(&implicit, &explicit);
    }

    /// Every semantic mutation — dims, steps, workers, schedule family,
    /// chunk, zone schedule, vector width — moves the request to a
    /// distinct key.
    #[test]
    fn semantic_changes_change_the_key(f in fields(), which in 0usize..7) {
        let mut g = f;
        match which {
            0 => g.zones = g.zones % 4 + 1,
            1 => g.steps = g.steps % 6 + 1,
            2 => g.workers = g.workers % 4 + 1,
            3 => g.schedule = (g.schedule + 1) % 4,
            4 => g.zone_shards = (g.zone_shards + 1) % 5,
            5 => {
                // Step to the next supported width (cyclically): always
                // a different, valid width.
                let widths = f3d::kernels::SUPPORTED_WIDTHS;
                let at = widths.iter().position(|&w| w == g.vector_width).unwrap();
                g.vector_width = widths[(at + 1) % widths.len()];
            }
            _ => {
                // Chunk only matters for chunked schedules; a chunk
                // mutation on any other base is meaningless, so discard
                // those draws.
                prop_assume!(f.chunked());
                g.chunk = g.chunk % 8 + 1;
            }
        }
        prop_assert_ne!(&f, &g);
        let key_f = key_of(&f.render(0, " "));
        let key_g = key_of(&g.render(0, " "));
        prop_assert_ne!(&key_f, &key_g);
        prop_assert_ne!(key_f.digest(), key_g.digest());
    }

    /// The `cache` directive is transport, not identity: a body asking
    /// for bypass still describes the same solve.
    #[test]
    fn bypass_directive_does_not_change_the_key(f in fields()) {
        let plain = f.render(0, " ");
        let with_directive = format!(
            "{{\"cache\": \"bypass\", {}",
            f.render(0, " ").trim_start_matches('{')
        );
        let req = parse_solve_body(&with_directive, DEFAULT_WORKERS).expect("parses");
        prop_assert!(req.bypass);
        prop_assert_eq!(
            &key_of(&plain),
            &ContentKey::for_case(&req.case, req.auto, 0)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The `"solver"` field's default spelling is canonical: omitting
    /// it and writing `"solver": "f3d"` must share a key.
    #[test]
    fn omitted_solver_and_explicit_f3d_share_one_key(f in fields(), order in 0usize..10) {
        let implicit = f.render(order, " ");
        let explicit = format!(
            "{{\"solver\": \"f3d\", {}",
            f.render(order, " ").trim_start_matches('{')
        );
        prop_assert_eq!(&key_of(&implicit), &key_of(&explicit));
    }

    /// FDTD spellings canonicalize the same way: key order and
    /// whitespace never split the cache, and every semantic field
    /// lands in the key.
    #[test]
    fn fdtd_spelling_variants_share_one_key(
        size in 0usize..4,
        steps in 1usize..=6,
        workers in 1usize..=4,
        flip in 0usize..2,
        ws_a in 0usize..6,
        ws_b in 0usize..6,
    ) {
        let size = [8, 16, 24, 32][size];
        let ws = |w: &str| format!(
            "{{{w}\"solver\":{w}\"fdtd\",{w}\"size\":{w}{size},{w}\"steps\":{w}{steps},{w}\"workers\":{w}{workers}{w}}}"
        );
        let flipped = format!(
            "{{\"workers\": {workers}, \"steps\": {steps}, \"size\": {size}, \"solver\": \"fdtd\"}}"
        );
        let a = key_of(&ws(whitespace(ws_a)));
        let b = if flip == 1 { key_of(&flipped) } else { key_of(&ws(whitespace(ws_b))) };
        prop_assert_eq!(&a, &b, "fdtd spelling split the cache");
    }

    /// Cross-solver injectivity: an f3d key and an fdtd key can never
    /// collide, whatever the field values — the solver kind namespaces
    /// the canonical form.
    #[test]
    fn solver_kinds_key_injectively(f in fields(), size in 0usize..4, steps in 1usize..=6) {
        let size = [8, 16, 24, 32][size];
        let f3d = key_of(&f.render(0, " "));
        let fdtd = key_of(&format!(
            "{{\"solver\": \"fdtd\", \"size\": {size}, \"steps\": {steps}}}"
        ));
        prop_assert_ne!(&f3d, &fdtd);
        prop_assert!(f3d.canonical().starts_with("solve/f3d/"));
        prop_assert!(fdtd.canonical().starts_with("solve/fdtd/"));
    }
}

/// Golden pin: the canonical form and digest of one fixed solve per
/// solver. If this changes, every deployed cache key changes — that
/// must be a deliberate decision, not drift.
#[test]
fn golden_key_is_pinned() {
    let key = key_of(r#"{"zones": 2, "steps": 3, "workers": 2}"#);
    assert_eq!(
        key.canonical(),
        "solve/f3d/zones=2;steps=3;workers=2;schedule=static;zone_schedule=sequential;vector_width=1;auto=false;tune_gen=0"
    );
    assert_eq!(key.digest(), "79ac019b26e403d6");

    let fdtd = key_of(r#"{"solver": "fdtd", "size": 16, "steps": 3, "workers": 2}"#);
    assert_eq!(
        fdtd.canonical(),
        "solve/fdtd/size=16;steps=3;workers=2;schedule=static;vector_width=1;auto=false;tune_gen=0"
    );
    assert_eq!(fdtd.digest(), "e2f11a29fd9f9263");
}
