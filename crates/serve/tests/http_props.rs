//! Property tests for the incremental HTTP/1.1 parser.
//!
//! The event loop re-parses each connection's buffered prefix on every
//! readable event, so [`parse_request_bytes`] must behave *identically*
//! to the one-shot [`read_request`] oracle no matter how a request's
//! bytes are split across arrivals:
//!
//! * a prefix of a valid request is `Partial`, never an error;
//! * the full bytes parse to the same `Request` the oracle produces,
//!   consuming exactly the framed length (pipelined bytes untouched);
//! * malformed input fails with the oracle's exact status and message,
//!   and once a prefix fails, every extension fails the same way;
//! * nothing panics and nothing loops, for any byte soup.

use proptest::prelude::*;
use serve::http::{parse_request_bytes, read_request, HttpError, Parse, Request, MAX_HEAD_BYTES};

const MAX_BODY: usize = 1024;

/// The one-shot oracle over a byte buffer: exactly what the old
/// blocking read path did with these bytes followed by EOF.
fn oneshot(bytes: &[u8]) -> Result<Request, HttpError> {
    let mut reader: &[u8] = bytes;
    read_request(&mut reader, MAX_BODY)
}

fn incremental(bytes: &[u8]) -> Result<Parse, HttpError> {
    parse_request_bytes(bytes, MAX_BODY)
}

/// One valid request assembled from generated parts, plus the parse
/// the oracle must agree on.
#[derive(Debug, Clone)]
struct ValidRequest {
    raw: Vec<u8>,
    expect: Request,
}

fn ascii_token(bytes: Vec<u8>) -> String {
    // Letters and digits only: safe in paths, header values, bodies.
    bytes
        .into_iter()
        .map(|b| {
            let alphabet = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
            alphabet[b as usize % alphabet.len()] as char
        })
        .collect()
}

/// Strategy for a well-formed request: varied method, target (with and
/// without query), HTTP version / `Connection` combinations, optional
/// extra headers, and an optional body with an exact `Content-Length`.
fn valid_request() -> impl Strategy<Value = ValidRequest> {
    (
        0usize..4,                               // method
        prop::collection::vec(0u8..255, 0..8),   // path token
        prop::collection::vec(0u8..255, 0..6),   // query token ("" = none)
        0usize..4,                               // version/connection variant
        0usize..3,                               // extra header count + accept variant
        prop::collection::vec(32u8..127, 0..48), // body (printable ASCII)
    )
        .prop_map(|(m, path_tok, query_tok, variant, extra, body_bytes)| {
            // Reuse the header-count draw as the Accept variant so the
            // capture is exercised across cases.
            let accept = ["", "application/json", "Text/Plain"][extra];
            let method = ["GET", "POST", "PUT", "DELETE"][m].to_string();
            let path = format!("/{}", ascii_token(path_tok));
            let query = ascii_token(query_tok);
            let target = if query.is_empty() {
                path.clone()
            } else {
                format!("{path}?{query}")
            };
            let body: String = body_bytes.iter().map(|&b| b as char).collect();
            let (version, connection, keep_alive) = match variant {
                0 => ("HTTP/1.1", None, true),
                1 => ("HTTP/1.1", Some("close"), false),
                2 => ("HTTP/1.0", None, false),
                _ => ("HTTP/1.0", Some("keep-alive"), true),
            };
            let mut raw = format!("{method} {target} {version}\r\nHost: t\r\n");
            for i in 0..extra {
                raw.push_str(&format!("X-Extra-{i}: v{i}\r\n"));
            }
            if let Some(c) = connection {
                raw.push_str(&format!("Connection: {c}\r\n"));
            }
            if !accept.is_empty() {
                raw.push_str(&format!("Accept: {accept}\r\n"));
            }
            if !body.is_empty() || m == 1 {
                raw.push_str(&format!("Content-Length: {}\r\n", body.len()));
            }
            raw.push_str("\r\n");
            raw.push_str(&body);
            ValidRequest {
                raw: raw.into_bytes(),
                expect: Request {
                    method,
                    path,
                    query,
                    body,
                    accept: accept.to_ascii_lowercase(),
                    keep_alive,
                },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every byte-boundary split of a valid request: prefixes are
    /// `Partial`, the whole parses to the oracle's request, and exactly
    /// the request's bytes are consumed.
    #[test]
    fn valid_requests_parse_identically_at_every_split(req in valid_request()) {
        let oracle = oneshot(&req.raw).expect("oracle accepts its own request");
        prop_assert_eq!(&oracle, &req.expect);
        for i in 0..req.raw.len() {
            match incremental(&req.raw[..i]) {
                Ok(Parse::Partial) => {
                    // A partial request followed by EOF is the oracle's
                    // "closed mid-request".
                    let on_eof = oneshot(&req.raw[..i]).expect_err("truncated request");
                    prop_assert_eq!(on_eof.status, 400);
                    prop_assert_eq!(on_eof.message.as_str(), "connection closed mid-request");
                }
                Ok(Parse::Complete(_, _)) => {
                    prop_assert!(false, "prefix {i} of {} completed early", req.raw.len());
                }
                Err(e) => {
                    prop_assert!(false, "prefix {i} errored: {} {}", e.status, e.message);
                }
            }
        }
        match incremental(&req.raw) {
            Ok(Parse::Complete(parsed, consumed)) => {
                prop_assert_eq!(&parsed, &req.expect);
                prop_assert_eq!(consumed, req.raw.len());
            }
            other => prop_assert!(false, "full request did not complete: {other:?}"),
        }
    }

    /// Two pipelined keep-alive requests in one buffer: the first parse
    /// consumes exactly the first request, the remainder parses to the
    /// second — regardless of where the arrival boundary falls.
    #[test]
    fn pipelined_pairs_frame_cleanly(a in valid_request(), b in valid_request(), cut in 0usize..=64) {
        let mut bytes = a.raw.clone();
        bytes.extend_from_slice(&b.raw);

        // Arrival boundary anywhere in the stream: the prefix never
        // misframes (it is Partial, or completes request A exactly).
        let cut = cut.min(bytes.len());
        match incremental(&bytes[..cut]) {
            Ok(Parse::Partial) => prop_assert!(cut < a.raw.len(), "full request A reported Partial"),
            Ok(Parse::Complete(parsed, consumed)) => {
                prop_assert_eq!(&parsed, &a.expect);
                prop_assert_eq!(consumed, a.raw.len());
            }
            Err(e) => prop_assert!(false, "pipelined prefix errored: {} {}", e.status, e.message),
        }

        // The full buffer: request A first, untouched bytes after it
        // parse as request B.
        let Ok(Parse::Complete(first, consumed)) = incremental(&bytes) else {
            return Err(TestCaseError::fail("first pipelined request did not complete".to_string()));
        };
        prop_assert_eq!(&first, &a.expect);
        prop_assert_eq!(consumed, a.raw.len());
        let Ok(Parse::Complete(second, consumed_b)) = incremental(&bytes[consumed..]) else {
            return Err(TestCaseError::fail("second pipelined request did not complete".to_string()));
        };
        prop_assert_eq!(&second, &b.expect);
        prop_assert_eq!(consumed_b, b.raw.len());
    }

    /// Arbitrary byte soup: the incremental parser never panics, and
    /// whenever it reaches a verdict it is exactly the oracle's. Errors
    /// are sticky: once a prefix fails, every extension fails the same
    /// way (the connection would already be closed).
    #[test]
    fn junk_bytes_agree_with_the_oracle(bytes in prop::collection::vec(0u8..=255, 0..96)) {
        let mut first_error: Option<(usize, HttpError)> = None;
        for i in 0..=bytes.len() {
            match incremental(&bytes[..i]) {
                Ok(Parse::Partial) => {
                    prop_assert!(first_error.is_none(), "Partial after an error verdict");
                }
                Ok(Parse::Complete(request, consumed)) => {
                    prop_assert!(first_error.is_none(), "Complete after an error verdict");
                    prop_assert!(consumed <= i);
                    let oracle = oneshot(&bytes[..i]).expect("oracle accepts what incremental accepts");
                    prop_assert_eq!(&request, &oracle);
                }
                Err(e) => {
                    let oracle = oneshot(&bytes[..i]).expect_err("oracle rejects what incremental rejects");
                    prop_assert_eq!(e.status, oracle.status);
                    prop_assert_eq!(&e.message, &oracle.message);
                    match &first_error {
                        None => first_error = Some((i, e)),
                        Some((_, prior)) => prop_assert_eq!(prior, &e, "error verdict changed"),
                    }
                }
            }
        }
    }

    /// Oversized declared bodies are refused with 413 before any body
    /// byte arrives, exactly like the oracle.
    #[test]
    fn oversized_bodies_fail_early(extra in 1usize..4096) {
        let head = format!(
            "POST /v1/solve HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + extra
        );
        let incr = incremental(head.as_bytes()).expect_err("over-budget body");
        let oracle = oneshot(head.as_bytes()).expect_err("over-budget body");
        prop_assert_eq!(incr.status, 413);
        prop_assert_eq!(incr.status, oracle.status);
        prop_assert_eq!(&incr.message, &oracle.message);
    }

    /// A head that exceeds the head budget is refused with 413 even
    /// when no newline ever arrives (no unbounded buffering).
    #[test]
    fn oversized_heads_fail_without_a_terminator(pad in 0usize..64) {
        let mut raw = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        raw.resize(MAX_HEAD_BYTES + 1 + pad, b'a');
        let incr = incremental(&raw).expect_err("over-budget head");
        prop_assert_eq!(incr.status, 413);
        let oracle = oneshot(&raw).expect_err("over-budget head");
        prop_assert_eq!(oracle.status, 413);
        prop_assert_eq!(&incr.message, &oracle.message);
    }
}
