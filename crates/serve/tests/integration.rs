//! End-to-end tests for `llpd`: real sockets, real threads, one shared
//! pool.
//!
//! Timing-sensitive behavior (back-pressure, graceful shutdown,
//! deadlines) is made deterministic with the server's `job_gate` test
//! hook: holding the gate pins the executor between popping a job and
//! computing it, so tests can fill the queue and observe 429/503/drain
//! behavior without sleeping and hoping.

use llp::advisor::Advisor;
use llp::obs::json::Json;
use llp::profile::{LoopReport, LoopStats};
use llp::Policy;
use perfmodel::overhead::OverheadBound;
use serve::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tune::{TuneDb, TuneEntry, TUNE_SCHEMA_VERSION};

struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn json(&self) -> Json {
        Json::parse(&self.body).expect("response body is JSON")
    }
}

fn send_raw(addr: SocketAddr, raw: &str) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let (head, body) = text
        .split_once("\r\n\r\n")
        .expect("response has a blank line");
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        .collect();
    Reply {
        status,
        headers,
        body: body.to_string(),
    }
}

fn get(addr: SocketAddr, target: &str) -> Reply {
    // `Connection: close` because this helper reads to EOF; keep-alive
    // behavior gets its own tests below.
    send_raw(
        addr,
        &format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: SocketAddr, target: &str, body: &str) -> Reply {
    send_raw(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn wait_until(what: &str, mut condition: impl FnMut() -> bool) {
    let start = Instant::now();
    while !condition() {
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "timed out waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn metric(addr: SocketAddr, key: &str) -> u64 {
    get(addr, "/metrics?format=json")
        .json()
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("/metrics has no `{key}`"))
}

fn small_server() -> Server {
    Server::start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind")
}

/// A keep-alive client: one connection, many requests, each response
/// framed by its `Content-Length` (never by EOF).
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Self {
            stream,
            buf: Vec::new(),
        }
    }

    fn send(&mut self, raw: &str) {
        self.stream
            .write_all(raw.as_bytes())
            .expect("write request");
    }

    /// Read exactly one response off the connection, leaving any
    /// pipelined follow-up bytes buffered.
    fn read_reply(&mut self) -> Reply {
        loop {
            if let Some(head_end) = self
                .buf
                .windows(4)
                .position(|w| w == b"\r\n\r\n")
                .map(|p| p + 4)
            {
                let head = String::from_utf8(self.buf[..head_end - 4].to_vec()).expect("head");
                let mut lines = head.lines();
                let status: u16 = lines
                    .next()
                    .and_then(|l| l.split(' ').nth(1))
                    .and_then(|s| s.parse().ok())
                    .expect("status line");
                let headers: Vec<(String, String)> = lines
                    .filter_map(|l| l.split_once(':'))
                    .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
                    .collect();
                let length: usize = headers
                    .iter()
                    .find(|(k, _)| k.eq_ignore_ascii_case("Content-Length"))
                    .and_then(|(_, v)| v.parse().ok())
                    .expect("response declares Content-Length");
                if self.buf.len() >= head_end + length {
                    let body = String::from_utf8(self.buf[head_end..head_end + length].to_vec())
                        .expect("body");
                    self.buf.drain(..head_end + length);
                    return Reply {
                        status,
                        headers,
                        body,
                    };
                }
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk).expect("read response");
            assert!(n > 0, "connection closed mid-response");
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    fn get(&mut self, target: &str) -> Reply {
        self.send(&format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n"));
        self.read_reply()
    }

    fn post(&mut self, target: &str, body: &str) -> Reply {
        self.send(&format!(
            "POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ));
        self.read_reply()
    }
}

/// A nested `cache` counter from `/metrics`.
fn cache_metric(addr: SocketAddr, key: &str) -> u64 {
    get(addr, "/metrics?format=json")
        .json()
        .get("cache")
        .expect("/metrics has a `cache` block")
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("cache block has no `{key}`"))
}

/// A solve response body with its `trace_id` value blanked, for
/// byte-equality checks across a coalesced fan-out (each waiter gets
/// its own trace id; everything else must match exactly).
fn mask_trace_id(body: &str) -> String {
    let Some(start) = body.find("\"trace_id\":") else {
        panic!("solve body has no trace_id: {body}");
    };
    let value_start = start + "\"trace_id\":".len();
    let rest = &body[value_start..];
    let value_len = rest
        .find([',', '}'])
        .expect("trace_id value is followed by , or }");
    format!("{}<id>{}", &body[..value_start], &rest[value_len..])
}

/// Parse a `Retry-After` header, asserting it exists and is at least 1.
fn retry_after(reply: &Reply) -> u64 {
    let value: u64 = reply
        .header("Retry-After")
        .expect("rejection carries Retry-After")
        .parse()
        .expect("Retry-After is an integer");
    assert!(value >= 1);
    value
}

const ADVISE_BODY: &str = r#"{
    "clock_hz": 300e6,
    "sync_cost_cycles": 10000,
    "processors": 32,
    "loops": [
        {"name": "rhs", "invocations": 10, "total_seconds": 90.0, "parallelism": 320},
        {"name": "bc", "invocations": 1000, "total_seconds": 10.0, "parallelism": 75}
    ]
}"#;

#[test]
fn solve_matches_direct_invocation_exactly() {
    let server = small_server();
    let case = f3d::service::ServiceCase {
        zones: 2,
        steps: 3,
        workers: 2,
        schedule: Policy::Static,
        zone_schedule: f3d::service::ZoneSchedule::Sequential,
        vector_width: 1,
    };
    let reply = post(
        server.addr(),
        "/v1/solve",
        r#"{"zones": 2, "steps": 3, "workers": 2}"#,
    );
    assert_eq!(reply.status, 200, "{}", reply.body);
    let served = reply.json();

    let pool = llp::Workers::recorded(2);
    let direct = f3d::service::run(&case, &pool).unwrap();

    // The service case is deterministic, and the JSON layer formats
    // f64 round-trip exactly — so equality here is exact, not
    // tolerance-based.
    let residuals: Vec<f64> = served
        .get("residuals")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|r| r.as_f64().unwrap())
        .collect();
    assert_eq!(residuals, direct.residuals);

    let forces = served.get("forces").unwrap();
    assert_eq!(forces.get("drag").unwrap().as_f64(), Some(direct.drag));
    assert_eq!(forces.get("lift").unwrap().as_f64(), Some(direct.lift));

    let checksums = served.get("checksums").and_then(Json::as_array).unwrap();
    assert_eq!(checksums.len(), direct.checksums.len());
    for (served_zone, (name, direct_sum)) in checksums
        .iter()
        .zip(direct.zone_names.iter().zip(&direct.checksums))
    {
        assert_eq!(
            served_zone.get("zone").unwrap().as_str(),
            Some(name.as_str())
        );
        let field = |key: &str| -> Vec<f64> {
            served_zone
                .get(key)
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .map(|v| v.as_f64().unwrap())
                .collect()
        };
        assert_eq!(field("sum"), direct_sum.sum.to_vec());
        assert_eq!(field("sum_sq"), direct_sum.sum_sq.to_vec());
        assert_eq!(field("min"), direct_sum.min.to_vec());
        assert_eq!(field("max"), direct_sum.max.to_vec());
    }

    assert_eq!(
        served.get("sync_events").unwrap().as_u64(),
        Some(direct.sync_events)
    );
    // The span report is the service's own observability schema.
    let report = served.get("report").unwrap();
    assert_eq!(report.get("case").unwrap().as_str(), Some("service/z2s3w2"));
    server.shutdown();
}

#[test]
fn zone_scheduled_solve_matches_sequential_and_reports_the_split() {
    let server = small_server();
    // Sequential reference (bypass so both runs really execute).
    let reply = post(
        server.addr(),
        "/v1/solve",
        r#"{"zones": 4, "steps": 2, "workers": 2, "cache": "bypass"}"#,
    );
    assert_eq!(reply.status, 200, "{}", reply.body);
    let sequential = reply.json();
    assert_eq!(sequential.get("zone_level"), Some(&Json::Null));
    assert_eq!(
        sequential
            .get("case")
            .unwrap()
            .get("zone_schedule")
            .and_then(Json::as_str),
        Some("sequential")
    );

    let reply = post(
        server.addr(),
        "/v1/solve",
        r#"{"zones": 4, "steps": 2, "workers": 2, "zone_schedule": 2, "cache": "bypass"}"#,
    );
    assert_eq!(reply.status, 200, "{}", reply.body);
    let zoned = reply.json();
    // Bit-exact answers: the zone schedule is a performance knob.
    assert_eq!(zoned.get("residuals"), sequential.get("residuals"));
    assert_eq!(zoned.get("checksums"), sequential.get("checksums"));
    assert_eq!(zoned.get("forces"), sequential.get("forces"));
    // The response names the split and the step-DAG shape.
    assert_eq!(
        zoned
            .get("case")
            .unwrap()
            .get("zone_schedule")
            .and_then(Json::as_u64),
        Some(2)
    );
    let zone_level = zoned.get("zone_level").unwrap();
    assert_eq!(zone_level.get("shards").and_then(Json::as_u64), Some(2));
    assert_eq!(zone_level.get("zone_tasks").and_then(Json::as_u64), Some(4));
    assert_eq!(
        zone_level.get("exchange_tasks").and_then(Json::as_u64),
        Some(3)
    );
    assert!(zone_level.get("loop_workers").and_then(Json::as_u64) >= Some(1));
    // The zone gauges moved.
    let metrics = get(server.addr(), "/metrics?format=json").json();
    let zones = metrics.get("zones").unwrap();
    assert_eq!(zones.get("jobs").and_then(Json::as_u64), Some(1));
    assert_eq!(zones.get("tasks").and_then(Json::as_u64), Some(8));
    assert_eq!(zones.get("shards_last").and_then(Json::as_u64), Some(2));
    server.shutdown();
}

#[test]
fn advise_zone_level_block_reports_the_two_level_law() {
    let server = small_server();
    let body = r#"{
        "clock_hz": 300e6,
        "sync_cost_cycles": 10000,
        "processors": 8,
        "zones": 4,
        "loops": [
            {"name": "rhs", "invocations": 10, "total_seconds": 90.0, "parallelism": 320}
        ]
    }"#;
    let reply = post(server.addr(), "/v1/advise", body);
    assert_eq!(reply.status, 200, "{}", reply.body);
    let served = reply.json();
    let zone = served.get("zone_level").unwrap();
    assert_eq!(zone.get("zones").and_then(Json::as_u64), Some(4));
    let splits = zone.get("splits").and_then(Json::as_array).unwrap();
    assert_eq!(splits.len(), 3, "plateau edges of 4 zones on 8 workers");
    // Loop advice is still the single-level document it always was.
    assert!(served.get("loops").and_then(Json::as_array).is_some());
    // Without zones, the block is null.
    let reply = post(server.addr(), "/v1/advise", ADVISE_BODY);
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(reply.json().get("zone_level"), Some(&Json::Null));
    server.shutdown();
}

#[test]
fn advise_matches_the_advisor_exactly() {
    let server = small_server();
    let reply = post(server.addr(), "/v1/advise", ADVISE_BODY);
    assert_eq!(reply.status, 200, "{}", reply.body);
    let served = reply.json();

    let advisor = Advisor::new(
        300e6,
        OverheadBound {
            sync_cost_cycles: 10_000,
            max_overhead_fraction: perfmodel::overhead::PAPER_OVERHEAD_FRACTION,
        },
        32,
    );
    let reports = vec![
        LoopReport {
            name: "rhs".to_string(),
            stats: LoopStats {
                invocations: 10,
                total_seconds: 90.0,
                parallelism: 320,
                parallelized: false,
            },
            fraction_of_total: 90.0 / 100.0,
        },
        LoopReport {
            name: "bc".to_string(),
            stats: LoopStats {
                invocations: 1000,
                total_seconds: 10.0,
                parallelism: 75,
                parallelized: false,
            },
            fraction_of_total: 10.0 / 100.0,
        },
    ];
    let expected = advisor.advise(&reports);

    assert_eq!(
        served.get("serial_fraction").unwrap().as_f64(),
        Some(expected.serial_fraction)
    );
    assert_eq!(
        served.get("predicted_speedup").unwrap().as_f64(),
        Some(expected.predicted_speedup)
    );
    let loops = served.get("loops").and_then(Json::as_array).unwrap();
    assert_eq!(loops.len(), expected.loops.len());
    for (served_loop, expected_loop) in loops.iter().zip(&expected.loops) {
        assert_eq!(
            served_loop.get("name").unwrap().as_str(),
            Some(expected_loop.name.as_str())
        );
        let kind = served_loop
            .get("decision")
            .unwrap()
            .get("kind")
            .unwrap()
            .as_str()
            .unwrap();
        let expected_kind = match expected_loop.decision {
            llp::advisor::LoopDecision::Parallelize { .. } => "parallelize",
            llp::advisor::LoopDecision::TooLittleWork { .. } => "too_little_work",
            llp::advisor::LoopDecision::NoParallelism => "no_parallelism",
        };
        assert_eq!(kind, expected_kind);
    }
    server.shutdown();
}

#[test]
fn model_endpoints_answer_the_paper_tables() {
    let server = small_server();
    let addr = server.addr();

    let stairstep = get(addr, "/v1/model/stairstep?units=15&processors=1,4,8,15");
    assert_eq!(stairstep.status, 200);
    let speedups: Vec<f64> = stairstep
        .json()
        .get("points")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|p| p.get("speedup").unwrap().as_f64().unwrap())
        .collect();
    assert_eq!(speedups, vec![1.0, 3.75, 7.5, 15.0]);

    let overhead = get(addr, "/v1/model/overhead?sync_cost=100000&processors=2,128");
    assert_eq!(overhead.status, 200);
    let cycles: Vec<u64> = overhead
        .json()
        .get("points")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|p| p.get("min_work_cycles").unwrap().as_u64().unwrap())
        .collect();
    assert_eq!(cycles, vec![20_000_000, 1_280_000_000]);

    let wps = get(
        addr,
        "/v1/model/work_per_sync?dims=100,100,100&work_per_point=10&levels=outer",
    );
    assert_eq!(wps.status, 200);
    let points = wps.json();
    let points = points.get("points").and_then(Json::as_array).unwrap();
    assert_eq!(points[0].get("cycles").unwrap().as_u64(), Some(10_000_000));

    // Malformed queries come back 400 with an error body, never 500.
    for bad in [
        "/v1/model/galaxy?x=1",
        "/v1/model/stairstep?units=0&processors=1",
        "/v1/model/stairstep?units=15&processors=1&junk=2",
        "/v1/model/overhead?sync_cost=1&fraction=nope&processors=1",
        "/v1/model/work_per_sync?dims=0&work_per_point=1",
    ] {
        let reply = get(addr, bad);
        assert_eq!(reply.status, 400, "{bad}");
        assert!(reply.json().get("error").is_some(), "{bad}");
    }
    server.shutdown();
}

#[test]
fn full_queue_rejects_with_429_and_recovers() {
    let gate = Arc::new(Mutex::new(()));
    let server = Server::start(ServerConfig {
        workers: 1,
        shards: 1,
        queue_capacity: 1,
        job_gate: Some(Arc::clone(&gate)),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    let held = gate.lock().unwrap();

    // First job: popped by the executor, which then blocks on the gate.
    let first = std::thread::spawn(move || post(addr, "/v1/advise", ADVISE_BODY));
    wait_until("executor busy", || metric(addr, "executor_busy") == 1);

    // Second job: sits in the queue (capacity 1).
    let second = std::thread::spawn(move || post(addr, "/v1/advise", ADVISE_BODY));
    wait_until("queued job", || metric(addr, "queue_depth") == 1);

    // Third: over capacity — back-pressure, not queueing.
    let rejected = post(addr, "/v1/advise", ADVISE_BODY);
    assert_eq!(rejected.status, 429);
    retry_after(&rejected);
    assert_eq!(
        rejected.json().get("error").unwrap().as_str(),
        Some("queue full")
    );
    assert_eq!(server.rejected_total(), 1);

    drop(held);
    assert_eq!(first.join().unwrap().status, 200);
    assert_eq!(second.join().unwrap().status, 200);
    assert_eq!(metric(addr, "rejected_total"), 1);
    assert_eq!(metric(addr, "jobs_total"), 2);
    server.shutdown();
}

#[test]
fn deadline_expires_queued_requests_with_503() {
    let gate = Arc::new(Mutex::new(()));
    let server = Server::start(ServerConfig {
        workers: 1,
        shards: 1,
        deadline: Duration::from_millis(100),
        job_gate: Some(Arc::clone(&gate)),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    let held = gate.lock().unwrap();
    let reply = post(addr, "/v1/advise", ADVISE_BODY);
    assert_eq!(reply.status, 503);
    retry_after(&reply);
    assert_eq!(metric(addr, "timeouts_total"), 1);

    drop(held);
    server.shutdown();
}

#[test]
fn graceful_shutdown_completes_in_flight_work() {
    let gate = Arc::new(Mutex::new(()));
    let server = Server::start(ServerConfig {
        workers: 2,
        shards: 1,
        job_gate: Some(Arc::clone(&gate)),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    let held = gate.lock().unwrap();
    let in_flight =
        std::thread::spawn(move || post(addr, "/v1/solve", r#"{"zones": 1, "steps": 1}"#));
    wait_until("executor busy", || metric(addr, "executor_busy") == 1);

    // Shutdown starts draining while the job is pinned at the gate...
    let shutdown = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(Duration::from_millis(50));
    drop(held);

    // ...and still delivers the complete response before exiting.
    let reply = in_flight.join().unwrap();
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert!(reply.json().get("checksums").is_some());
    shutdown.join().unwrap();

    // The listener is gone: new connections are refused.
    assert!(TcpStream::connect(addr).is_err());
}

#[test]
fn metrics_totals_agree_with_span_reports_and_pool_counters() {
    // Two shards over a two-worker pool: both slices share the pool's
    // counters, so sharding must not perturb any total.
    let server = Server::start(ServerConfig {
        workers: 2,
        shards: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    assert_eq!(metric(addr, "executor_shards"), 2);

    let mut reported_sync_events = 0;
    for (zones, steps, workers) in [(1, 2, 1), (2, 3, 2), (3, 1, 2)] {
        let reply = post(
            addr,
            "/v1/solve",
            &format!(r#"{{"zones": {zones}, "steps": {steps}, "workers": {workers}}}"#),
        );
        assert_eq!(reply.status, 200, "{}", reply.body);
        let served = reply.json();
        let sync_events = served.get("sync_events").unwrap().as_u64().unwrap();
        assert!(sync_events > 0);
        // The top-level counter and the span report agree per response.
        assert_eq!(
            served
                .get("report")
                .unwrap()
                .get("sync_events")
                .and_then(Json::as_u64),
            Some(sync_events)
        );
        reported_sync_events += sync_events;
    }
    let advise = post(addr, "/v1/advise", ADVISE_BODY);
    assert_eq!(advise.status, 200);

    // All pool work flowed through sized views of the one shared pool,
    // so the pool's counter, the accumulated span reports, and the sum
    // of per-response counters are all the same number.
    let metrics = get(addr, "/metrics?format=json").json();
    assert_eq!(
        metrics.get("obs_sync_events_total").and_then(Json::as_u64),
        Some(reported_sync_events)
    );
    assert_eq!(
        metrics.get("pool_sync_events_total").and_then(Json::as_u64),
        Some(reported_sync_events)
    );
    assert_eq!(metrics.get("jobs_total").and_then(Json::as_u64), Some(4));
    assert_eq!(
        metrics.get("obs_reports_total").and_then(Json::as_u64),
        Some(3)
    );
    assert_eq!(
        metrics
            .get("endpoints")
            .unwrap()
            .get("solve")
            .and_then(Json::as_u64),
        Some(3)
    );
    server.shutdown();
}

#[test]
fn http_robustness() {
    let server = Server::start(ServerConfig {
        workers: 1,
        max_body_bytes: 1024,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    assert_eq!(get(addr, "/nope").status, 404);
    assert_eq!(get(addr, "/v1/solve").status, 405);
    assert_eq!(
        send_raw(
            addr,
            "POST /metrics HTTP/1.1\r\nConnection: close\r\nContent-Length: 0\r\n\r\n"
        )
        .status,
        405
    );
    assert_eq!(post(addr, "/v1/solve", "{not json").status, 400);
    assert_eq!(post(addr, "/v1/solve", r#"{"zones": 99}"#).status, 400);
    assert_eq!(post(addr, "/v1/advise", "[]").status, 400);
    // Declared oversized body: rejected before it is read.
    assert_eq!(
        send_raw(
            addr,
            "POST /v1/solve HTTP/1.1\r\nContent-Length: 999999\r\n\r\n"
        )
        .status,
        413
    );
    assert_eq!(send_raw(addr, "nonsense\r\n\r\n").status, 400);
    // Every error body is parseable JSON with an `error` key.
    assert!(get(addr, "/nope").json().get("error").is_some());
    // Malformed schedule selections are 400s, never 500s.
    assert_eq!(
        post(addr, "/v1/solve", r#"{"schedule": "fifo"}"#).status,
        400
    );
    assert_eq!(
        post(addr, "/v1/solve", r#"{"schedule": "static", "chunk": 4}"#).status,
        400
    );
    assert_eq!(
        post(addr, "/v1/solve", r#"{"schedule": "dynamic", "chunk": 0}"#).status,
        400
    );
    server.shutdown();
}

#[test]
fn concurrent_shards_execute_jobs_in_parallel() {
    let gate = Arc::new(Mutex::new(()));
    let server = Server::start(ServerConfig {
        workers: 2,
        shards: 2,
        queue_capacity: 4,
        job_gate: Some(Arc::clone(&gate)),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    assert_eq!(server.shards(), 2);

    let held = gate.lock().unwrap();
    let first = std::thread::spawn(move || post(addr, "/v1/advise", ADVISE_BODY));
    let second = std::thread::spawn(move || post(addr, "/v1/advise", ADVISE_BODY));
    // Both shards pop a job and pin at the gate — two jobs in flight at
    // once, which the old single-executor design could never show.
    wait_until("both shards busy", || metric(addr, "executor_busy") == 2);
    assert_eq!(metric(addr, "queue_depth"), 0);

    drop(held);
    assert_eq!(first.join().unwrap().status, 200);
    assert_eq!(second.join().unwrap().status, 200);
    assert_eq!(metric(addr, "jobs_total"), 2);
    server.shutdown();
}

#[test]
fn solve_is_bit_exact_across_shards_and_policies() {
    let case = f3d::service::ServiceCase {
        zones: 2,
        steps: 2,
        workers: 2,
        schedule: Policy::Static,
        zone_schedule: f3d::service::ZoneSchedule::Sequential,
        vector_width: 1,
    };
    let direct = f3d::service::run(&case, &llp::Workers::recorded(2)).unwrap();

    for shards in [1, 2] {
        let server = Server::start(ServerConfig {
            workers: 2,
            shards,
            ..ServerConfig::default()
        })
        .expect("bind");
        for body in [
            r#"{"zones": 2, "steps": 2, "workers": 2}"#,
            r#"{"zones": 2, "steps": 2, "workers": 2, "schedule": "dynamic", "chunk": 2}"#,
            r#"{"zones": 2, "steps": 2, "workers": 2, "schedule": "guided"}"#,
        ] {
            let reply = post(server.addr(), "/v1/solve", body);
            assert_eq!(reply.status, 200, "shards={shards} {body}: {}", reply.body);
            let served = reply.json();
            let residuals: Vec<f64> = served
                .get("residuals")
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .map(|r| r.as_f64().unwrap())
                .collect();
            assert_eq!(residuals, direct.residuals, "shards={shards} {body}");
            let forces = served.get("forces").unwrap();
            assert_eq!(forces.get("drag").unwrap().as_f64(), Some(direct.drag));
            assert_eq!(forces.get("lift").unwrap().as_f64(), Some(direct.lift));
            let checksums = served.get("checksums").and_then(Json::as_array).unwrap();
            for (served_zone, direct_sum) in checksums.iter().zip(&direct.checksums) {
                let sums: Vec<f64> = served_zone
                    .get("sum")
                    .and_then(Json::as_array)
                    .unwrap()
                    .iter()
                    .map(|v| v.as_f64().unwrap())
                    .collect();
                assert_eq!(sums, direct_sum.sum.to_vec(), "shards={shards} {body}");
            }
            // The response echoes which schedule actually ran.
            let schedule = served.get("case").unwrap().get("schedule").unwrap();
            assert!(schedule.as_str().is_some());
        }
        server.shutdown();
    }
}

/// A hand-built tune database covering three of the six parallel
/// kernels with deliberately varied configurations.
fn sample_tune_db() -> TuneDb {
    let entry = |kernel: &str, workers, schedule| TuneEntry {
        kernel: kernel.to_string(),
        workers,
        schedule,
        vector_width: 1,
        iterations: 10,
        candidates_tried: 5,
        measured_cost_ns: 80_000,
        default_cost_ns: 95_000,
        modeled_cost_ns: 78_000,
        model_agrees: true,
        stale: false,
    };
    TuneDb {
        schema_version: TUNE_SCHEMA_VERSION,
        solver: "f3d".to_string(),
        pool_width: 2,
        zones: 1,
        steps: 1,
        trials: 1,
        sync_cost_ns: 900,
        entries: vec![
            entry("l_factor_solve", 2, Policy::Dynamic { chunk: 1 }),
            entry("rhs", 1, Policy::Static),
            entry("update", 2, Policy::Guided { min_chunk: 1 }),
        ],
    }
}

#[test]
fn auto_solve_resolves_tuned_configs_and_stays_bit_exact() {
    let case = f3d::service::ServiceCase {
        zones: 2,
        steps: 2,
        workers: 2,
        schedule: Policy::Static,
        zone_schedule: f3d::service::ZoneSchedule::Sequential,
        vector_width: 1,
    };
    let direct = f3d::service::run(&case, &llp::Workers::recorded(2)).unwrap();
    let body = r#"{"zones": 2, "steps": 2, "workers": 2, "schedule": "auto"}"#;

    // With a loaded db, "auto" applies the per-kernel overrides — and
    // the answers are still bit-exact with the untuned direct run.
    let server = Server::start(ServerConfig {
        workers: 2,
        shards: 1,
        tune_db: Some(sample_tune_db()),
        ..ServerConfig::default()
    })
    .expect("bind");
    let reply = post(server.addr(), "/v1/solve", body);
    assert_eq!(reply.status, 200, "{}", reply.body);
    let served = reply.json();
    let residuals: Vec<f64> = served
        .get("residuals")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|r| r.as_f64().unwrap())
        .collect();
    assert_eq!(residuals, direct.residuals);
    let forces = served.get("forces").unwrap();
    assert_eq!(forces.get("drag").unwrap().as_f64(), Some(direct.drag));
    assert_eq!(forces.get("lift").unwrap().as_f64(), Some(direct.lift));
    for (served_zone, direct_sum) in served
        .get("checksums")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .zip(&direct.checksums)
    {
        let sums: Vec<f64> = served_zone
            .get("sum")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        assert_eq!(sums, direct_sum.sum.to_vec());
    }
    // The response names exactly the configurations that ran.
    let tuned = served.get("tuned").expect("auto solve reports `tuned`");
    assert_eq!(tuned.get("source").and_then(Json::as_str), Some("tune-db"));
    let kernels = tuned.get("kernels").and_then(Json::as_array).unwrap();
    assert_eq!(kernels.len(), 3);
    let rhs = kernels
        .iter()
        .find(|k| k.get("kernel").and_then(Json::as_str) == Some("rhs"))
        .expect("rhs resolved");
    assert_eq!(rhs.get("workers").and_then(Json::as_u64), Some(1));
    assert_eq!(rhs.get("schedule").and_then(Json::as_str), Some("static"));
    server.shutdown();

    // Without a db, "auto" falls back to the defaults and says so.
    let server = small_server();
    let reply = post(server.addr(), "/v1/solve", body);
    assert_eq!(reply.status, 200, "{}", reply.body);
    let served = reply.json();
    let residuals: Vec<f64> = served
        .get("residuals")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|r| r.as_f64().unwrap())
        .collect();
    assert_eq!(residuals, direct.residuals);
    let tuned = served.get("tuned").unwrap();
    assert_eq!(tuned.get("source").and_then(Json::as_str), Some("default"));
    // An explicit (non-auto) solve carries a null `tuned`.
    let reply = post(
        server.addr(),
        "/v1/solve",
        r#"{"zones": 1, "steps": 1, "workers": 2}"#,
    );
    assert_eq!(reply.status, 200);
    assert!(matches!(reply.json().get("tuned"), Some(Json::Null)));
    server.shutdown();
}

#[test]
fn advise_prefers_measured_entries_and_reports_disagreement() {
    let server = Server::start(ServerConfig {
        workers: 2,
        tune_db: Some(sample_tune_db()),
        ..ServerConfig::default()
    })
    .expect("bind");
    let reply = post(server.addr(), "/v1/advise", ADVISE_BODY);
    assert_eq!(reply.status, 200, "{}", reply.body);
    let served = reply.json();
    let loops = served.get("loops").unwrap().as_array().unwrap();

    // `rhs` is covered by the db: the measured block appears and the
    // preferred schedule is the measured one.
    let rhs = &loops[0];
    assert_eq!(rhs.get("name").and_then(Json::as_str), Some("rhs"));
    let measured = rhs.get("measured").expect("rhs carries measured advice");
    assert_eq!(measured.get("workers").and_then(Json::as_u64), Some(1));
    assert_eq!(
        measured.get("schedule").and_then(Json::as_str),
        Some("static")
    );
    assert_eq!(
        measured.get("measured_cost_ns").and_then(Json::as_u64),
        Some(80_000)
    );
    assert!(measured.get("agrees_with_analytic").is_some());
    assert_eq!(
        rhs.get("preferred_schedule").and_then(Json::as_str),
        Some("static")
    );

    // `bc` has no db entry: analytic advice only, no measured block.
    let bc = &loops[1];
    assert_eq!(bc.get("name").and_then(Json::as_str), Some("bc"));
    assert!(bc.get("measured").is_none());
    assert!(bc.get("preferred_schedule").is_none());
    server.shutdown();
}

#[test]
fn tune_calibration_runs_in_the_background_and_rejects_concurrency() {
    let gate = Arc::new(Mutex::new(()));
    let server = Server::start(ServerConfig {
        workers: 2,
        shards: 1,
        job_gate: Some(Arc::clone(&gate)),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    // Nothing has been calibrated or loaded yet.
    let reply = get(addr, "/v1/tune");
    assert_eq!(reply.status, 200);
    assert_eq!(
        reply.json().get("status").and_then(Json::as_str),
        Some("idle")
    );
    assert!(matches!(reply.json().get("db"), Some(Json::Null)));

    // Malformed specs are rejected before anything starts.
    assert_eq!(post(addr, "/v1/tune", r#"{"zones": 99}"#).status, 400);
    assert_eq!(post(addr, "/v1/tune", r#"{"surprise": 1}"#).status, 400);
    assert_eq!(
        get(addr, "/v1/tune")
            .json()
            .get("status")
            .and_then(Json::as_str),
        Some("idle")
    );

    // Pin the calibration at the gate: its status is observable and a
    // second request is deterministically rejected with 429.
    let held = gate.lock().unwrap();
    let reply = post(addr, "/v1/tune", r#"{"zones": 1, "steps": 1, "trials": 1}"#);
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(
        reply.json().get("status").and_then(Json::as_str),
        Some("calibrating")
    );
    let rejected = post(addr, "/v1/tune", "");
    assert_eq!(rejected.status, 429, "{}", rejected.body);
    retry_after(&rejected);
    assert_eq!(
        get(addr, "/v1/tune")
            .json()
            .get("status")
            .and_then(Json::as_str),
        Some("calibrating")
    );
    drop(held);

    // The background calibration finishes and publishes its database.
    wait_until("calibration ready", || {
        get(addr, "/v1/tune")
            .json()
            .get("status")
            .and_then(Json::as_str)
            == Some("ready")
    });
    let doc = get(addr, "/v1/tune").json();
    let db = TuneDb::from_json(doc.get("db").unwrap()).expect("published db parses");
    assert_eq!(db.pool_width, 2);
    assert!(!db.entries.is_empty());
    for e in &db.entries {
        assert!((1..=2).contains(&e.workers), "{e:?}");
        assert!(e.iterations > 0 && e.candidates_tried >= 2, "{e:?}");
    }

    // The freshly calibrated db now resolves "auto" solves.
    let reply = post(
        addr,
        "/v1/solve",
        r#"{"zones": 1, "steps": 1, "schedule": "auto"}"#,
    );
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(
        reply
            .json()
            .get("tuned")
            .unwrap()
            .get("source")
            .and_then(Json::as_str),
        Some("tune-db")
    );
    server.shutdown();
}

#[test]
fn job_gated_calibration_reproduces_its_decisions() {
    // With the job-gate hook installed the calibration selects winners
    // structurally — two runs must produce the same decisions.
    let server = Server::start(ServerConfig {
        workers: 2,
        shards: 1,
        job_gate: Some(Arc::new(Mutex::new(()))),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    let spec = r#"{"zones": 1, "steps": 1, "trials": 1}"#;

    let mut dbs = Vec::new();
    for _ in 0..2 {
        let reply = post(addr, "/v1/tune", spec);
        assert_eq!(reply.status, 200, "{}", reply.body);
        assert_eq!(
            reply.json().get("deterministic").and_then(Json::as_bool),
            Some(true)
        );
        wait_until("calibration ready", || {
            get(addr, "/v1/tune")
                .json()
                .get("status")
                .and_then(Json::as_str)
                == Some("ready")
        });
        let doc = get(addr, "/v1/tune").json();
        dbs.push(TuneDb::from_json(doc.get("db").unwrap()).unwrap());
    }
    assert!(
        dbs[0].same_decisions(&dbs[1]),
        "job-gated calibrations diverged:\n{}\nvs\n{}",
        dbs[0].to_json().to_pretty_string(),
        dbs[1].to_json().to_pretty_string()
    );
    server.shutdown();
}

#[test]
fn malformed_schedule_bodies_name_the_offender() {
    let server = small_server();
    let addr = server.addr();
    // The 400 bodies carry Policy::parse's diagnostics: the offending
    // token and the accepted set, not just "bad request".
    let error = |body: &str| {
        let reply = post(addr, "/v1/solve", body);
        assert_eq!(reply.status, 400, "{body}");
        reply
            .json()
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .to_string()
    };
    let msg = error(r#"{"schedule": "fifo"}"#);
    assert!(msg.contains("\"fifo\""), "{msg}");
    assert!(
        msg.contains("static") && msg.contains("dynamic") && msg.contains("guided"),
        "{msg}"
    );
    let msg = error(r#"{"schedule": "static", "chunk": 4}"#);
    assert!(msg.contains("chunk 4"), "{msg}");
    let msg = error(r#"{"schedule": "dynamic", "chunk": 0}"#);
    assert!(msg.contains("chunk 0") && msg.contains("positive"), "{msg}");
    let msg = error(r#"{"schedule": "auto", "chunk": 2}"#);
    assert!(msg.contains("auto") && msg.contains("chunk 2"), "{msg}");
    server.shutdown();
}

#[test]
fn panicking_job_gets_500_and_the_shard_recovers() {
    let fault = Arc::new(AtomicBool::new(true));
    let server = Server::start(ServerConfig {
        workers: 1,
        shards: 1,
        job_fault: Some(Arc::clone(&fault)),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    let reply = post(addr, "/v1/solve", r#"{"zones": 1, "steps": 1}"#);
    assert_eq!(reply.status, 500, "{}", reply.body);
    assert!(
        reply
            .json()
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("panicked"),
        "{}",
        reply.body
    );
    assert_eq!(metric(addr, "executor_panics_total"), 1);

    // The same shard keeps serving, and its recorder was reset: the
    // next report covers exactly the next run.
    fault.store(false, Ordering::SeqCst);
    let reply = post(addr, "/v1/solve", r#"{"zones": 1, "steps": 1}"#);
    assert_eq!(reply.status, 200, "{}", reply.body);
    let served = reply.json();
    let sync_events = served.get("sync_events").unwrap().as_u64().unwrap();
    assert_eq!(
        served
            .get("report")
            .unwrap()
            .get("sync_events")
            .and_then(Json::as_u64),
        Some(sync_events)
    );
    assert_eq!(metric(addr, "executor_busy"), 0);
    server.shutdown();
}

#[test]
fn oversubscribed_solve_reports_the_worker_clamp() {
    // Two width-1 shards: a request for 2 workers is clamped to its
    // shard's width, and the report says so.
    let server = Server::start(ServerConfig {
        workers: 2,
        shards: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let reply = post(
        server.addr(),
        "/v1/solve",
        r#"{"zones": 1, "steps": 1, "workers": 2}"#,
    );
    assert_eq!(reply.status, 200, "{}", reply.body);
    let report = reply.json().get("report").unwrap().clone();
    assert_eq!(report.get("workers").and_then(Json::as_u64), Some(1));
    assert_eq!(
        report.get("requested_workers").and_then(Json::as_u64),
        Some(2)
    );
    server.shutdown();

    // On a single full-width shard the same request is not clamped and
    // the report stays silent about it.
    let server = Server::start(ServerConfig {
        workers: 2,
        shards: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let reply = post(
        server.addr(),
        "/v1/solve",
        r#"{"zones": 1, "steps": 1, "workers": 2}"#,
    );
    assert_eq!(reply.status, 200, "{}", reply.body);
    let report = reply.json().get("report").unwrap().clone();
    assert_eq!(report.get("workers").and_then(Json::as_u64), Some(2));
    assert!(report.get("requested_workers").is_none());
    server.shutdown();
}

#[test]
fn retry_after_grows_while_the_executor_is_stalled() {
    let gate = Arc::new(Mutex::new(()));
    let server = Server::start(ServerConfig {
        workers: 1,
        shards: 1,
        queue_capacity: 1,
        job_gate: Some(Arc::clone(&gate)),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    let held = gate.lock().unwrap();
    let first = std::thread::spawn(move || post(addr, "/v1/advise", ADVISE_BODY));
    wait_until("executor busy", || metric(addr, "executor_busy") == 1);
    let second = std::thread::spawn(move || post(addr, "/v1/advise", ADVISE_BODY));
    wait_until("queued job", || metric(addr, "queue_depth") == 1);

    // Nothing has completed since startup, so the drain estimate is
    // stall-driven: successive rejections never promise a shorter wait,
    // and letting the stall age past a second must raise the estimate
    // above the old hard-coded floor of 1.
    let early = retry_after(&post(addr, "/v1/advise", ADVISE_BODY));
    std::thread::sleep(Duration::from_millis(1200));
    let late = retry_after(&post(addr, "/v1/advise", ADVISE_BODY));
    assert!(late >= early, "Retry-After shrank during a stall");
    assert!(late >= 2, "stalled estimate should exceed one second");

    drop(held);
    assert_eq!(first.join().unwrap().status, 200);
    assert_eq!(second.join().unwrap().status, 200);
    server.shutdown();
}

/// Fetch a solve's trace id, asserting the solve succeeded.
fn solve_trace_id(addr: SocketAddr, body: &str) -> u64 {
    let reply = post(addr, "/v1/solve", body);
    assert_eq!(reply.status, 200, "{}", reply.body);
    reply
        .json()
        .get("trace_id")
        .and_then(Json::as_u64)
        .expect("flight-instrumented solve advertises a trace_id")
}

#[test]
fn solve_trace_attribution_agrees_with_the_model() {
    let server = small_server();
    let addr = server.addr();

    // Wall-clock waits on a loaded single-CPU host can skew any one
    // run arbitrarily, so the Table-1 agreement check gets a few
    // solves; the structural assertions must hold on every one.
    let mut agreed = false;
    let mut last_doc = Json::Null;
    for _ in 0..3 {
        // Bypass the solve cache: each attempt must really execute to
        // produce a fresh flight trace.
        let id = solve_trace_id(
            addr,
            r#"{"zones": 2, "steps": 3, "workers": 2, "cache": "bypass"}"#,
        );

        let reply = get(addr, &format!("/v1/trace/{id}"));
        assert_eq!(reply.status, 200, "{}", reply.body);
        let doc = reply.json();
        assert_eq!(doc.get("trace_id").and_then(Json::as_u64), Some(id));
        assert_eq!(
            doc.get("case").and_then(Json::as_str),
            Some("service/z2s3w2")
        );

        // The attribution fractions cover the busy time exactly.
        let attr = doc.get("attribution").expect("attribution document");
        let fraction = |key: &str| attr.get(key).and_then(Json::as_f64).unwrap();
        let total = fraction("compute_fraction")
            + fraction("barrier_fraction")
            + fraction("claim_fraction");
        assert!((total - 1.0).abs() < 1e-9, "fractions sum to {total}");
        assert!(fraction("compute_fraction") > 0.0);

        // The measured-vs-modeled check ran: the model plugs the
        // measured mean sync cost into perfmodel's Table 1 machinery.
        let check = attr.get("model_check").expect("model check present");
        let measured = check
            .get("measured_fraction")
            .and_then(Json::as_f64)
            .unwrap();
        let modeled = check
            .get("modeled_fraction")
            .and_then(Json::as_f64)
            .unwrap();
        assert!(measured > 0.0 && measured.is_finite());
        assert!(modeled > 0.0 && modeled.is_finite());

        // Per-kernel: at least one kernel's measured overhead agrees
        // with the modeled overhead within the documented factor-of-3
        // tolerance (the acceptance check tying the flight recorder to
        // Table 1).
        let kernels = doc.get("kernels").and_then(Json::as_array).unwrap();
        assert!(!kernels.is_empty(), "run must attribute to kernels");
        agreed = kernels.iter().any(|k| {
            let m = k
                .get("overhead_measured")
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            let p = k
                .get("overhead_modeled")
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            m > 0.0 && p > 0.0 && m / p <= 3.0 && p / m <= 3.0
        });
        last_doc = doc;
        if agreed {
            break;
        }
    }
    assert!(
        agreed,
        "no kernel within the documented 3x tolerance in any run: {}",
        last_doc.to_pretty_string()
    );
    server.shutdown();
}

#[test]
fn solve_trace_chrome_download_is_valid_and_monotone() {
    let server = small_server();
    let addr = server.addr();
    let id = solve_trace_id(
        addr,
        r#"{"zones": 2, "steps": 2, "workers": 2, "schedule": "dynamic", "chunk": 2}"#,
    );

    let reply = get(addr, &format!("/v1/trace/{id}?trace=chrome"));
    assert_eq!(reply.status, 200, "{}", reply.body);
    let doc = reply.json();
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
    assert!(events.len() > 4, "trace should carry real slices");
    // `ts` is monotone per worker track — what chrome://tracing needs.
    let mut last: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for e in events {
        if e.get("ph").and_then(Json::as_str) == Some("M") {
            continue;
        }
        let tid = e.get("tid").and_then(Json::as_u64).unwrap();
        let ts = e.get("ts").and_then(Json::as_f64).unwrap();
        if let Some(&prev) = last.get(&tid) {
            assert!(ts >= prev, "tid {tid}: ts {ts} < {prev}");
        }
        last.insert(tid, ts);
    }
    // The summary block makes the download self-describing.
    assert!(doc.get("summary").is_some());
    server.shutdown();
}

#[test]
fn trace_endpoint_rejects_unknowns_cleanly() {
    let server = small_server();
    let addr = server.addr();

    assert_eq!(get(addr, "/v1/trace/999999").status, 404);
    assert_eq!(get(addr, "/v1/trace/abc").status, 400);
    assert_eq!(
        send_raw(
            addr,
            "POST /v1/trace/1 HTTP/1.1\r\nConnection: close\r\nContent-Length: 0\r\n\r\n"
        )
        .status,
        405
    );
    let id = solve_trace_id(addr, r#"{"zones": 1, "steps": 1, "cache": "bypass"}"#);
    assert_eq!(get(addr, &format!("/v1/trace/{id}?trace=svg")).status, 400);
    // Every error body is JSON with an `error` key.
    assert!(get(addr, "/v1/trace/999999").json().get("error").is_some());

    // Trace ids are unique across solves (bypass: a cache hit would
    // serve the stored body, which carries no fresh trace).
    let other = solve_trace_id(addr, r#"{"zones": 1, "steps": 1, "cache": "bypass"}"#);
    assert_ne!(id, other);
    // The trace endpoint has its own request counter.
    let metrics = get(addr, "/metrics?format=json").json();
    let traces = metrics
        .get("endpoints")
        .unwrap()
        .get("trace")
        .and_then(Json::as_u64)
        .unwrap();
    assert!(traces >= 4);
    server.shutdown();
}

#[test]
fn metrics_histograms_fill_under_traffic() {
    let server = small_server();
    let addr = server.addr();
    let reply = post(addr, "/v1/solve", r#"{"zones": 1, "steps": 1}"#);
    assert_eq!(reply.status, 200);
    let _ = get(addr, "/metrics");

    let metrics = get(addr, "/metrics?format=json").json();
    let latency = metrics.get("latency_ms").expect("latency histogram");
    assert!(latency.get("count").and_then(Json::as_u64).unwrap() >= 2);
    assert!(latency.get("p50").unwrap().as_f64().is_some());
    let buckets = latency.get("buckets").and_then(Json::as_array).unwrap();
    assert_eq!(
        buckets.last().unwrap().get("le").and_then(Json::as_str),
        Some("+Inf")
    );
    // Cumulative counts are non-decreasing.
    let counts: Vec<u64> = buckets
        .iter()
        .map(|b| b.get("count").and_then(Json::as_u64).unwrap())
        .collect();
    assert!(counts.windows(2).all(|w| w[0] <= w[1]));

    let depths = metrics.get("queue_depths").expect("queue-depth histogram");
    assert!(depths.get("count").and_then(Json::as_u64).unwrap() >= 1);
    server.shutdown();
}

#[test]
fn stress_small_shard_slices_under_concurrent_load() {
    // A repeat-run stress smoke: many small mixed requests against
    // width-1 shards, asserting every reply is well-formed and the
    // exact-counter invariant survives the churn.
    let server = Server::start(ServerConfig {
        workers: 2,
        shards: 2,
        queue_capacity: 16,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    let clients: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let mut ok = 0u64;
                for i in 0..5 {
                    let reply = if (t + i) % 2 == 0 {
                        post(
                            addr,
                            "/v1/solve",
                            r#"{"zones": 1, "steps": 1, "workers": 2, "schedule": "dynamic", "cache": "bypass"}"#,
                        )
                    } else {
                        post(addr, "/v1/advise", ADVISE_BODY)
                    };
                    assert!(
                        matches!(reply.status, 200 | 429 | 503),
                        "unexpected status {}: {}",
                        reply.status,
                        reply.body
                    );
                    if reply.status == 200 {
                        ok += 1;
                    }
                }
                ok
            })
        })
        .collect();
    let ok: u64 = clients.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(ok > 0, "no request survived the stress run");

    wait_until("queue drained", || {
        metric(addr, "queue_depth") == 0 && metric(addr, "executor_busy") == 0
    });
    // Executors may finish jobs whose clients already timed out, so
    // jobs_total can exceed the 200s — but never the submissions.
    let jobs = metric(addr, "jobs_total");
    assert!(jobs >= ok && jobs <= 20, "jobs_total = {jobs}, ok = {ok}");
    // Solve work flowed through both shard slices concurrently, yet the
    // pool counter and the folded span reports agree exactly.
    assert_eq!(
        metric(addr, "pool_sync_events_total"),
        metric(addr, "obs_sync_events_total")
    );
    assert_eq!(metric(addr, "executor_panics_total"), 0);
    server.shutdown();
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let server = small_server();
    let addr = server.addr();
    let mut client = Client::connect(addr);

    // Mixed traffic — inline queries and pool-backed jobs — all on the
    // same socket, each response marked keep-alive.
    for _ in 0..3 {
        let reply = client.get("/metrics");
        assert_eq!(reply.status, 200);
        assert_eq!(reply.header("Connection"), Some("keep-alive"));
    }
    let solve = client.post("/v1/solve", r#"{"zones": 1, "steps": 2}"#);
    assert_eq!(solve.status, 200, "{}", solve.body);
    assert_eq!(solve.header("Connection"), Some("keep-alive"));
    let advise = client.post("/v1/advise", ADVISE_BODY);
    assert_eq!(advise.status, 200, "{}", advise.body);

    // Even error responses keep a framed connection alive...
    let missing = client.get("/nope");
    assert_eq!(missing.status, 404);
    assert_eq!(missing.header("Connection"), Some("keep-alive"));
    let after = client.get("/metrics");
    assert_eq!(after.status, 200);

    // ...and the whole exchange used exactly one connection (plus the
    // one-shot /metrics probe below).
    assert_eq!(metric(addr, "open_connections"), 2);

    // `Connection: close` is honored: the response says close and the
    // server hangs up.
    client.send("GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    let last = client.read_reply();
    assert_eq!(last.status, 200);
    assert_eq!(last.header("Connection"), Some("close"));
    let mut rest = Vec::new();
    client.stream.read_to_end(&mut rest).expect("read EOF");
    assert!(rest.is_empty(), "no bytes may follow a close response");
    server.shutdown();
}

#[test]
fn pipelined_requests_answer_in_order() {
    let server = small_server();
    let addr = server.addr();
    let mut client = Client::connect(addr);

    // Three requests written back-to-back before reading anything; the
    // responses come back in order, one per request.
    client.send(concat!(
        "GET /metrics?format=json HTTP/1.1\r\nHost: t\r\n\r\n",
        "GET /v1/model/stairstep?units=15&processors=4 HTTP/1.1\r\nHost: t\r\n\r\n",
        "POST /v1/solve HTTP/1.1\r\nHost: t\r\nContent-Length: 24\r\n\r\n{\"zones\": 1, \"steps\": 1}",
    ));
    let metrics = client.read_reply();
    assert_eq!(metrics.status, 200);
    assert!(metrics.json().get("jobs_total").is_some());
    let model = client.read_reply();
    assert_eq!(model.status, 200);
    assert!(model.json().get("points").is_some());
    let solve = client.read_reply();
    assert_eq!(solve.status, 200, "{}", solve.body);
    assert!(solve.json().get("checksums").is_some());
    server.shutdown();
}

#[test]
fn identical_concurrent_solves_coalesce_into_one_execution() {
    let gate = Arc::new(Mutex::new(()));
    let server = Server::start(ServerConfig {
        workers: 2,
        shards: 1,
        queue_capacity: 4,
        job_gate: Some(Arc::clone(&gate)),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    const BODY: &str = r#"{"zones": 2, "steps": 2, "workers": 2}"#;
    const N: usize = 4;

    // Pin the executor at the gate so all N identical solves are in
    // flight together: the first is admitted as the miss, the rest
    // coalesce onto its in-flight entry.
    let held = gate.lock().unwrap();
    let clients: Vec<_> = (0..N)
        .map(|_| std::thread::spawn(move || post(addr, "/v1/solve", BODY)))
        .collect();
    wait_until("executor busy", || metric(addr, "executor_busy") == 1);
    wait_until("waiters coalesced", || {
        cache_metric(addr, "coalesced") == (N - 1) as u64
    });
    assert_eq!(cache_metric(addr, "misses"), 1);
    drop(held);

    let replies: Vec<Reply> = clients.into_iter().map(|h| h.join().unwrap()).collect();
    // Exactly ONE execution served all N requesters...
    assert_eq!(metric(addr, "jobs_total"), 1);
    // ...and every response is byte-identical modulo its trace_id.
    let mut masked: Vec<String> = Vec::new();
    let mut trace_ids: Vec<u64> = Vec::new();
    for reply in &replies {
        assert_eq!(reply.status, 200, "{}", reply.body);
        assert_eq!(
            reply.json().get("cache").and_then(Json::as_str),
            Some("miss")
        );
        trace_ids.push(
            reply
                .json()
                .get("trace_id")
                .and_then(Json::as_u64)
                .expect("each waiter gets its own trace"),
        );
        masked.push(mask_trace_id(&reply.body));
    }
    assert!(masked.windows(2).all(|w| w[0] == w[1]), "fan-out diverged");
    trace_ids.sort_unstable();
    trace_ids.dedup();
    assert_eq!(trace_ids.len(), N, "trace ids must be distinct per waiter");

    // A later identical solve is a pure cache hit: no execution, no
    // fresh trace, marked "hit".
    let hit = post(addr, "/v1/solve", BODY);
    assert_eq!(hit.status, 200, "{}", hit.body);
    assert_eq!(hit.json().get("cache").and_then(Json::as_str), Some("hit"));
    assert!(matches!(hit.json().get("trace_id"), Some(Json::Null)));
    assert_eq!(metric(addr, "jobs_total"), 1, "a hit must not execute");
    assert_eq!(cache_metric(addr, "hits"), 1);
    assert_eq!(cache_metric(addr, "entries"), 1);

    // And the cached body is bit-exact with a forced re-execution:
    // every numeric field of the hit equals the bypass run's.
    let bypass = post(
        addr,
        "/v1/solve",
        r#"{"zones": 2, "steps": 2, "workers": 2, "cache": "bypass"}"#,
    );
    assert_eq!(bypass.status, 200, "{}", bypass.body);
    assert_eq!(
        bypass.json().get("cache").and_then(Json::as_str),
        Some("bypass")
    );
    assert_eq!(metric(addr, "jobs_total"), 2, "bypass must execute");
    assert_eq!(cache_metric(addr, "bypass"), 1);
    let hit_json = hit.json();
    let bypass_json = bypass.json();
    for field in ["residuals", "forces", "checksums", "sync_events"] {
        assert_eq!(
            hit_json.get(field).unwrap().to_string(),
            bypass_json.get(field).unwrap().to_string(),
            "cached `{field}` diverged from a fresh execution"
        );
    }
    server.shutdown();
}

#[test]
fn retry_after_is_monotone_on_a_kept_alive_connection() {
    // Satellite regression: Retry-After used to assume one queued
    // connection per blocked thread; with keep-alive one connection can
    // observe many successive rejections, and those must never promise
    // a shorter wait while the executor is stalled.
    let gate = Arc::new(Mutex::new(()));
    let server = Server::start(ServerConfig {
        workers: 1,
        shards: 1,
        queue_capacity: 1,
        job_gate: Some(Arc::clone(&gate)),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    let held = gate.lock().unwrap();
    let first = std::thread::spawn(move || post(addr, "/v1/advise", ADVISE_BODY));
    wait_until("executor busy", || metric(addr, "executor_busy") == 1);
    let second = std::thread::spawn(move || post(addr, "/v1/advise", ADVISE_BODY));
    wait_until("queued job", || metric(addr, "queue_depth") == 1);

    let mut client = Client::connect(addr);
    let mut estimates = Vec::new();
    for _ in 0..3 {
        let reply = client.post("/v1/advise", ADVISE_BODY);
        assert_eq!(reply.status, 429, "{}", reply.body);
        assert_eq!(
            reply.header("Connection"),
            Some("keep-alive"),
            "rejections must not cost the client its connection"
        );
        estimates.push(retry_after(&reply));
        std::thread::sleep(Duration::from_millis(600));
    }
    assert!(
        estimates.windows(2).all(|w| w[0] <= w[1]),
        "Retry-After shrank during a stall: {estimates:?}"
    );
    assert!(
        *estimates.last().unwrap() >= 2,
        "a stall past one second must raise the estimate: {estimates:?}"
    );

    drop(held);
    assert_eq!(first.join().unwrap().status, 200);
    assert_eq!(second.join().unwrap().status, 200);
    server.shutdown();
}

// ------------------------------------------------------------ telemetry

/// Extract one unlabeled sample value from a Prometheus exposition
/// body. `series` may include a label set (`name{label="v"}`); the
/// value is whatever follows the single space after it.
fn prom_value(text: &str, series: &str) -> f64 {
    text.lines()
        .find_map(|l| {
            l.strip_prefix(series)
                .and_then(|rest| rest.strip_prefix(' '))
        })
        .unwrap_or_else(|| panic!("exposition has no `{series}`"))
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("`{series}` value is not a number"))
}

/// Sum the per-status response counters out of an exposition body.
fn prom_status_sum(text: &str) -> f64 {
    serve::metrics::TRACKED_STATUSES
        .iter()
        .map(|s| prom_value(text, &format!("llpd_responses_total{{status=\"{s}\"}}")))
        .sum()
}

#[test]
fn metrics_defaults_to_prometheus_and_negotiates_json() {
    let server = small_server();
    let addr = server.addr();
    assert_eq!(
        post(addr, "/v1/solve", r#"{"zones": 1, "steps": 1}"#).status,
        200
    );

    // Default: the text exposition format, with typed families, labeled
    // series, and cumulative histogram buckets ending at +Inf.
    let prom = get(addr, "/metrics");
    assert_eq!(prom.status, 200);
    assert!(
        prom.header("Content-Type")
            .unwrap()
            .starts_with("text/plain; version=0.0.4"),
        "{:?}",
        prom.header("Content-Type")
    );
    assert!(prom.body.contains("# TYPE llpd_requests_total counter"));
    assert!(prom
        .body
        .contains("# TYPE llpd_request_latency_ms histogram"));
    assert!(prom
        .body
        .contains("llpd_request_latency_ms_bucket{le=\"+Inf\"}"));
    assert!(prom.body.contains("llpd_responses_total{status=\"200\"}"));
    assert!(prom
        .body
        .contains("llpd_solves_by_schedule_total{schedule=\"static\"}"));
    assert!(prom
        .body
        .contains("llpd_kernel_seconds_total{kernel=\"rhs\"}"));
    assert_eq!(prom_value(&prom.body, "llpd_jobs_total"), 1.0);

    // An Accept: application/json header selects the JSON body on the
    // bare path — existing JSON consumers keep working.
    let via_accept = send_raw(
        addr,
        "GET /metrics HTTP/1.1\r\nHost: t\r\nAccept: application/json\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(via_accept.status, 200);
    assert_eq!(via_accept.header("Content-Type"), Some("application/json"));
    assert!(via_accept.json().get("jobs_total").is_some());

    // ?format=json needs no header; ?format=prometheus wins over the
    // Accept header; unknown formats are a clean 400.
    let json = get(addr, "/metrics?format=json");
    assert_eq!(json.header("Content-Type"), Some("application/json"));
    assert!(json.json().get("jobs_total").is_some());
    let forced = send_raw(
        addr,
        "GET /metrics?format=prometheus HTTP/1.1\r\nHost: t\r\nAccept: application/json\r\nConnection: close\r\n\r\n",
    );
    assert!(forced.body.contains("# TYPE llpd_requests_total counter"));
    assert_eq!(get(addr, "/metrics?format=xml").status, 400);
    server.shutdown();
}

#[test]
fn health_and_stats_expose_the_telemetry_windows() {
    let server = Server::start(ServerConfig {
        workers: 2,
        telemetry_window_ms: 50,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    assert_eq!(
        post(addr, "/v1/solve", r#"{"zones": 1, "steps": 1}"#).status,
        200
    );

    let health = get(addr, "/v1/health").json();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(health.get("telemetry"), Some(&Json::Bool(true)));
    assert!(
        matches!(health.get("stale_kernels"), Some(Json::Array(a)) if a.is_empty()),
        "no tune db, nothing can be stale"
    );
    assert!(health.get("drift").is_some());

    // Windows seal on the event-loop poll tick.
    wait_until("a telemetry window sealed", || {
        get(addr, "/v1/health")
            .json()
            .get("windows_sealed")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    });
    let stats = get(addr, "/v1/stats?windows=4").json();
    assert_eq!(
        stats.get("telemetry").and_then(Json::as_str),
        Some("enabled")
    );
    let series = stats.get("series").expect("series block");
    assert_eq!(series.get("schema_version").and_then(Json::as_u64), Some(1));
    assert_eq!(series.get("window_ms").and_then(Json::as_u64), Some(50));
    let windows = series.get("windows").and_then(Json::as_array).unwrap();
    assert!(!windows.is_empty() && windows.len() <= 4);
    for w in windows {
        assert!(w.get("requests").and_then(Json::as_u64).is_some());
        assert!(w.get("latency_ms").is_some());
        assert!(w.get("cache").is_some());
    }

    // Query and method validation.
    assert_eq!(get(addr, "/v1/stats?windows=0").status, 400);
    assert_eq!(get(addr, "/v1/stats?bogus=1").status, 400);
    for path in ["/v1/stats", "/v1/health"] {
        let reply = send_raw(
            addr,
            &format!("POST {path} HTTP/1.1\r\nConnection: close\r\nContent-Length: 0\r\n\r\n"),
        );
        assert_eq!(reply.status, 405, "{path}");
    }
    server.shutdown();
}

#[test]
fn disabled_telemetry_reports_itself_cleanly() {
    let server = Server::start(ServerConfig {
        workers: 1,
        telemetry_window_ms: 0,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    assert_eq!(
        post(addr, "/v1/solve", r#"{"zones": 1, "steps": 1}"#).status,
        200
    );
    let stats = get(addr, "/v1/stats").json();
    assert_eq!(
        stats.get("telemetry").and_then(Json::as_str),
        Some("disabled")
    );
    assert!(matches!(stats.get("series"), Some(Json::Null)));
    let health = get(addr, "/v1/health").json();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(health.get("telemetry"), Some(&Json::Bool(false)));
    assert_eq!(health.get("windows_sealed").and_then(Json::as_u64), Some(0));
    server.shutdown();
}

#[test]
fn drain_snapshot_keeps_requests_served_moments_before_shutdown() {
    // A window far longer than the test guarantees nothing seals while
    // serving: the drain's force-seal is the only way these requests
    // become visible. This is the regression the satellite fixed —
    // telemetry from the final partial window used to vanish.
    let server = Server::start(ServerConfig {
        workers: 2,
        telemetry_window_ms: 60_000,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    assert_eq!(
        post(addr, "/v1/solve", r#"{"zones": 1, "steps": 1}"#).status,
        200
    );
    assert_eq!(get(addr, "/metrics").status, 200);

    let snapshot = server.shutdown_with_telemetry();
    assert_eq!(
        snapshot.get("event").and_then(Json::as_str),
        Some("llpd.drain")
    );
    let series = snapshot.get("series").expect("series");
    let windows = series.get("windows").and_then(Json::as_array).unwrap();
    let requests: u64 = windows
        .iter()
        .map(|w| w.get("requests").and_then(Json::as_u64).unwrap())
        .sum();
    assert!(requests >= 2, "drain snapshot dropped requests: {requests}");
    let solves: u64 = windows
        .iter()
        .map(|w| w.get("solves").and_then(Json::as_u64).unwrap())
        .sum();
    assert_eq!(solves, 1);
    assert!(snapshot.get("drift").is_some());
    assert!(snapshot.get("stale_kernels").is_some());
}

#[test]
fn prometheus_counters_stay_consistent_under_concurrent_scrapes() {
    let server = Server::start(ServerConfig {
        workers: 2,
        shards: 2,
        queue_capacity: 16,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    // A background client keeps solves in flight while the main thread
    // scrapes; bypass defeats the cache so executions overlap scrapes.
    let stop = Arc::new(AtomicBool::new(false));
    let load = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut sent = 0u64;
            while !stop.load(Ordering::SeqCst) {
                let reply = post(
                    addr,
                    "/v1/solve",
                    r#"{"zones": 1, "steps": 1, "cache": "bypass"}"#,
                );
                assert!(
                    matches!(reply.status, 200 | 429 | 503),
                    "unexpected status {}: {}",
                    reply.status,
                    reply.body
                );
                sent += 1;
            }
            sent
        })
    };

    let mut last_requests = 0.0;
    let mut last_sum = 0.0;
    for _ in 0..15 {
        let prom = get(addr, "/metrics");
        assert_eq!(prom.status, 200);
        let requests = prom_value(&prom.body, "llpd_requests_total");
        let sum = prom_status_sum(&prom.body);
        // Counters are monotone across scrapes...
        assert!(requests >= last_requests, "{requests} < {last_requests}");
        assert!(sum >= last_sum, "{sum} < {last_sum}");
        // ...and a request is counted at routing, its response at
        // completion, so mid-flight the routed count only ever leads.
        assert!(
            requests >= sum,
            "responses outran requests: {requests} < {sum}"
        );
        (last_requests, last_sum) = (requests, sum);
    }
    stop.store(true, Ordering::SeqCst);
    assert!(
        load.join().unwrap() > 0,
        "no load flowed during the scrapes"
    );

    wait_until("queue drained", || {
        metric(addr, "queue_depth") == 0 && metric(addr, "executor_busy") == 0
    });
    // Quiescent: every routed request has recorded its response except
    // the final scrape itself, counted at route time but rendered
    // before its own response exists.
    let prom = get(addr, "/metrics");
    let requests = prom_value(&prom.body, "llpd_requests_total");
    let sum = prom_status_sum(&prom.body);
    assert!(
        (requests - (sum + 1.0)).abs() < f64::EPSILON,
        "quiescent mismatch: requests_total={requests}, sum over statuses={sum}"
    );
    server.shutdown();
}

#[test]
fn shutdown_closes_idle_keep_alive_connections() {
    let server = small_server();
    let addr = server.addr();

    // An idle keep-alive connection must not hold up a drain.
    let mut client = Client::connect(addr);
    assert_eq!(client.get("/metrics").status, 200);
    let start = Instant::now();
    server.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "drain hung on an idle keep-alive connection"
    );
    // The server hung up on the idle connection during the drain.
    let mut rest = Vec::new();
    client.stream.read_to_end(&mut rest).expect("read EOF");
    assert!(rest.is_empty());
}

// ------------------------------------------------------- multi-physics

#[test]
fn fdtd_solve_round_trips_and_caches() {
    let case = fdtd::FdtdCase {
        size: 16,
        steps: 4,
        workers: 2,
        schedule: Policy::Static,
        vector_width: 1,
    };
    let direct = fdtd::service::run(&case, &llp::Workers::recorded(2)).unwrap();

    let server = Server::start(ServerConfig {
        workers: 2,
        shards: 1,
        telemetry_window_ms: 50,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    let body = r#"{"solver": "fdtd", "size": 16, "steps": 4, "workers": 2}"#;

    let reply = post(addr, "/v1/solve", body);
    assert_eq!(reply.status, 200, "{}", reply.body);
    let served = reply.json();
    assert_eq!(served.get("solver").and_then(Json::as_str), Some("fdtd"));
    assert_eq!(served.get("cache").and_then(Json::as_str), Some("miss"));
    let energy: Vec<f64> = served
        .get("energy")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|e| e.as_f64().unwrap())
        .collect();
    assert_eq!(energy, direct.energy, "served energy history is bit-exact");
    let checksums = served.get("checksums").and_then(Json::as_array).unwrap();
    assert_eq!(checksums.len(), direct.checksums.len());
    for (served_field, direct_field) in checksums.iter().zip(&direct.checksums) {
        assert_eq!(
            served_field.get("field").and_then(Json::as_str),
            Some(direct_field.field.as_str())
        );
        assert_eq!(
            served_field.get("sum").and_then(Json::as_f64),
            Some(direct_field.sum)
        );
    }
    assert!(served.get("sync_events").and_then(Json::as_u64).unwrap() > 0);

    // An identical request is a cache hit — no re-execution.
    let repeat = post(addr, "/v1/solve", body);
    assert_eq!(repeat.status, 200);
    assert_eq!(
        repeat.json().get("cache").and_then(Json::as_str),
        Some("hit")
    );
    let hits = get(addr, "/metrics?format=json")
        .json()
        .get("cache")
        .and_then(|c| c.get("hits").and_then(Json::as_u64));
    assert_eq!(hits, Some(1));

    // Both physics tick their own per-solver counter series.
    assert_eq!(post(addr, "/v1/solve", r#"{"zones": 1, "steps": 1}"#).status, 200);
    let by_solver = get(addr, "/metrics?format=json")
        .json()
        .get("solves_by_solver")
        .cloned()
        .expect("/metrics has `solves_by_solver`");
    assert_eq!(by_solver.get("fdtd").and_then(Json::as_u64), Some(1));
    assert_eq!(by_solver.get("f3d").and_then(Json::as_u64), Some(1));
    let prom = get(addr, "/metrics").body;
    assert_eq!(
        prom_value(&prom, "llpd_solves_by_solver_total{solver=\"fdtd\"}"),
        1.0
    );
    assert_eq!(
        prom_value(&prom, "llpd_solves_by_solver_total{solver=\"f3d\"}"),
        1.0
    );

    // The telemetry windows carry a per-solver pseudo-kernel series.
    wait_until("fdtd series in /v1/stats", || {
        get(addr, "/v1/stats").body.contains("solver/fdtd")
    });
    server.shutdown();
}

#[test]
fn fdtd_tune_calibrates_and_auto_solves_bit_exact() {
    let server = Server::start(ServerConfig {
        workers: 2,
        shards: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    // Querying an unregistered solver's tune slot is a 400.
    assert_eq!(get(addr, "/v1/tune?solver=mhd").status, 400);
    assert_eq!(get(addr, "/v1/tune?bogus=1").status, 400);
    // The fdtd slot starts untuned even after f3d would be seeded.
    let idle = get(addr, "/v1/tune?solver=fdtd").json();
    assert_eq!(idle.get("solver").and_then(Json::as_str), Some("fdtd"));
    assert_eq!(idle.get("status").and_then(Json::as_str), Some("idle"));

    let started = post(
        addr,
        "/v1/tune",
        r#"{"solver": "fdtd", "zones": 1, "steps": 1, "trials": 1}"#,
    );
    assert_eq!(started.status, 200, "{}", started.body);
    assert_eq!(
        started.json().get("solver").and_then(Json::as_str),
        Some("fdtd")
    );
    wait_until("fdtd calibration to finish", || {
        get(addr, "/v1/tune?solver=fdtd")
            .json()
            .get("status")
            .and_then(Json::as_str)
            == Some("ready")
    });
    let status = get(addr, "/v1/tune?solver=fdtd").json();
    let db = status.get("db").expect("ready status carries the db");
    assert_eq!(db.get("solver").and_then(Json::as_str), Some("fdtd"));
    let kernels: Vec<&str> = db
        .get("entries")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .filter_map(|e| e.get("kernel").and_then(Json::as_str))
        .collect();
    assert!(kernels.contains(&"update_e") && kernels.contains(&"update_h"));
    // The f3d slot is untouched by an fdtd calibration.
    assert_eq!(
        get(addr, "/v1/tune").json().get("solver").and_then(Json::as_str),
        Some("f3d")
    );

    // An auto fdtd solve resolves the fresh entries and stays bit-exact.
    let case = fdtd::FdtdCase {
        size: 16,
        steps: 3,
        workers: 2,
        schedule: Policy::Static,
        vector_width: 1,
    };
    let direct = fdtd::service::run(&case, &llp::Workers::recorded(2)).unwrap();
    let reply = post(
        addr,
        "/v1/solve",
        r#"{"solver": "fdtd", "size": 16, "steps": 3, "workers": 2, "schedule": "auto"}"#,
    );
    assert_eq!(reply.status, 200, "{}", reply.body);
    let served = reply.json();
    let energy: Vec<f64> = served
        .get("energy")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|e| e.as_f64().unwrap())
        .collect();
    assert_eq!(energy, direct.energy, "tuned fdtd solve is bit-exact");
    let tuned = served.get("tuned").expect("auto solve reports `tuned`");
    assert_eq!(tuned.get("source").and_then(Json::as_str), Some("tune-db"));
    server.shutdown();
}

#[test]
fn memory_budget_rejects_oversized_solves_with_413() {
    // Budget exactly at the size-16 fdtd estimate: that case is
    // admitted, the size-32 one is not.
    let in_budget = (16u64 * 16 * 3 * 8) + 2 * 4096;
    let over = (32u64 * 32 * 3 * 8) + 2 * 4096;
    let server = Server::start(ServerConfig {
        workers: 2,
        shards: 1,
        memory_budget: Some(in_budget),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    let ok = post(
        addr,
        "/v1/solve",
        r#"{"solver": "fdtd", "size": 16, "steps": 2, "workers": 2}"#,
    );
    assert_eq!(ok.status, 200, "at-budget solve must run: {}", ok.body);

    let rejected = post(
        addr,
        "/v1/solve",
        r#"{"solver": "fdtd", "size": 32, "steps": 2, "workers": 2}"#,
    );
    assert_eq!(rejected.status, 413, "{}", rejected.body);
    let body = rejected.json();
    assert_eq!(
        body.get("estimated_bytes").and_then(Json::as_u64),
        Some(over)
    );
    assert_eq!(
        body.get("budget_bytes").and_then(Json::as_u64),
        Some(in_budget)
    );

    // Bypass is not a loophole: the budget gates pool work itself.
    let bypassed = post(
        addr,
        "/v1/solve",
        r#"{"solver": "fdtd", "size": 32, "steps": 2, "workers": 2, "cache": "bypass"}"#,
    );
    assert_eq!(bypassed.status, 413);
    // f3d estimates run through the same gate (a large case blows the
    // small fdtd-scaled budget).
    assert_eq!(
        post(addr, "/v1/solve", r#"{"zones": 4, "steps": 2}"#).status,
        413
    );

    assert_eq!(metric(addr, "solves_rejected_memory_total"), 3);
    let prom = get(addr, "/metrics").body;
    assert_eq!(prom_value(&prom, "llpd_solves_rejected_memory_total"), 3.0);
    // Rejections never consumed an executor.
    assert_eq!(metric(addr, "jobs_total"), 1);
    server.shutdown();
}

#[test]
fn unknown_solver_answers_400_naming_the_registry() {
    let server = small_server();
    let addr = server.addr();
    let reply = post(addr, "/v1/solve", r#"{"solver": "mhd", "size": 16}"#);
    assert_eq!(reply.status, 400);
    assert!(
        reply.body.contains("unknown solver `mhd`")
            && reply.body.contains("f3d")
            && reply.body.contains("fdtd"),
        "error must name the registry: {}",
        reply.body
    );
    // A tune request for an unknown solver is refused the same way.
    let tune = post(addr, "/v1/tune", r#"{"solver": "mhd"}"#);
    assert_eq!(tune.status, 400);
    assert!(tune.body.contains("unknown solver"), "{}", tune.body);
    server.shutdown();
}
