//! Candidate enumeration: the configuration space one kernel's search
//! covers, pruned by the paper's two laws before anything is measured.
//!
//! * **Stair-step pruning** (Table 3): under static-style chunking the
//!   parallel runtime is proportional to `ceil(U/P)`, so two worker
//!   counts with the same ceiling are the same configuration wearing
//!   different price tags. Only the *plateau edges* — the smallest `P`
//!   achieving each distinct `ceil(U/P)` — are worth proposing
//!   ([`perfmodel::plateau_edges`]).
//! * **Minimum-work pruning** (Table 1): a worker count whose
//!   synchronization bill `P·S` exceeds the overhead budget `f·W`
//!   cannot win; [`perfmodel::overhead::OverheadBound::max_processors`]
//!   caps the proposals.
//!
//! The surviving worker counts are crossed with the schedule policies
//! (static, dynamic, guided — small chunk vocabularies, since the
//! service caps loop extents) and with the SLP lane widths
//! ([`f3d::kernels::SUPPORTED_WIDTHS`]) — the paper's loop-level axis
//! times the superword axis, searched as one space because the best
//! `(P, schedule)` can change with the width and vice versa.

use f3d::kernels::SUPPORTED_WIDTHS;
use llp::Policy;
use perfmodel::stairstep::plateau_edges;
use perfmodel::OverheadBound;

/// One point of the search space: a worker count, a policy, and an SLP
/// lane width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Worker count.
    pub workers: usize,
    /// Chunk-scheduling policy.
    pub policy: Policy,
    /// SLP lane width the kernel's variant runs at (bit-exact at every
    /// width, so purely a cost axis).
    pub vector_width: usize,
}

impl Candidate {
    /// The default configuration the search must always include and
    /// compare against: every pool worker, static block scheduling,
    /// the scalar kernel variant.
    #[must_use]
    pub fn default_config(pool_width: usize) -> Self {
        Self {
            workers: pool_width.max(1),
            policy: Policy::Static,
            vector_width: 1,
        }
    }
}

/// Worker counts worth proposing for a loop of `units` iterations on a
/// pool of `pool_width` workers: the stair-step plateau edges — never
/// a `P` where `ceil(units/P)` equals the previous edge's — capped by
/// the Table 1 budget when `bound` is given (`P = 1` always survives;
/// so does `pool_width`, the default config, which the calibration
/// must measure even when the model dislikes it).
///
/// Degenerate inputs never panic: `units == 0` proposes only the
/// serial count `[1]` (there is nothing to split), and `pool_width ==
/// 0` is treated as a 1-wide pool. The plateau scan is bounded by
/// `min(pool_width, units)` — no edge exists past `P = units`, where
/// `ceil(units/P)` has already reached 1 — so an absurd `pool_width`
/// (untrusted input, or a wrapped conversion upstream) costs O(units),
/// not O(pool_width).
#[must_use]
pub fn worker_counts(
    units: u64,
    pool_width: usize,
    bound: Option<(&OverheadBound, u64)>,
) -> Vec<usize> {
    let width = pool_width.max(1);
    if units == 0 {
        return vec![1];
    }
    // Saturating narrowing on both axes: a u64 unit count or a usize
    // pool width beyond u32::MAX clamps instead of wrapping.
    let scan_cap = u32::try_from(units)
        .unwrap_or(u32::MAX)
        .min(u32::try_from(width).unwrap_or(u32::MAX));
    let mut counts: Vec<usize> = plateau_edges(units, scan_cap)
        .into_iter()
        .map(|p| usize::try_from(p).unwrap_or(usize::MAX))
        .collect();
    if let Some((bound, work_cycles)) = bound {
        let cap = usize::try_from(bound.max_processors(work_cycles).max(1)).unwrap_or(usize::MAX);
        counts.retain(|&p| p <= cap);
    }
    if !counts.contains(&1) {
        counts.insert(0, 1);
    }
    if !counts.contains(&width) {
        counts.push(width);
    }
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// One point of the zone-level axis: a way of splitting the pool
/// between the zone level and the loop level, `P ≈ shards ×
/// loop_workers` — the paper's multi-level picture, where zone
/// parallelism multiplies with the loop parallelism under it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneSplit {
    /// Zone shards to dispatch ready zones over.
    pub zone_shards: usize,
    /// Loop workers left to each shard's doacross team.
    pub loop_workers: usize,
}

/// Shard counts worth proposing for a case of `zones` zones on a pool
/// of `pool_width` workers: the stair-step plateau edges of the
/// *zone-level* law (`speedup = U_zones / ceil(U_zones/s)`), each
/// paired with the per-shard worker budget `pool_width / s` — the
/// same pruning [`worker_counts`] applies to loops, lifted one level
/// up. Shard count 1 (the sequential zone order) always survives; it
/// is the degenerate split every other entry is measured against.
///
/// Degenerate inputs never panic: `zones == 0` and `pool_width == 0`
/// both collapse to the single sequential split (`pool_width` treated
/// as 1), and the plateau scan is bounded by `min(pool_width, zones)`
/// for the same reason as in [`worker_counts`].
#[must_use]
pub fn zone_splits(zones: u64, pool_width: usize) -> Vec<ZoneSplit> {
    let width = pool_width.max(1);
    if zones == 0 {
        return vec![ZoneSplit {
            zone_shards: 1,
            loop_workers: width,
        }];
    }
    let max_s = u32::try_from(zones)
        .unwrap_or(u32::MAX)
        .min(u32::try_from(width).unwrap_or(u32::MAX));
    let mut splits: Vec<ZoneSplit> = plateau_edges(zones, max_s)
        .into_iter()
        .map(|s| {
            let zone_shards = usize::try_from(s).unwrap_or(usize::MAX);
            ZoneSplit {
                zone_shards,
                loop_workers: (width / zone_shards.max(1)).max(1),
            }
        })
        .collect();
    if !splits.iter().any(|s| s.zone_shards == 1) {
        splits.insert(
            0,
            ZoneSplit {
                zone_shards: 1,
                loop_workers: width,
            },
        );
    }
    splits
}

/// Enumerate the candidates for one kernel: the pruned worker counts
/// crossed with the policy vocabulary, crossed with the SLP lane
/// widths. Serial (`P = 1`) gets only [`Policy::Static`] — scheduling
/// is meaningless without concurrency — but still every width: the
/// superword axis pays off regardless of worker count (a serial sweep
/// still runs the wide inner loops). Parallel counts get static, unit
/// and coarse dynamic chunks, and guided hand-outs, each at every
/// width. The default configuration is always present.
#[must_use]
pub fn candidates(
    units: u64,
    pool_width: usize,
    bound: Option<(&OverheadBound, u64)>,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    for p in worker_counts(units, pool_width, bound) {
        let policies = if p <= 1 {
            vec![Policy::Static]
        } else {
            let mut policies = vec![Policy::Static, Policy::Dynamic { chunk: 1 }];
            // A coarse dynamic chunk: ~2 hand-outs per worker. The
            // unit count saturates into usize and the divisor guards
            // against overflow, so absurd inputs degrade to chunk 1
            // instead of wrapping.
            let coarse = usize::try_from(units)
                .unwrap_or(usize::MAX)
                .div_ceil(p.saturating_mul(2))
                .max(1);
            if coarse > 1 {
                policies.push(Policy::Dynamic { chunk: coarse });
            }
            policies.push(Policy::Guided { min_chunk: 1 });
            policies
        };
        for policy in policies {
            for vector_width in SUPPORTED_WIDTHS {
                out.push(Candidate {
                    workers: p.max(1),
                    policy,
                    vector_width,
                });
            }
        }
    }
    let default = Candidate::default_config(pool_width);
    if !out.contains(&default) {
        out.push(default);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plateau_pruning_skips_redundant_worker_counts() {
        // U = 10 on an 8-wide pool: ceil(10/P) for P=1..8 is
        // 10,5,4,3,2,2,2,2 — P=6,7,8 duplicate P=5's plateau, so the
        // naive sweep's 8 counts shrink to the 5 edges.
        assert_eq!(worker_counts(10, 8, None), vec![1, 2, 3, 4, 5, 8]);
        // (8 survives only because the default config is kept.)
        let c = candidates(10, 8, None);
        assert!(!c.iter().any(|c| c.workers == 6 || c.workers == 7));
    }

    #[test]
    fn table1_bound_caps_worker_counts() {
        // W = 300k cycles at S = 1k, f = 1%: P·S ≤ f·W caps P at 3.
        let bound = OverheadBound::paper_default(1_000);
        let counts = worker_counts(10, 8, Some((&bound, 300_000)));
        assert!(counts.iter().all(|&p| p <= 3 || p == 8), "{counts:?}");
        // Tiny work: only serial survives (plus the kept default).
        let tiny = worker_counts(10, 8, Some((&bound, 10)));
        assert_eq!(tiny, vec![1, 8]);
    }

    #[test]
    fn zone_splits_cover_the_plateau_edges() {
        // U_zones = 4 on a 4-wide pool: edges s = 1, 2, 4, each with
        // the per-shard leftover of the worker budget.
        let splits = zone_splits(4, 4);
        assert_eq!(
            splits,
            vec![
                ZoneSplit {
                    zone_shards: 1,
                    loop_workers: 4
                },
                ZoneSplit {
                    zone_shards: 2,
                    loop_workers: 2
                },
                ZoneSplit {
                    zone_shards: 4,
                    loop_workers: 1
                },
            ]
        );
        // Shards beyond U_zones never help (ceil(3/s) = 1 from s = 3
        // on), so the edges stop at U_zones even on a wider pool.
        let splits = zone_splits(3, 8);
        assert_eq!(
            splits.iter().map(|s| s.zone_shards).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(
            splits.iter().map(|s| s.loop_workers).collect::<Vec<_>>(),
            vec![8, 4, 2]
        );
        // Degenerate pools and zone counts still propose the
        // sequential split.
        assert_eq!(
            zone_splits(0, 4),
            vec![ZoneSplit {
                zone_shards: 1,
                loop_workers: 4
            }]
        );
        assert_eq!(
            zone_splits(5, 1),
            vec![ZoneSplit {
                zone_shards: 1,
                loop_workers: 1
            }]
        );
        // Every split keeps at least one loop worker.
        for s in zone_splits(64, 6) {
            assert!(s.loop_workers >= 1);
            assert!(s.zone_shards >= 1);
        }
    }

    #[test]
    fn serial_gets_static_only_and_default_is_always_present() {
        let c = candidates(0, 4, None);
        assert!(c.contains(&Candidate::default_config(4)));
        for cand in &c {
            if cand.workers == 1 {
                assert_eq!(cand.policy, Policy::Static);
            }
        }
        // Parallel counts carry the full policy vocabulary.
        let c = candidates(12, 4, None);
        assert!(c
            .iter()
            .any(|c| c.workers == 4 && c.policy == Policy::Dynamic { chunk: 1 }));
        assert!(c
            .iter()
            .any(|c| c.workers == 4 && c.policy == Policy::Guided { min_chunk: 1 }));
        // No duplicates.
        for (i, a) in c.iter().enumerate() {
            assert!(!c[i + 1..].contains(a), "duplicate {a:?}");
        }
    }

    #[test]
    fn every_configuration_comes_at_every_width() {
        // The SLP axis crosses the whole (workers × policy) space:
        // each distinct (workers, policy) pair appears once per
        // supported width — including serial.
        let c = candidates(12, 4, None);
        let mut pairs: Vec<(usize, Policy)> = c.iter().map(|c| (c.workers, c.policy)).collect();
        pairs.sort_by_key(|(w, p)| (*w, format!("{p:?}")));
        pairs.dedup();
        assert_eq!(c.len(), pairs.len() * SUPPORTED_WIDTHS.len());
        for (w, p) in &pairs {
            for vw in SUPPORTED_WIDTHS {
                assert!(
                    c.contains(&Candidate {
                        workers: *w,
                        policy: *p,
                        vector_width: vw
                    }),
                    "missing ({w}, {p:?}) at width {vw}"
                );
            }
        }
        // The default config is the scalar one.
        assert_eq!(Candidate::default_config(4).vector_width, 1);
    }

    #[test]
    fn degenerate_pools_and_overflow_boundaries_never_panic_or_hang() {
        // pool_width == 0: treated as a 1-wide pool, serial only.
        assert_eq!(worker_counts(10, 0, None), vec![1]);
        assert_eq!(worker_counts(0, 0, None), vec![1]);
        let splits = zone_splits(4, 0);
        assert_eq!(splits[0].zone_shards, 1);
        assert_eq!(splits[0].loop_workers, 1);
        assert!(splits.iter().all(|s| s.loop_workers >= 1));
        let c = candidates(10, 0, None);
        assert!(c.contains(&Candidate::default_config(0)));
        assert!(c.iter().all(|c| c.workers == 1));

        // Saturating narrowing: unit counts and pool widths past
        // u32::MAX clamp instead of wrapping, and the plateau scan is
        // bounded by units, so an absurd pool width returns quickly.
        let counts = worker_counts(u64::MAX, 4, None);
        assert!(counts.contains(&1) && counts.contains(&4));
        let counts = worker_counts(3, usize::MAX, None);
        assert!(counts.contains(&1) && counts.contains(&usize::MAX));
        assert!(counts.iter().all(|&p| p == usize::MAX || p <= 3));
        let splits = zone_splits(u64::MAX, 2);
        assert!(splits.iter().all(|s| s.zone_shards <= 2));
        let splits = zone_splits(2, usize::MAX);
        assert!(splits
            .iter()
            .all(|s| s.zone_shards <= 2 && s.loop_workers >= 1));
        // The coarse-chunk divisor saturates rather than overflowing.
        let c = candidates(u64::MAX, 2, None);
        assert!(c.iter().all(|c| match c.policy {
            Policy::Dynamic { chunk } => chunk >= 1,
            _ => true,
        }));
    }
}
