//! Candidate enumeration: the configuration space one kernel's search
//! covers, pruned by the paper's two laws before anything is measured.
//!
//! * **Stair-step pruning** (Table 3): under static-style chunking the
//!   parallel runtime is proportional to `ceil(U/P)`, so two worker
//!   counts with the same ceiling are the same configuration wearing
//!   different price tags. Only the *plateau edges* — the smallest `P`
//!   achieving each distinct `ceil(U/P)` — are worth proposing
//!   ([`perfmodel::plateau_edges`]).
//! * **Minimum-work pruning** (Table 1): a worker count whose
//!   synchronization bill `P·S` exceeds the overhead budget `f·W`
//!   cannot win; [`perfmodel::overhead::OverheadBound::max_processors`]
//!   caps the proposals.
//!
//! The surviving worker counts are crossed with the schedule policies
//! (static, dynamic, guided — small chunk vocabularies, since the
//! service caps loop extents).

use llp::Policy;
use perfmodel::stairstep::plateau_edges;
use perfmodel::OverheadBound;

/// One point of the search space: a worker count and a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Worker count.
    pub workers: usize,
    /// Chunk-scheduling policy.
    pub policy: Policy,
}

impl Candidate {
    /// The default configuration the search must always include and
    /// compare against: every pool worker, static block scheduling.
    #[must_use]
    pub fn default_config(pool_width: usize) -> Self {
        Self {
            workers: pool_width.max(1),
            policy: Policy::Static,
        }
    }
}

/// Worker counts worth proposing for a loop of `units` iterations on a
/// pool of `pool_width` workers: the stair-step plateau edges — never
/// a `P` where `ceil(units/P)` equals the previous edge's — capped by
/// the Table 1 budget when `bound` is given (`P = 1` always survives;
/// so does `pool_width`, the default config, which the calibration
/// must measure even when the model dislikes it).
#[must_use]
pub fn worker_counts(
    units: u64,
    pool_width: usize,
    bound: Option<(&OverheadBound, u64)>,
) -> Vec<usize> {
    let width = pool_width.max(1);
    if units == 0 {
        return vec![1];
    }
    let max_p = u32::try_from(width).unwrap_or(u32::MAX);
    let mut counts: Vec<usize> = plateau_edges(units, max_p)
        .into_iter()
        .map(|p| p as usize)
        .collect();
    if let Some((bound, work_cycles)) = bound {
        let cap = bound.max_processors(work_cycles).max(1) as usize;
        counts.retain(|&p| p <= cap);
    }
    if !counts.contains(&1) {
        counts.insert(0, 1);
    }
    if !counts.contains(&width) {
        counts.push(width);
    }
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// One point of the zone-level axis: a way of splitting the pool
/// between the zone level and the loop level, `P ≈ shards ×
/// loop_workers` — the paper's multi-level picture, where zone
/// parallelism multiplies with the loop parallelism under it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneSplit {
    /// Zone shards to dispatch ready zones over.
    pub zone_shards: usize,
    /// Loop workers left to each shard's doacross team.
    pub loop_workers: usize,
}

/// Shard counts worth proposing for a case of `zones` zones on a pool
/// of `pool_width` workers: the stair-step plateau edges of the
/// *zone-level* law (`speedup = U_zones / ceil(U_zones/s)`), each
/// paired with the per-shard worker budget `pool_width / s` — the
/// same pruning [`worker_counts`] applies to loops, lifted one level
/// up. Shard count 1 (the sequential zone order) always survives; it
/// is the degenerate split every other entry is measured against.
#[must_use]
pub fn zone_splits(zones: u64, pool_width: usize) -> Vec<ZoneSplit> {
    let width = pool_width.max(1);
    if zones == 0 {
        return vec![ZoneSplit {
            zone_shards: 1,
            loop_workers: width,
        }];
    }
    let max_s = u32::try_from(width).unwrap_or(u32::MAX);
    let mut splits: Vec<ZoneSplit> = plateau_edges(zones, max_s)
        .into_iter()
        .map(|s| {
            let zone_shards = s as usize;
            ZoneSplit {
                zone_shards,
                loop_workers: (width / zone_shards).max(1),
            }
        })
        .collect();
    if !splits.iter().any(|s| s.zone_shards == 1) {
        splits.insert(
            0,
            ZoneSplit {
                zone_shards: 1,
                loop_workers: width,
            },
        );
    }
    splits
}

/// Enumerate the candidates for one kernel: the pruned worker counts
/// crossed with the policy vocabulary. Serial (`P = 1`) gets only
/// [`Policy::Static`] — scheduling is meaningless without concurrency.
/// Parallel counts get static, unit and coarse dynamic chunks, and
/// guided hand-outs. The default configuration is always present.
#[must_use]
pub fn candidates(
    units: u64,
    pool_width: usize,
    bound: Option<(&OverheadBound, u64)>,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    for p in worker_counts(units, pool_width, bound) {
        if p <= 1 {
            out.push(Candidate {
                workers: 1,
                policy: Policy::Static,
            });
            continue;
        }
        let mut policies = vec![Policy::Static, Policy::Dynamic { chunk: 1 }];
        // A coarse dynamic chunk: ~2 hand-outs per worker.
        let coarse = (units as usize).div_ceil(2 * p).max(1);
        if coarse > 1 {
            policies.push(Policy::Dynamic { chunk: coarse });
        }
        policies.push(Policy::Guided { min_chunk: 1 });
        for policy in policies {
            out.push(Candidate { workers: p, policy });
        }
    }
    let default = Candidate::default_config(pool_width);
    if !out.contains(&default) {
        out.push(default);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plateau_pruning_skips_redundant_worker_counts() {
        // U = 10 on an 8-wide pool: ceil(10/P) for P=1..8 is
        // 10,5,4,3,2,2,2,2 — P=6,7,8 duplicate P=5's plateau, so the
        // naive sweep's 8 counts shrink to the 5 edges.
        assert_eq!(worker_counts(10, 8, None), vec![1, 2, 3, 4, 5, 8]);
        // (8 survives only because the default config is kept.)
        let c = candidates(10, 8, None);
        assert!(!c.iter().any(|c| c.workers == 6 || c.workers == 7));
    }

    #[test]
    fn table1_bound_caps_worker_counts() {
        // W = 300k cycles at S = 1k, f = 1%: P·S ≤ f·W caps P at 3.
        let bound = OverheadBound::paper_default(1_000);
        let counts = worker_counts(10, 8, Some((&bound, 300_000)));
        assert!(counts.iter().all(|&p| p <= 3 || p == 8), "{counts:?}");
        // Tiny work: only serial survives (plus the kept default).
        let tiny = worker_counts(10, 8, Some((&bound, 10)));
        assert_eq!(tiny, vec![1, 8]);
    }

    #[test]
    fn zone_splits_cover_the_plateau_edges() {
        // U_zones = 4 on a 4-wide pool: edges s = 1, 2, 4, each with
        // the per-shard leftover of the worker budget.
        let splits = zone_splits(4, 4);
        assert_eq!(
            splits,
            vec![
                ZoneSplit {
                    zone_shards: 1,
                    loop_workers: 4
                },
                ZoneSplit {
                    zone_shards: 2,
                    loop_workers: 2
                },
                ZoneSplit {
                    zone_shards: 4,
                    loop_workers: 1
                },
            ]
        );
        // Shards beyond U_zones never help (ceil(3/s) = 1 from s = 3
        // on), so the edges stop at U_zones even on a wider pool.
        let splits = zone_splits(3, 8);
        assert_eq!(
            splits.iter().map(|s| s.zone_shards).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(
            splits.iter().map(|s| s.loop_workers).collect::<Vec<_>>(),
            vec![8, 4, 2]
        );
        // Degenerate pools and zone counts still propose the
        // sequential split.
        assert_eq!(
            zone_splits(0, 4),
            vec![ZoneSplit {
                zone_shards: 1,
                loop_workers: 4
            }]
        );
        assert_eq!(
            zone_splits(5, 1),
            vec![ZoneSplit {
                zone_shards: 1,
                loop_workers: 1
            }]
        );
        // Every split keeps at least one loop worker.
        for s in zone_splits(64, 6) {
            assert!(s.loop_workers >= 1);
            assert!(s.zone_shards >= 1);
        }
    }

    #[test]
    fn serial_gets_static_only_and_default_is_always_present() {
        let c = candidates(0, 4, None);
        assert!(c.contains(&Candidate::default_config(4)));
        for cand in &c {
            if cand.workers == 1 {
                assert_eq!(cand.policy, Policy::Static);
            }
        }
        // Parallel counts carry the full policy vocabulary.
        let c = candidates(12, 4, None);
        assert!(c
            .iter()
            .any(|c| c.workers == 4 && c.policy == Policy::Dynamic { chunk: 1 }));
        assert!(c
            .iter()
            .any(|c| c.workers == 4 && c.policy == Policy::Guided { min_chunk: 1 }));
        // No duplicates.
        for (i, a) in c.iter().enumerate() {
            assert!(!c[i + 1..].contains(a), "duplicate {a:?}");
        }
    }
}
