//! Model-drift watchdog: continuous validation of tuned
//! configurations against the paper's analytic cost model.
//!
//! A [`super::TuneDb`] entry is a bet: "this (workers, schedule,
//! `vector_width`) will cost what the calibration measured, which the
//! stair-step + Table 1 model predicted." The bet can go stale —
//! load mix, cache behavior, or zone topology shifts — without any
//! code change. This module watches the bet *continuously*: every
//! completed solve contributes one **drift score** per kernel,
//!
//! ```text
//! score = measured_cost / expected_cost − 1
//! ```
//!
//! where `expected_cost` is the same analytic form calibration uses
//! (`work · ceil(U/P)/U + regions · S`, see
//! [`super::calibrate`]) evaluated at the live run's work, extent,
//! and the entry's chosen configuration. A score of 0 means the model
//! nailed it; +1.0 means the solve cost twice the prediction.
//!
//! Per (kernel, config) key the tracker maintains an exponentially
//! weighted moving average and variance of the score
//! (`ewma += α·(x − ewma)`, `var = (1−α)·(var + (x − ewma_old)·α·(x −
//! ewma_old))`), so one noisy solve cannot flip a verdict. The
//! staleness rule, evaluated once per telemetry window
//! ([`DriftTracker::end_window`]):
//!
//! * a window is **drifting** for a key when the key saw at least one
//!   sample this window, has at least [`DriftConfig::min_samples`]
//!   lifetime samples, and its EWMA score exceeds
//!   [`DriftConfig::threshold`];
//! * [`DriftConfig::windows`] *consecutive* drifting windows mark the
//!   key stale (windows with no traffic for the key neither extend
//!   nor reset the streak);
//! * one non-drifting window with traffic resets the streak — and
//!   clears staleness, so a key heals itself if the world shifts
//!   back.
//!
//! Defaults are deliberately conservative — `threshold = 1.0` (the
//! measured cost must *double* the prediction), `windows = 3`,
//! `min_samples = 5` — so an ordinary noisy host does not cry wolf;
//! the acceptance bar is zero false positives on the default bench
//! mix. The serve layer owns the clock (its telemetry-window tick
//! calls `end_window`) and the mapping from newly stale keys to
//! `TuneDb` entries.

use llp::obs::json::Json;

/// Tuning knobs for the drift watchdog. [`DriftConfig::default`] is
/// the documented conservative policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// EWMA score above which a window counts as drifting. 1.0 means
    /// "measured cost is double the model's prediction".
    pub threshold: f64,
    /// Consecutive drifting windows required to mark a key stale.
    pub windows: u32,
    /// EWMA smoothing factor `α` in `(0, 1]`.
    pub alpha: f64,
    /// Lifetime samples a key needs before it can be judged at all.
    pub min_samples: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            threshold: 1.0,
            windows: 3,
            alpha: 0.3,
            min_samples: 5,
        }
    }
}

/// Running drift state for one (kernel, config) key.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyState {
    /// Kernel name (span-tree vocabulary), or a pseudo-kernel such as
    /// `sync_fraction` for pool-wide signals.
    pub kernel: String,
    /// Configuration label the scores were observed under (e.g.
    /// `w4:guided:v2`) — a retune that changes the config starts a
    /// fresh key rather than polluting the old one's EWMA.
    pub config: String,
    /// EWMA of the drift score.
    pub ewma: f64,
    /// Exponentially weighted variance of the score.
    pub variance: f64,
    /// Most recent raw score.
    pub last_score: f64,
    /// Lifetime samples.
    pub samples: u64,
    /// Samples in the window currently accumulating.
    window_samples: u64,
    /// Consecutive drifting windows so far.
    pub streak: u32,
    /// Whether the streak reached the configured window count.
    pub stale: bool,
}

impl KeyState {
    fn new(kernel: &str, config: &str) -> Self {
        KeyState {
            kernel: kernel.to_string(),
            config: config.to_string(),
            ewma: 0.0,
            variance: 0.0,
            last_score: 0.0,
            samples: 0,
            window_samples: 0,
            streak: 0,
            stale: false,
        }
    }

    fn to_json(&self) -> Json {
        Json::object(vec![
            ("kernel", Json::Str(self.kernel.clone())),
            ("config", Json::Str(self.config.clone())),
            ("ewma", Json::Num(self.ewma)),
            ("variance", Json::Num(self.variance)),
            ("last_score", Json::Num(self.last_score)),
            ("samples", Json::from_u64(self.samples)),
            ("streak", Json::from_u64(u64::from(self.streak))),
            ("stale", Json::Bool(self.stale)),
        ])
    }
}

/// The watchdog: per-key EWMA + variance of drift scores, windowed
/// staleness verdicts. Not internally synchronized — the serve layer
/// keeps it behind its own lock next to the `TuneDb`.
#[derive(Debug)]
pub struct DriftTracker {
    config: DriftConfig,
    keys: Vec<KeyState>,
}

impl DriftTracker {
    /// A tracker with the given policy.
    #[must_use]
    pub fn new(config: DriftConfig) -> Self {
        DriftTracker {
            config,
            keys: Vec::new(),
        }
    }

    /// The policy in force.
    #[must_use]
    pub fn config(&self) -> DriftConfig {
        self.config
    }

    /// Record one solve's measured vs expected cost for a key. Scores
    /// are `measured/expected − 1`; non-finite or non-positive inputs
    /// are ignored (a zero expectation is a modeling hole, not drift).
    pub fn observe(&mut self, kernel: &str, config: &str, measured: f64, expected: f64) {
        if !(measured.is_finite() && expected.is_finite()) || measured <= 0.0 || expected <= 0.0 {
            return;
        }
        self.observe_score(kernel, config, measured / expected - 1.0);
    }

    /// Record a pre-computed drift score for a key.
    pub fn observe_score(&mut self, kernel: &str, config: &str, score: f64) {
        if !score.is_finite() {
            return;
        }
        let state = match self
            .keys
            .iter_mut()
            .find(|k| k.kernel == kernel && k.config == config)
        {
            Some(state) => state,
            None => {
                self.keys.push(KeyState::new(kernel, config));
                self.keys.last_mut().expect("just pushed")
            }
        };
        let alpha = self.config.alpha;
        if state.samples == 0 {
            state.ewma = score;
            state.variance = 0.0;
        } else {
            let diff = score - state.ewma;
            let incr = alpha * diff;
            state.ewma += incr;
            state.variance = (1.0 - alpha) * (state.variance + diff * incr);
        }
        state.last_score = score;
        state.samples += 1;
        state.window_samples += 1;
    }

    /// Close the current window and apply the staleness rule to every
    /// key. Returns the keys that *newly* became stale in this window
    /// as `(kernel, config)` pairs.
    pub fn end_window(&mut self) -> Vec<(String, String)> {
        let mut newly_stale = Vec::new();
        for state in &mut self.keys {
            if state.window_samples == 0 {
                continue; // no traffic: streak neither grows nor resets
            }
            state.window_samples = 0;
            let drifting =
                state.samples >= self.config.min_samples && state.ewma > self.config.threshold;
            if drifting {
                state.streak = state.streak.saturating_add(1);
                if state.streak >= self.config.windows && !state.stale {
                    state.stale = true;
                    newly_stale.push((state.kernel.clone(), state.config.clone()));
                }
            } else {
                state.streak = 0;
                state.stale = false;
            }
        }
        newly_stale
    }

    /// Kernels currently stale (deduplicated, sorted).
    #[must_use]
    pub fn stale_kernels(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .keys
            .iter()
            .filter(|k| k.stale)
            .map(|k| k.kernel.clone())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Number of stale keys.
    #[must_use]
    pub fn stale_count(&self) -> usize {
        self.keys.iter().filter(|k| k.stale).count()
    }

    /// All key states (for `/v1/health` detail), sorted by kernel then
    /// config.
    #[must_use]
    pub fn states(&self) -> Vec<&KeyState> {
        let mut out: Vec<&KeyState> = self.keys.iter().collect();
        out.sort_by(|a, b| (&a.kernel, &a.config).cmp(&(&b.kernel, &b.config)));
        out
    }

    /// Drop all accumulated state — call after a recalibration, whose
    /// new entries invalidate every old expectation.
    pub fn reset(&mut self) {
        self.keys.clear();
    }

    /// JSON rendering of the tracker: policy plus per-key states.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("threshold", Json::Num(self.config.threshold)),
            ("windows", Json::from_u64(u64::from(self.config.windows))),
            ("alpha", Json::Num(self.config.alpha)),
            ("min_samples", Json::from_u64(self.config.min_samples)),
            (
                "keys",
                Json::Array(self.states().iter().map(|k| k.to_json()).collect()),
            ),
        ])
    }
}

/// The analytic expected cost the drift score divides by: the
/// calibration-time model (`work · ceil(U/P)/U + regions · S`)
/// evaluated at a live run's measurements. `work_ns` is the total
/// chunk-execution time (serial work), `u` the mean parallel-loop
/// extent per region, `workers` the configured lane count, `regions`
/// the parallel regions executed, and `sync_cost_ns` the calibrated
/// per-region synchronization cost `S`.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn expected_cost_ns(
    work_ns: f64,
    u: f64,
    workers: usize,
    regions: u64,
    sync_cost_ns: u64,
) -> f64 {
    if work_ns <= 0.0 || u < 1.0 || workers == 0 {
        return 0.0;
    }
    let steps = (u / workers as f64).ceil();
    work_ns * steps / u + regions as f64 * sync_cost_ns as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight() -> DriftConfig {
        DriftConfig {
            threshold: 0.5,
            windows: 2,
            alpha: 0.5,
            min_samples: 2,
        }
    }

    #[test]
    fn scores_are_relative_excess_over_expectation() {
        let mut t = DriftTracker::new(tight());
        t.observe("rhs", "w4:static:v1", 150.0, 100.0);
        let s = &t.states()[0];
        assert!((s.ewma - 0.5).abs() < 1e-12);
        assert_eq!(s.samples, 1);
        // Degenerate inputs are dropped, not scored.
        t.observe("rhs", "w4:static:v1", 100.0, 0.0);
        t.observe("rhs", "w4:static:v1", f64::NAN, 100.0);
        assert_eq!(t.states()[0].samples, 1);
    }

    #[test]
    fn ewma_and_variance_track_the_stream() {
        let mut t = DriftTracker::new(tight());
        t.observe_score("rhs", "c", 1.0);
        t.observe_score("rhs", "c", 0.0);
        let s = &t.states()[0];
        // ewma: 1.0 then 1.0 + 0.5*(0-1) = 0.5
        assert!((s.ewma - 0.5).abs() < 1e-12);
        assert!(s.variance > 0.0, "spread must register");
        assert_eq!(s.samples, 2);
    }

    #[test]
    fn staleness_needs_consecutive_drifting_windows() {
        let mut t = DriftTracker::new(tight());
        // Window 1: drifting, but min_samples not yet met at judging.
        t.observe_score("rhs", "c", 2.0);
        assert!(t.end_window().is_empty(), "one sample < min_samples");
        // Window 2: drifting (samples now 2, ewma 2.0 > 0.5).
        t.observe_score("rhs", "c", 2.0);
        assert!(t.end_window().is_empty(), "streak 1 < windows 2");
        // Window 3: still drifting -> streak 2 -> stale.
        t.observe_score("rhs", "c", 2.0);
        let newly = t.end_window();
        assert_eq!(newly, vec![("rhs".to_string(), "c".to_string())]);
        assert_eq!(t.stale_kernels(), vec!["rhs".to_string()]);
        assert_eq!(t.stale_count(), 1);
        // Already-stale keys are not re-reported.
        t.observe_score("rhs", "c", 2.0);
        assert!(t.end_window().is_empty());
        assert_eq!(t.stale_count(), 1);
    }

    #[test]
    fn a_healthy_window_resets_streak_and_heals_staleness() {
        let mut t = DriftTracker::new(tight());
        for _ in 0..3 {
            t.observe_score("rhs", "c", 2.0);
            t.end_window();
        }
        assert_eq!(t.stale_count(), 1);
        // The model fits again: staleness clears.
        t.observe_score("rhs", "c", 0.0);
        t.observe_score("rhs", "c", 0.0);
        t.observe_score("rhs", "c", 0.0);
        assert!(t.end_window().is_empty());
        assert_eq!(t.stale_count(), 0);
        assert_eq!(t.states()[0].streak, 0);
    }

    #[test]
    fn quiet_windows_freeze_the_streak() {
        let mut t = DriftTracker::new(tight());
        t.observe_score("rhs", "c", 2.0);
        t.observe_score("rhs", "c", 2.0);
        t.end_window(); // streak 1
        t.end_window(); // no traffic: streak stays 1, no reset
        t.end_window();
        t.observe_score("rhs", "c", 2.0);
        let newly = t.end_window(); // streak 2 -> stale
        assert_eq!(newly.len(), 1);
    }

    #[test]
    fn keys_are_isolated_and_reset_drops_everything() {
        let mut t = DriftTracker::new(tight());
        t.observe_score("rhs", "a", 2.0);
        t.observe_score("rhs", "b", 0.0);
        t.observe_score("update", "a", 2.0);
        assert_eq!(t.states().len(), 3);
        t.reset();
        assert!(t.states().is_empty());
        assert_eq!(t.stale_count(), 0);
    }

    #[test]
    fn expected_cost_follows_the_stairstep_plus_sync() {
        // 12 units of work over U=12, P=4 -> 3 steps of work/12 each,
        // plus 2 regions x 10 ns sync.
        let e = expected_cost_ns(1200.0, 12.0, 4, 2, 10);
        assert!((e - (1200.0 * 3.0 / 12.0 + 20.0)).abs() < 1e-9);
        // P > U cannot beat one step.
        let e1 = expected_cost_ns(1200.0, 12.0, 32, 0, 0);
        assert!((e1 - 100.0).abs() < 1e-9);
        assert_eq!(expected_cost_ns(0.0, 12.0, 4, 1, 10), 0.0);
        assert_eq!(expected_cost_ns(100.0, 0.5, 4, 1, 10), 0.0);
    }

    #[test]
    fn json_rendering_carries_policy_and_keys() {
        let mut t = DriftTracker::new(DriftConfig::default());
        t.observe_score("rhs", "w4:static:v1", 0.25);
        let j = t.to_json();
        assert_eq!(j.get("threshold").and_then(Json::as_f64), Some(1.0));
        let keys = j.get("keys").and_then(Json::as_array).unwrap();
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].get("kernel").and_then(Json::as_str), Some("rhs"));
        assert_eq!(keys[0].get("stale").and_then(Json::as_bool), Some(false));
    }
}
