//! `tune` — an online autotuner that closes the loop between the
//! flight recorder and the paper's analytic models.
//!
//! The paper (ARL-TR-2556) predicts a parallel loop's behavior from
//! two laws: the stair-step speedup `U / ceil(U/P)` and the Table 1
//! minimum-work rule `W ≥ P·S/f`. The observability layer
//! (`llp::obs`) *measures* the same quantities on live runs. This
//! crate confronts the two:
//!
//! * [`space`] enumerates per-kernel candidate configurations
//!   (worker count × schedule policy × chunk), pruned **before any
//!   measurement** by the stair-step law (never propose a `P` whose
//!   `ceil(U/P)` duplicates a cheaper one) and the Table 1 bound.
//! * [`calibrate`](mod@calibrate) prices the surviving candidates with
//!   a deterministic measurement loop — median-of-K trials on an
//!   instrumented pool view — and picks each kernel's winner, always
//!   comparing against the default configuration so tuning can only
//!   break even or help.
//! * [`db`] persists the outcome as a versioned, JSON-serialized
//!   [`TuneDb`] the serve layer loads at startup and applies when a
//!   request asks for `"schedule": "auto"`.
//!
//! The db records both the measured and the modeled cost of every
//! winner, and whether the model would have picked the same
//! configuration — so every calibration doubles as a validation run
//! for the paper's models.
//!
//! Validation does not stop at calibration time: [`drift`] keeps
//! scoring every *live* solve against the same analytic cost form,
//! maintaining a per-(kernel, config) EWMA of the
//! measured-over-predicted excess, and flags a [`TuneEntry`] as stale
//! when the prediction stays badly wrong for consecutive telemetry
//! windows — the signal that a recalibration (or a plan re-race,
//! ROADMAP item 4) is due.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod db;
pub mod drift;
pub mod space;

pub use calibrate::{calibrate, calibrate_fdtd, calibrate_solver, CalibrationSpec};
pub use db::{TuneDb, TuneEntry, TUNE_SCHEMA_VERSION};
pub use drift::{expected_cost_ns, DriftConfig, DriftTracker};
pub use space::{candidates, worker_counts, zone_splits, Candidate, ZoneSplit};
