//! The versioned tune database: per-kernel winning configurations with
//! their measured and modeled costs, serialized with the suite's own
//! JSON layer so `llpd` can persist and reload it.

use f3d::kernels::WidthMap;
use llp::obs::json::Json;
use llp::{MeasuredChoice, Policy, ScheduleMap};
use std::path::Path;

/// Schema version of [`TuneDb::to_json`]; bumped on layout changes.
/// Version 2 added the per-entry `vector_width` (the SLP axis);
/// version 3 added the per-entry `stale` flag the drift watchdog
/// maintains (see [`crate::drift`]); version 4 added the top-level
/// `solver` kind for multi-physics serving. Version-2 and -3 files
/// still load — entries start fresh (`stale: false`) and the solver
/// defaults to `"f3d"`, the only workload those files could describe.
pub const TUNE_SCHEMA_VERSION: u64 = 4;

/// One kernel's calibration outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneEntry {
    /// Kernel name (span-tree vocabulary: `rhs`, `j_factor`, …).
    pub kernel: String,
    /// Winning worker count.
    pub workers: usize,
    /// Winning schedule.
    pub schedule: Policy,
    /// Winning SLP lane width (1 = the scalar kernel variant).
    pub vector_width: usize,
    /// Mean parallel-loop iterations per region (the stair-step `U`).
    pub iterations: u64,
    /// Candidates the search measured for this kernel.
    pub candidates_tried: usize,
    /// Median measured cost of the winner over the calibration case
    /// (summed region wall nanoseconds).
    pub measured_cost_ns: u64,
    /// Median measured cost of the default configuration (full pool
    /// width, static). Selection guarantees `measured_cost_ns <=
    /// default_cost_ns` when measured selection ran.
    pub default_cost_ns: u64,
    /// The analytic model's predicted cost for the winner.
    pub modeled_cost_ns: u64,
    /// Whether the analytic model, ranking the same candidates by
    /// predicted cost, agrees with the measured winner.
    pub model_agrees: bool,
    /// Whether the drift watchdog has flagged this entry as stale —
    /// live solves under this configuration persistently cost more
    /// than the calibration-time model predicted, so the entry is due
    /// a recalibration. Runtime state, not a calibration decision:
    /// [`TuneDb::same_decisions`] ignores it, and a fresh calibration
    /// always writes `false`.
    pub stale: bool,
}

impl TuneEntry {
    /// Compact label of the chosen configuration, the drift tracker's
    /// key vocabulary: `w{workers}:{schedule}[.{chunk}]:v{width}`.
    #[must_use]
    pub fn config_label(&self) -> String {
        match self.schedule.chunk_param() {
            Some(chunk) => format!(
                "w{}:{}.{}:v{}",
                self.workers,
                self.schedule.name(),
                chunk,
                self.vector_width
            ),
            None => format!(
                "w{}:{}:v{}",
                self.workers,
                self.schedule.name(),
                self.vector_width
            ),
        }
    }

    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("kernel", Json::Str(self.kernel.clone())),
            ("workers", Json::from_usize(self.workers)),
            ("schedule", Json::str(self.schedule.name())),
        ];
        if let Some(chunk) = self.schedule.chunk_param() {
            pairs.push(("chunk", Json::from_usize(chunk)));
        }
        pairs.extend([
            ("vector_width", Json::from_usize(self.vector_width)),
            ("iterations", Json::from_u64(self.iterations)),
            ("candidates_tried", Json::from_usize(self.candidates_tried)),
            ("measured_cost_ns", Json::from_u64(self.measured_cost_ns)),
            ("default_cost_ns", Json::from_u64(self.default_cost_ns)),
            ("modeled_cost_ns", Json::from_u64(self.modeled_cost_ns)),
            ("model_agrees", Json::Bool(self.model_agrees)),
            ("stale", Json::Bool(self.stale)),
        ]);
        Json::object(pairs)
    }

    fn from_json(j: &Json) -> Result<Self, String> {
        let field = |k: &str| j.get(k).ok_or_else(|| format!("entry missing {k:?}"));
        let name = field("schedule")?
            .as_str()
            .ok_or("schedule must be a string")?;
        let chunk = j.get("chunk").and_then(Json::as_usize);
        Ok(Self {
            kernel: field("kernel")?
                .as_str()
                .ok_or("kernel must be a string")?
                .to_string(),
            workers: field("workers")?
                .as_usize()
                .ok_or("workers must be an integer")?,
            schedule: Policy::parse(name, chunk)?,
            vector_width: field("vector_width")?
                .as_usize()
                .ok_or("vector_width must be an integer")?,
            iterations: field("iterations")?
                .as_u64()
                .ok_or("iterations must be an integer")?,
            candidates_tried: field("candidates_tried")?
                .as_usize()
                .ok_or("candidates_tried must be an integer")?,
            measured_cost_ns: field("measured_cost_ns")?
                .as_u64()
                .ok_or("measured_cost_ns must be an integer")?,
            default_cost_ns: field("default_cost_ns")?
                .as_u64()
                .ok_or("default_cost_ns must be an integer")?,
            modeled_cost_ns: field("modeled_cost_ns")?
                .as_u64()
                .ok_or("modeled_cost_ns must be an integer")?,
            model_agrees: field("model_agrees")?
                .as_bool()
                .ok_or("model_agrees must be a boolean")?,
            // Absent in schema v2 files: entries start un-flagged.
            stale: j.get("stale").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}

/// A full calibration result: the winning configuration for every
/// parallel kernel of the F3D service case, plus the calibration
/// context needed to interpret (and invalidate) it.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneDb {
    /// [`TUNE_SCHEMA_VERSION`] at write time.
    pub schema_version: u64,
    /// Solver kind this calibration belongs to (`"f3d"`, `"fdtd"`) —
    /// tuned decisions for one physics say nothing about another, so
    /// the serve layer keys its databases by this field.
    pub solver: String,
    /// Pool width the calibration ran on — configs tuned for a 2-wide
    /// pool say nothing about an 8-wide one.
    pub pool_width: usize,
    /// Zones of the calibration case.
    pub zones: usize,
    /// Steps of the calibration case.
    pub steps: usize,
    /// Trials per candidate (the K of median-of-K).
    pub trials: usize,
    /// Measured mean synchronization cost (the empirical `S`,
    /// nanoseconds) the model predictions were seeded with.
    pub sync_cost_ns: u64,
    /// Per-kernel outcomes, sorted by kernel name.
    pub entries: Vec<TuneEntry>,
}

impl TuneDb {
    /// JSON form (schema pinned by a test; see `TUNE_SCHEMA_VERSION`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema_version", Json::from_u64(self.schema_version)),
            ("solver", Json::Str(self.solver.clone())),
            ("pool_width", Json::from_usize(self.pool_width)),
            ("zones", Json::from_usize(self.zones)),
            ("steps", Json::from_usize(self.steps)),
            ("trials", Json::from_usize(self.trials)),
            ("sync_cost_ns", Json::from_u64(self.sync_cost_ns)),
            (
                "entries",
                Json::Array(self.entries.iter().map(TuneEntry::to_json).collect()),
            ),
        ])
    }

    /// Parse a database from its JSON form.
    ///
    /// # Errors
    /// Returns a message naming the missing or malformed field;
    /// unknown schema versions are rejected rather than misread.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let version = j
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("tune db missing schema_version")?;
        // v2 and v3 are strict subsets of v4 (no `stale` flags / no
        // `solver` kind): load them, let every entry start un-flagged,
        // and attribute the file to F3D — the only solver those
        // schemas could describe. Anything else is rejected rather
        // than misread.
        if version != TUNE_SCHEMA_VERSION && version != 2 && version != 3 {
            return Err(format!(
                "unsupported tune db schema_version {version} (expected {TUNE_SCHEMA_VERSION})"
            ));
        }
        let field = |k: &str| {
            j.get(k)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("tune db missing {k:?}"))
        };
        let entries = j
            .get("entries")
            .and_then(Json::as_array)
            .ok_or("tune db missing entries")?
            .iter()
            .map(TuneEntry::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            // Normalized on load: a v2/v3 file round-trips out as v4.
            schema_version: TUNE_SCHEMA_VERSION,
            solver: j
                .get("solver")
                .and_then(Json::as_str)
                .unwrap_or("f3d")
                .to_string(),
            pool_width: field("pool_width")?,
            zones: field("zones")?,
            steps: field("steps")?,
            trials: field("trials")?,
            sync_cost_ns: j
                .get("sync_cost_ns")
                .and_then(Json::as_u64)
                .ok_or("tune db missing sync_cost_ns")?,
            entries,
        })
    }

    /// Write the database to `path` as pretty-printed JSON.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_pretty_string())
    }

    /// Load a database from `path`.
    ///
    /// # Errors
    /// I/O and parse failures, as a message naming the path.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read tune db {}: {e}", path.display()))?;
        text.parse()
            .map_err(|e| format!("invalid tune db {}: {e}", path.display()))
    }

    /// The per-kernel overrides a solver consumes
    /// ([`f3d::service::run_scheduled`]).
    #[must_use]
    pub fn schedule_map(&self) -> ScheduleMap {
        let mut map = ScheduleMap::new();
        for e in &self.entries {
            map.set(&e.kernel, e.workers, e.schedule);
        }
        map
    }

    /// The per-kernel SLP widths a solver consumes
    /// ([`f3d::service::run_tuned`]). Scalar winners are recorded too —
    /// an explicit width-1 entry and no entry resolve identically, but
    /// the map should say what the calibration decided.
    #[must_use]
    pub fn width_map(&self) -> WidthMap {
        let mut map = WidthMap::new();
        for e in &self.entries {
            map.set(&e.kernel, e.vector_width);
        }
        map
    }

    /// The measured choices for the advisor
    /// ([`llp::Advisor::advise_with_measured`]).
    #[must_use]
    pub fn measured_choices(&self) -> Vec<(String, MeasuredChoice)> {
        self.entries
            .iter()
            .map(|e| {
                (
                    e.kernel.clone(),
                    MeasuredChoice {
                        workers: e.workers,
                        schedule: e.schedule,
                        vector_width: e.vector_width,
                        measured_cost_ns: e.measured_cost_ns,
                        modeled_cost_ns: e.modeled_cost_ns,
                    },
                )
            })
            .collect()
    }

    /// Mark the entry for `kernel` stale (or fresh). Returns whether
    /// an entry changed — the serve layer uses this to know when the
    /// `tune_entries_stale` gauge moved.
    pub fn set_stale(&mut self, kernel: &str, stale: bool) -> bool {
        match self.entries.iter_mut().find(|e| e.kernel == kernel) {
            Some(e) if e.stale != stale => {
                e.stale = stale;
                true
            }
            _ => false,
        }
    }

    /// Kernels whose entries the drift watchdog has flagged, sorted.
    #[must_use]
    pub fn stale_kernels(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .entries
            .iter()
            .filter(|e| e.stale)
            .map(|e| e.kernel.clone())
            .collect();
        out.sort();
        out
    }

    /// Whether two databases made the same *decisions* — identical
    /// structural fields (winners, kernels, iteration counts, search
    /// sizes, calibration context), ignoring the timing fields
    /// (`*_cost_ns`, `sync_cost_ns`, `model_agrees`) that no two
    /// wall-clock runs reproduce exactly, and ignoring the runtime
    /// `stale` flags. This is the determinism contract the job-gate
    /// calibration mode is tested against.
    #[must_use]
    pub fn same_decisions(&self, other: &Self) -> bool {
        self.schema_version == other.schema_version
            && self.solver == other.solver
            && self.pool_width == other.pool_width
            && self.zones == other.zones
            && self.steps == other.steps
            && self.trials == other.trials
            && self.entries.len() == other.entries.len()
            && self.entries.iter().zip(&other.entries).all(|(a, b)| {
                a.kernel == b.kernel
                    && a.workers == b.workers
                    && a.schedule == b.schedule
                    && a.vector_width == b.vector_width
                    && a.iterations == b.iterations
                    && a.candidates_tried == b.candidates_tried
            })
    }
}

impl std::str::FromStr for TuneDb {
    type Err = String;

    /// Parse from JSON text: syntax and schema errors as a message.
    fn from_str(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    fn sample() -> TuneDb {
        TuneDb {
            schema_version: TUNE_SCHEMA_VERSION,
            solver: "f3d".to_string(),
            pool_width: 4,
            zones: 2,
            steps: 2,
            trials: 3,
            sync_cost_ns: 1_200,
            entries: vec![
                TuneEntry {
                    kernel: "rhs".to_string(),
                    workers: 4,
                    schedule: Policy::Guided { min_chunk: 1 },
                    vector_width: 4,
                    iterations: 10,
                    candidates_tried: 12,
                    measured_cost_ns: 80_000,
                    default_cost_ns: 95_000,
                    modeled_cost_ns: 78_000,
                    model_agrees: true,
                    stale: false,
                },
                TuneEntry {
                    kernel: "update".to_string(),
                    workers: 2,
                    schedule: Policy::Static,
                    vector_width: 1,
                    iterations: 10,
                    candidates_tried: 12,
                    measured_cost_ns: 40_000,
                    default_cost_ns: 41_000,
                    modeled_cost_ns: 52_000,
                    model_agrees: false,
                    stale: true,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let db = sample();
        let text = db.to_json().to_pretty_string();
        let back = TuneDb::from_str(&text).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn schema_is_pinned() {
        let j = sample().to_json();
        assert_eq!(
            j.get("schema_version").and_then(Json::as_u64),
            Some(TUNE_SCHEMA_VERSION)
        );
        for key in [
            "solver",
            "pool_width",
            "zones",
            "steps",
            "trials",
            "sync_cost_ns",
            "entries",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        let entries = j.get("entries").and_then(Json::as_array).unwrap();
        let e = &entries[0];
        for key in [
            "kernel",
            "workers",
            "schedule",
            "vector_width",
            "iterations",
            "candidates_tried",
            "measured_cost_ns",
            "default_cost_ns",
            "modeled_cost_ns",
            "model_agrees",
            "stale",
        ] {
            assert!(e.get(key).is_some(), "missing entry key {key}");
        }
        // Static entries omit the chunk; dynamic ones carry it.
        assert_eq!(e.get("chunk").and_then(Json::as_u64), Some(1));
        assert!(entries[1].get("chunk").is_none());
        // The width is always explicit, even for scalar winners.
        assert_eq!(e.get("vector_width").and_then(Json::as_u64), Some(4));
        assert_eq!(
            entries[1].get("vector_width").and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn schema_v2_files_load_with_fresh_staleness() {
        // A v4 document with the v3+-only fields removed is exactly
        // what a PR-8-era file on disk looks like.
        let mut j = sample().to_json();
        if let Json::Object(pairs) = &mut j {
            pairs.retain(|(k, _)| k != "solver");
            for (k, v) in pairs.iter_mut() {
                if k == "schema_version" {
                    *v = Json::from_u64(2);
                }
                if k == "entries" {
                    if let Json::Array(entries) = v {
                        for e in entries {
                            if let Json::Object(fields) = e {
                                fields.retain(|(k, _)| k != "stale");
                            }
                        }
                    }
                }
            }
        }
        let db = TuneDb::from_json(&j).unwrap();
        assert_eq!(db.schema_version, TUNE_SCHEMA_VERSION, "normalized up");
        assert_eq!(db.solver, "f3d", "pre-multi-physics files are F3D's");
        assert!(db.entries.iter().all(|e| !e.stale));
        assert!(db.same_decisions(&sample()));
    }

    #[test]
    fn schema_v3_files_load_as_f3d() {
        // A v4 document minus the `solver` field is a v3 file: it
        // loads, attributes itself to F3D, and normalizes up — while a
        // different solver kind breaks decision equality.
        let mut j = sample().to_json();
        if let Json::Object(pairs) = &mut j {
            pairs.retain(|(k, _)| k != "solver");
            for (k, v) in pairs.iter_mut() {
                if k == "schema_version" {
                    *v = Json::from_u64(3);
                }
            }
        }
        let db = TuneDb::from_json(&j).unwrap();
        assert_eq!(db.schema_version, TUNE_SCHEMA_VERSION);
        assert_eq!(db.solver, "f3d");
        assert!(db.same_decisions(&sample()));
        let mut other = sample();
        other.solver = "fdtd".to_string();
        assert!(!db.same_decisions(&other), "the solver kind is a decision");
    }

    #[test]
    fn staleness_helpers_flag_and_list() {
        let mut db = sample();
        assert_eq!(db.stale_kernels(), vec!["update".to_string()]);
        assert!(db.set_stale("rhs", true), "fresh -> stale changed");
        assert!(!db.set_stale("rhs", true), "idempotent");
        assert!(!db.set_stale("absent", true), "unknown kernel is a no-op");
        assert_eq!(
            db.stale_kernels(),
            vec!["rhs".to_string(), "update".to_string()]
        );
        assert!(db.set_stale("update", false), "healing clears the flag");
        assert_eq!(db.stale_kernels(), vec!["rhs".to_string()]);
    }

    #[test]
    fn config_labels_name_the_whole_choice() {
        let db = sample();
        assert_eq!(db.entries[0].config_label(), "w4:guided.1:v4");
        assert_eq!(db.entries[1].config_label(), "w2:static:v1");
    }

    #[test]
    fn version_and_field_errors_are_named() {
        let err = TuneDb::from_str("{\"schema_version\": 999, \"entries\": []}").unwrap_err();
        assert!(err.contains("999"), "{err}");
        let err = TuneDb::from_str("{}").unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
        assert!(TuneDb::from_str("not json").is_err());
    }

    #[test]
    fn save_load_round_trips() {
        let dir = std::env::temp_dir().join("tune_db_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        let db = sample();
        db.save(&path).unwrap();
        assert_eq!(TuneDb::load(&path).unwrap(), db);
        let err = TuneDb::load(&dir.join("absent.json")).unwrap_err();
        assert!(err.contains("absent.json"), "{err}");
    }

    #[test]
    fn schedule_map_and_choices_cover_every_entry() {
        let db = sample();
        let map = db.schedule_map();
        assert_eq!(map.len(), 2);
        assert_eq!(map.get("rhs"), Some((4, Policy::Guided { min_chunk: 1 })));
        let choices = db.measured_choices();
        assert_eq!(choices.len(), 2);
        assert_eq!(choices[0].0, "rhs");
        assert_eq!(choices[0].1.measured_cost_ns, 80_000);
        assert_eq!(choices[0].1.vector_width, 4);
        let widths = db.width_map();
        assert_eq!(widths.get("rhs"), 4);
        assert_eq!(widths.get("update"), 1);
        assert_eq!(widths.get("unknown"), 1, "unmapped kernels stay scalar");
    }

    #[test]
    fn same_decisions_ignores_timing_fields_only() {
        let a = sample();
        let mut b = sample();
        b.entries[0].measured_cost_ns = 1;
        b.sync_cost_ns = 7;
        b.entries[1].model_agrees = true;
        assert!(a.same_decisions(&b));
        b.entries[0].workers = 2;
        assert!(!a.same_decisions(&b));
        let mut c = sample();
        c.entries[0].vector_width = 2;
        assert!(!a.same_decisions(&c), "the width is a decision");
        let mut d = sample();
        d.entries[0].stale = true;
        assert!(a.same_decisions(&d), "staleness is runtime state");
    }
}
