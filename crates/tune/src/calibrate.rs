//! The deterministic measurement loop: run the candidate
//! configurations through an instrumented pool view, confront measured
//! cost with modeled cost, and pick each kernel's winner.
//!
//! Measurement protocol:
//!
//! 1. **Seed pass** — one run of the calibration case at the default
//!    configuration with the flight recorder enabled yields, per
//!    kernel, the stair-step `U` (mean iterations per region) and the
//!    empirical work `W` (mean compute nanoseconds per region), plus
//!    the timeline-wide mean sync cost `S` — the inputs the paper's
//!    models need.
//! 2. **Search** — [`crate::space::candidates`] enumerates each
//!    kernel's pruned space. Candidates are measured in rounds: round
//!    `r` assigns every kernel its `r mod len`-th candidate (kernels
//!    are measured independently, so one run prices one candidate per
//!    kernel), and each round is repeated `trials` times. A kernel's
//!    cost for a candidate is the **median** of its measurements —
//!    summed region wall nanoseconds from the flight recorder's
//!    attribution.
//! 3. **Selection** — the winner minimizes the median measured cost;
//!    since the default configuration is always a candidate, the
//!    winner's cost never exceeds the default's. Ties and near-ties
//!    break deterministically (modeled cost, then fewer workers, then
//!    policy order, then smaller chunk, then smaller vector width).
//!    The analytic model ranks the
//!    same candidates by predicted cost `W/speedup(U,P) +
//!    S·events(U,P)`; the db records whether it agrees.
//!
//! **Deterministic mode** ([`CalibrationSpec::deterministic`], used
//! under the serve layer's job-gate test hook): selection ignores the
//! wall clock entirely and scores candidates with a *structural* cost
//! — ideal makespan and scheduling-event counts over a synthetic
//! work/sync ratio — and skips the measured-work Table 1 pruning, so
//! two calibrations of the same case produce databases with
//! [`crate::TuneDb::same_decisions`] equality. Timing fields are still
//! measured and recorded; they are just not load-bearing.

use crate::db::{TuneDb, TuneEntry, TUNE_SCHEMA_VERSION};
use crate::space::{candidates, Candidate};
use f3d::service::{F3dSolver, ServiceCase, MAX_STEPS, MAX_WORKERS, MAX_ZONES};
use fdtd::service::FdtdSolver;
use llp::obs::attr::{kernel_overheads, AttributionReport};
use llp::obs::timeline::DEFAULT_EVENT_CAPACITY;
use llp::{FlightRecorder, Policy, Recorder, ScheduleMap, Workers};
use perfmodel::OverheadBound;
use solver::{Solver, WidthMap};

/// What to calibrate and how hard to try.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalibrationSpec {
    /// Zones of the calibration case (1..=[`MAX_ZONES`]).
    pub zones: usize,
    /// Steps of the calibration case (1..=[`MAX_STEPS`]).
    pub steps: usize,
    /// Trials per candidate — the K of median-of-K (1..=9, odd
    /// recommended).
    pub trials: usize,
    /// Select winners by the structural model instead of the wall
    /// clock, making the calibration bit-reproducible (the job-gate
    /// test mode; see the module docs).
    pub deterministic: bool,
}

impl Default for CalibrationSpec {
    fn default() -> Self {
        Self {
            zones: 2,
            steps: 2,
            trials: 3,
            deterministic: false,
        }
    }
}

impl CalibrationSpec {
    /// Check the spec against the service caps.
    ///
    /// # Errors
    /// Returns a message naming the offending field and its bound.
    pub fn validate(&self) -> Result<(), String> {
        let check = |name: &str, v: usize, max: usize| {
            if (1..=max).contains(&v) {
                Ok(())
            } else {
                Err(format!("{name} must be in 1..={max}, got {v}"))
            }
        };
        check("zones", self.zones, MAX_ZONES)?;
        check("steps", self.steps, MAX_STEPS)?;
        check("trials", self.trials, 9)
    }

    fn case(&self, workers: usize) -> ServiceCase {
        ServiceCase {
            zones: self.zones,
            steps: self.steps,
            workers,
            schedule: Policy::Static,
            zone_schedule: f3d::service::ZoneSchedule::Sequential,
            vector_width: 1,
        }
    }
}

/// Structural cost constants for deterministic mode: a synthetic
/// work/sync ratio (iteration work in "units", one scheduling event's
/// cost in the same units). The absolute values are arbitrary; only
/// the ranking they induce matters, and it must not depend on any
/// measurement.
const STRUCTURAL_WORK_PER_ITERATION: u64 = 1_000;
const STRUCTURAL_SYNC_COST: u64 = 50;

/// One kernel's seed-pass profile.
struct KernelSeed {
    kernel: String,
    /// Mean iterations per region (stair-step `U`).
    units: u64,
    /// Mean compute nanoseconds per region (empirical `W`).
    work_ns: u64,
    candidates: Vec<Candidate>,
}

/// Run a full calibration of the F3D service kernels on a view of
/// `pool` and return the winning per-kernel configurations.
///
/// The measurement runs on a `pool.sized_view` of the pool's own width
/// with a *private* span recorder and flight recorder, so concurrent
/// users of the pool keep their observability streams; shared
/// sync-event totals still accumulate on the pool, as for any view.
///
/// # Errors
/// Invalid specs, service failures, and a seed pass that yields no
/// flight data are reported as a message.
pub fn calibrate(pool: &Workers, spec: &CalibrationSpec) -> Result<TuneDb, String> {
    calibrate_solver::<F3dSolver, _>(pool, spec, |workers| spec.case(workers))
}

/// [`calibrate`] for the FDTD Maxwell workload: the identical
/// measurement protocol over the `update_e` / `update_h` sweeps. The
/// spec's `zones` knob sets the calibration grid scale (edge
/// `16 × zones` points), so the same `/v1/tune` vocabulary drives both
/// solvers.
///
/// # Errors
/// As [`calibrate`].
pub fn calibrate_fdtd(pool: &Workers, spec: &CalibrationSpec) -> Result<TuneDb, String> {
    calibrate_solver::<FdtdSolver, _>(pool, spec, |workers| fdtd::service::FdtdCase {
        size: 16 * spec.zones,
        steps: spec.steps,
        workers,
        schedule: Policy::Static,
        vector_width: 1,
    })
}

/// The solver-generic calibration core both entry points share: seed
/// pass, candidate search, and selection run through
/// [`solver::run_instrumented`], so any workload implementing the
/// [`Solver`] trait calibrates with the same protocol and lands in the
/// same versioned database (keyed by [`Solver::kind`]).
///
/// # Errors
/// Invalid specs, solver failures, and a seed pass that yields no
/// flight data are reported as a message.
pub fn calibrate_solver<S, F>(
    pool: &Workers,
    spec: &CalibrationSpec,
    case_for: F,
) -> Result<TuneDb, String>
where
    S: Solver,
    F: Fn(usize) -> S::Config,
{
    spec.validate()?;
    let width = pool.processors().min(MAX_WORKERS);
    let mut view = pool.sized_view(width);
    view.set_recorder(Recorder::enabled());
    view.set_flight(FlightRecorder::enabled(width, DEFAULT_EVENT_CAPACITY));
    let case = case_for(width);

    // --- Seed pass: measure U, W and S at the default config. ---
    let seed_run = solver::run_instrumented::<S>(&case, &view, None, None)?;
    let seed_attr = AttributionReport::from_timeline(&seed_run.timeline);
    let seed_rows = kernel_overheads(&seed_run.report, &seed_attr);
    if seed_rows.is_empty() || seed_attr.regions.is_empty() {
        return Err("calibration seed pass produced no flight data".to_string());
    }
    let sync_cost_ns = seed_attr
        .model_check()
        .map_or(0.0, |c| c.sync_cost_ns)
        .round() as u64;
    let bound = OverheadBound::paper_default(sync_cost_ns);

    let seeds: Vec<KernelSeed> = seed_rows
        .iter()
        .filter(|row| row.regions > 0)
        .map(|row| {
            let units = row.iterations / row.regions;
            let work_ns = row.compute_ns / row.regions;
            // Deterministic mode must not let measured work steer the
            // candidate set (Table 1 pruning), only the structural
            // stair-step law.
            let prune = if spec.deterministic {
                None
            } else {
                Some((&bound, work_ns))
            };
            KernelSeed {
                kernel: row.kernel.clone(),
                units,
                work_ns,
                candidates: candidates(units, width, prune),
            }
        })
        .collect();

    // --- Search: measure every candidate of every kernel. ---
    let rounds = seeds.iter().map(|s| s.candidates.len()).max().unwrap_or(0);
    // costs[kernel][candidate] = all wall-ns measurements.
    let mut costs: Vec<Vec<Vec<u64>>> = seeds
        .iter()
        .map(|s| vec![Vec::new(); s.candidates.len()])
        .collect();
    for round in 0..rounds {
        let mut map = ScheduleMap::new();
        let mut widths = WidthMap::new();
        for seed in &seeds {
            let cand = seed.candidates[round % seed.candidates.len()];
            map.set(&seed.kernel, cand.workers, cand.policy);
            widths.set(&seed.kernel, cand.vector_width);
        }
        for _ in 0..spec.trials {
            let run = solver::run_instrumented::<S>(&case, &view, Some(&map), Some(&widths))?;
            let attr = AttributionReport::from_timeline(&run.timeline);
            let rows = kernel_overheads(&run.report, &attr);
            for (si, seed) in seeds.iter().enumerate() {
                if let Some(row) = rows.iter().find(|r| r.kernel == seed.kernel) {
                    let ci = round % seed.candidates.len();
                    costs[si][ci].push(row.wall_ns);
                }
            }
        }
    }

    // --- Selection. ---
    let mut entries = Vec::with_capacity(seeds.len());
    for (si, seed) in seeds.iter().enumerate() {
        let default = Candidate::default_config(width);
        let default_ci = seed
            .candidates
            .iter()
            .position(|c| *c == default)
            .ok_or_else(|| format!("default config missing from {} search", seed.kernel))?;
        let measured: Vec<u64> = costs[si].iter().map(|m| median(m)).collect();
        let modeled: Vec<u64> = seed
            .candidates
            .iter()
            .map(|c| modeled_cost_ns(seed, c, sync_cost_ns))
            .collect();
        let structural: Vec<u64> = seed
            .candidates
            .iter()
            .map(|c| structural_cost(seed.units, c))
            .collect();
        let primary = if spec.deterministic {
            &structural
        } else {
            &measured
        };
        let mut win = select(&seed.candidates, primary, &modeled);
        // The near-tie band in `select` lets the modeled cost promote a
        // candidate that measured slightly worse than the default.
        // Never publish such a winner: the default is the
        // no-regression floor (`TuneEntry::default_cost_ns` docs).
        // Deterministic mode keeps the structural pick — its contract
        // is reproducibility, not measured cost.
        if !spec.deterministic && measured[win] > measured[default_ci] {
            win = default_ci;
        }
        let model_win = select(&seed.candidates, &modeled, &structural);
        entries.push(TuneEntry {
            kernel: seed.kernel.clone(),
            workers: seed.candidates[win].workers,
            schedule: seed.candidates[win].policy,
            vector_width: seed.candidates[win].vector_width,
            iterations: seed.units,
            candidates_tried: seed.candidates.len(),
            measured_cost_ns: measured[win],
            default_cost_ns: measured[default_ci],
            modeled_cost_ns: modeled[win],
            model_agrees: seed.candidates[model_win] == seed.candidates[win],
            stale: false,
        });
    }
    entries.sort_by(|a, b| a.kernel.cmp(&b.kernel));

    Ok(TuneDb {
        schema_version: TUNE_SCHEMA_VERSION,
        solver: S::kind().to_string(),
        pool_width: width,
        zones: spec.zones,
        steps: spec.steps,
        trials: spec.trials,
        sync_cost_ns,
        entries,
    })
}

/// The analytic prediction for one candidate: parallel work per the
/// policy's ideal speedup under the stair-step law, plus one measured
/// sync cost per scheduling event, scaled by the kernel's region count
/// — everything in nanoseconds so it is directly comparable with the
/// measured wall cost.
///
/// The model is deliberately **width-agnostic**: the paper's laws
/// price loop-level parallelism (workers, chunks, sync events) and
/// have no superword term, so candidates differing only in
/// `vector_width` are modeled identically and the *measured* cost is
/// what separates them. The width-1 bias in [`select`]'s tie key keeps
/// the ranking total anyway.
fn modeled_cost_ns(seed: &KernelSeed, cand: &Candidate, sync_cost_ns: u64) -> u64 {
    let u = usize::try_from(seed.units).unwrap_or(usize::MAX);
    let speedup = cand.policy.ideal_speedup(u, cand.workers);
    let events = cand.policy.scheduling_events(u, cand.workers) as u64;
    let work = (seed.work_ns as f64 / speedup).round() as u64;
    work.saturating_add(events.saturating_mul(sync_cost_ns))
}

/// Purely structural cost (deterministic mode): the same shape as
/// [`modeled_cost_ns`] with a fixed synthetic work/sync ratio instead
/// of measurements.
fn structural_cost(units: u64, cand: &Candidate) -> u64 {
    let u = usize::try_from(units).unwrap_or(usize::MAX);
    let makespan = cand.policy.ideal_makespan(u, cand.workers) as u64;
    let events = cand.policy.scheduling_events(u, cand.workers) as u64;
    makespan
        .saturating_mul(STRUCTURAL_WORK_PER_ITERATION)
        .saturating_add(events.saturating_mul(STRUCTURAL_SYNC_COST))
}

/// Pick the winning candidate index: minimum primary cost, near-ties
/// (within 2 %) broken by secondary cost, then fewer workers, then
/// policy order (static < dynamic < guided), then smaller chunk, then
/// smaller vector width — a total, deterministic order. The width
/// tiebreak means a wide variant only wins when it *measures* better:
/// both cost models are width-agnostic, so without it the order would
/// not be total and deterministic mode could not reproduce decisions.
fn select(cands: &[Candidate], primary: &[u64], secondary: &[u64]) -> usize {
    let rank = |c: &Candidate| match c.policy {
        Policy::Static => (0usize, 0usize),
        Policy::Dynamic { chunk } => (1, chunk),
        Policy::Guided { min_chunk } => (2, min_chunk),
    };
    let mut best = 0;
    for i in 1..cands.len() {
        let (lo, hi) = (primary[i].min(primary[best]), primary[i].max(primary[best]));
        let near_tie = hi.saturating_sub(lo) * 50 <= hi; // within 2%
        let better = if near_tie {
            let key = |j: usize| {
                (
                    secondary[j],
                    cands[j].workers,
                    rank(&cands[j]),
                    cands[j].vector_width,
                )
            };
            key(i) < key(best)
        } else {
            primary[i] < primary[best]
        };
        if better {
            best = i;
        }
    }
    best
}

/// Median of a measurement set (upper median for even counts; 0 when
/// empty — an unmeasured candidate never wins because the default is
/// always measured... except it would with cost 0, so map empty to
/// `u64::MAX`).
fn median(samples: &[u64]) -> u64 {
    if samples.is_empty() {
        return u64::MAX;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted[sorted.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validation_names_the_field() {
        assert!(CalibrationSpec::default().validate().is_ok());
        let bad = CalibrationSpec {
            trials: 10,
            ..CalibrationSpec::default()
        };
        let err = bad.validate().unwrap_err();
        assert!(err.contains("trials"), "{err}");
        assert!(CalibrationSpec {
            zones: 0,
            ..CalibrationSpec::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn median_is_robust_and_total() {
        assert_eq!(median(&[]), u64::MAX);
        assert_eq!(median(&[7]), 7);
        assert_eq!(median(&[1, 100, 3]), 3);
        assert_eq!(median(&[1, 2, 3, 1000]), 3);
    }

    #[test]
    fn selection_is_deterministic_and_prefers_cheap_simple_configs() {
        let cands = [
            Candidate {
                workers: 4,
                policy: Policy::Static,
                vector_width: 1,
            },
            Candidate {
                workers: 2,
                policy: Policy::Static,
                vector_width: 1,
            },
            Candidate {
                workers: 4,
                policy: Policy::Dynamic { chunk: 1 },
                vector_width: 1,
            },
        ];
        // Clear winner by primary cost.
        assert_eq!(select(&cands, &[100, 50, 90], &[0, 0, 0]), 1);
        // Near-tie: secondary cost decides.
        assert_eq!(select(&cands, &[100, 100, 100], &[5, 9, 1]), 2);
        // Full tie: fewer workers, then simpler policy.
        assert_eq!(select(&cands, &[100, 100, 100], &[5, 5, 5]), 1);
    }

    #[test]
    fn width_ties_break_toward_scalar() {
        // Same (workers, policy) at two widths with identical costs —
        // the width-agnostic models guarantee this shape — must pick
        // the scalar variant, never the wide one.
        let cands = [
            Candidate {
                workers: 2,
                policy: Policy::Static,
                vector_width: 4,
            },
            Candidate {
                workers: 2,
                policy: Policy::Static,
                vector_width: 1,
            },
        ];
        assert_eq!(select(&cands, &[100, 100], &[5, 5]), 1);
        // But a measured win at a wide width takes it.
        assert_eq!(select(&cands, &[80, 100], &[5, 5]), 0);
        // Width never changes the width-agnostic structural cost.
        assert_eq!(
            structural_cost(10, &cands[0]),
            structural_cost(10, &cands[1])
        );
    }

    #[test]
    fn structural_cost_rewards_plateau_edges() {
        // U = 10: P=5 halves the makespan of P=2 under static.
        let c2 = Candidate {
            workers: 2,
            policy: Policy::Static,
            vector_width: 1,
        };
        let c5 = Candidate {
            workers: 5,
            policy: Policy::Static,
            vector_width: 1,
        };
        assert!(structural_cost(10, &c5) < structural_cost(10, &c2));
        // Dynamic unit chunks pay for their hand-outs.
        let d5 = Candidate {
            workers: 5,
            policy: Policy::Dynamic { chunk: 1 },
            vector_width: 1,
        };
        assert!(structural_cost(10, &d5) > structural_cost(10, &c5));
    }

    #[test]
    fn calibration_runs_and_selected_configs_never_lose_to_default() {
        let pool = Workers::new(2);
        let spec = CalibrationSpec {
            zones: 1,
            steps: 1,
            trials: 1,
            deterministic: false,
        };
        let db = calibrate(&pool, &spec).unwrap();
        assert_eq!(db.schema_version, TUNE_SCHEMA_VERSION);
        assert_eq!(db.solver, "f3d");
        assert_eq!(db.pool_width, 2);
        // The six parallel kernels, sorted; serial bc/inject excluded.
        let names: Vec<&str> = db.entries.iter().map(|e| e.kernel.as_str()).collect();
        assert_eq!(
            names,
            [
                "j_factor",
                "k_factor",
                "l_factor_scatter",
                "l_factor_solve",
                "rhs",
                "update"
            ]
        );
        for e in &db.entries {
            assert!(e.workers >= 1 && e.workers <= 2);
            assert!(e.candidates_tried >= 2);
            assert!(e.iterations > 0);
            assert!(
                f3d::kernels::SUPPORTED_WIDTHS.contains(&e.vector_width),
                "{}: width {}",
                e.kernel,
                e.vector_width
            );
            // Measured selection: the winner never loses to the default.
            assert!(
                e.measured_cost_ns <= e.default_cost_ns,
                "{}: {} > {}",
                e.kernel,
                e.measured_cost_ns,
                e.default_cost_ns
            );
        }
    }

    #[test]
    fn fdtd_calibration_covers_both_sweeps() {
        let pool = Workers::new(2);
        let spec = CalibrationSpec {
            zones: 1,
            steps: 2,
            trials: 1,
            deterministic: true,
        };
        let db = calibrate_fdtd(&pool, &spec).unwrap();
        assert_eq!(db.solver, "fdtd");
        assert_eq!(db.zones, 1, "the calibration scale is recorded");
        // The two parallel sweeps, sorted; the serial source excluded.
        let names: Vec<&str> = db.entries.iter().map(|e| e.kernel.as_str()).collect();
        assert_eq!(names, ["update_e", "update_h"]);
        for e in &db.entries {
            assert!(e.iterations > 0);
            assert!(e.candidates_tried >= 2);
        }
        // Deterministic mode reproduces FDTD decisions too.
        let again = calibrate_fdtd(&pool, &spec).unwrap();
        assert!(db.same_decisions(&again));
        // And the two solvers' databases are never decision-equal.
        let f3d_db = calibrate(
            &pool,
            &CalibrationSpec {
                zones: 1,
                steps: 1,
                trials: 1,
                deterministic: true,
            },
        )
        .unwrap();
        assert!(!db.same_decisions(&f3d_db));
    }

    #[test]
    fn deterministic_mode_reproduces_decisions() {
        let pool = Workers::new(2);
        let spec = CalibrationSpec {
            zones: 1,
            steps: 1,
            trials: 1,
            deterministic: true,
        };
        let a = calibrate(&pool, &spec).unwrap();
        let b = calibrate(&pool, &spec).unwrap();
        assert!(a.same_decisions(&b));
        // And the decisions survive a JSON round trip.
        let text = a.to_json().to_pretty_string();
        let back: TuneDb = text.parse().unwrap();
        assert!(a.same_decisions(&back));
    }
}
