//! Umbrella crate for the loop-level-parallelism reproduction suite.
//!
//! Re-exports the workspace crates so examples and integration tests can
//! use a single dependency. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

pub use cachesim;
pub use f3d;
pub use llp;
pub use mesh;
pub use perfmodel;
pub use smpsim;
