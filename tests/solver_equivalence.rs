//! Integration tests: the two F3D implementations are the same
//! algorithm — on Cartesian, stretched, and curvilinear grids, across
//! boundary-condition sets, worker counts, and flow regimes.

use f3d::bc::{BcKind, Face, ZoneBcs};
use f3d::risc_impl::RiscStepper;
use f3d::solver::{SolverConfig, ZoneSolver};
use f3d::state::FlowState;
use f3d::vector_impl::VectorStepper;
use llp::Workers;
use mesh::{Axis, Dims, Ijk, Metrics, Zone};

fn perturb(zone: &mut ZoneSolver) {
    for p in zone.dims().iter_jkl() {
        let mut q = zone.q.get(p);
        let phase = (2 * p.j + 3 * p.k + 5 * p.l) as f64;
        q[0] *= 1.0 + 0.015 * phase.sin();
        q[4] *= 1.0 + 0.008 * phase.cos();
        zone.q.set(p, q);
    }
}

fn run_both(
    config: SolverConfig,
    metrics: Metrics,
    bcs: &ZoneBcs,
    steps: usize,
    workers: &Workers,
) -> (ZoneSolver, ZoneSolver) {
    let (mut vz, mut vstep) = VectorStepper::new_zone(config, metrics.clone());
    let (mut rz, mut rstep) = RiscStepper::new_zone(config, metrics);
    perturb(&mut vz);
    perturb(&mut rz);
    for _ in 0..steps {
        vstep.step(&mut vz, bcs);
        rstep.step(&mut rz, bcs, workers, None);
    }
    (vz, rz)
}

#[test]
fn identical_on_cartesian_grid() {
    let workers = Workers::new(3);
    let (vz, rz) = run_both(
        SolverConfig::supersonic(),
        Metrics::cartesian(Dims::new(10, 9, 8), (0.25, 0.25, 0.25)),
        &ZoneBcs::projectile(),
        6,
        &workers,
    );
    assert_eq!(vz.q.max_abs_diff(&rz.q), 0.0);
}

#[test]
fn identical_on_curvilinear_grid() {
    // A real curvilinear cylinder-segment zone with finite-difference
    // metrics — the geometry class the paper's projectile cases use.
    let d = Dims::new(8, 10, 9);
    let zone = Zone::cylinder_segment(d, 4.0, 1.0, 8.0);
    let metrics = zone.metrics();
    let workers = Workers::new(2);
    let config = SolverConfig {
        flow: FlowState::freestream(2.0, 0.05),
        dt: 0.01,
        eps2: 0.1,
        eps_imp: 0.4,
        viscosity: 0.0,
        prandtl: 0.72,
        local_cfl: None,
    };
    let (vz, rz) = run_both(config, metrics, &ZoneBcs::projectile(), 4, &workers);
    assert_eq!(vz.q.max_abs_diff(&rz.q), 0.0);
    // Sanity: fields stayed physical on the curvilinear grid.
    for p in vz.dims().iter_jkl() {
        let _ = f3d::state::Primitive::from_conserved(&vz.q.get(p));
    }
}

#[test]
fn identical_in_subsonic_regime() {
    let workers = Workers::new(4);
    let (vz, rz) = run_both(
        SolverConfig::subsonic(),
        Metrics::cartesian(Dims::new(9, 8, 10), (0.3, 0.3, 0.3)),
        &ZoneBcs::all_freestream(),
        6,
        &workers,
    );
    assert_eq!(vz.q.max_abs_diff(&rz.q), 0.0);
}

#[test]
fn identical_with_wall_and_extrapolation_bcs() {
    let workers = Workers::new(2);
    let bcs = ZoneBcs::all_freestream()
        .with(
            Face {
                axis: Axis::L,
                high: false,
            },
            BcKind::SlipWall,
        )
        .with(
            Face {
                axis: Axis::J,
                high: true,
            },
            BcKind::Extrapolate,
        )
        .with(
            Face {
                axis: Axis::K,
                high: true,
            },
            BcKind::Extrapolate,
        );
    let (vz, rz) = run_both(
        SolverConfig::supersonic(),
        Metrics::cartesian(Dims::new(8, 8, 8), (0.2, 0.2, 0.2)),
        &bcs,
        5,
        &workers,
    );
    assert_eq!(vz.q.max_abs_diff(&rz.q), 0.0);
}

#[test]
fn identical_in_viscous_mode() {
    // Thin-layer Navier-Stokes with a no-slip wall: both
    // implementations still bit-identical.
    let workers = Workers::new(3);
    let bcs = ZoneBcs::all_freestream().with(
        Face {
            axis: Axis::L,
            high: false,
        },
        BcKind::NoSlipWall,
    );
    let (vz, rz) = run_both(
        SolverConfig::viscous(2.0, 5.0e3),
        Metrics::cartesian(Dims::new(8, 7, 10), (0.2, 0.2, 0.1)),
        &bcs,
        5,
        &workers,
    );
    assert_eq!(vz.q.max_abs_diff(&rz.q), 0.0);
    // The wall actually enforced no-slip.
    for j in 0..8 {
        for k in 0..7 {
            let prim = f3d::state::Primitive::from_conserved(&rz.q.get(Ijk::new(j, k, 0)));
            assert_eq!(prim.speed(), 0.0, "slip at wall point ({j},{k})");
        }
    }
}

#[test]
fn boundary_layer_forms_at_a_no_slip_wall() {
    // The qualitative viscous check: start from freestream over a
    // no-slip wall and a velocity deficit must diffuse upward from it.
    let d = Dims::new(6, 5, 16);
    let config = SolverConfig::viscous(2.0, 2.0e3);
    let metrics = Metrics::cartesian(d, (0.3, 0.3, 0.05));
    let bcs = ZoneBcs::all_freestream()
        .with(
            Face {
                axis: Axis::L,
                high: false,
            },
            BcKind::NoSlipWall,
        )
        .with(
            Face {
                axis: Axis::J,
                high: true,
            },
            BcKind::Extrapolate,
        );
    let (mut zone, mut stepper) = RiscStepper::new_zone(config, metrics);
    let workers = Workers::new(2);
    for _ in 0..60 {
        stepper.step(&mut zone, &bcs, &workers, None);
    }
    // u at the first interior point off the wall is now well below
    // freestream; far from the wall it is not.
    let probe = |l: usize| f3d::state::Primitive::from_conserved(&zone.q.get(Ijk::new(3, 2, l))).u;
    let u_inf = config.flow.primitive().u;
    assert!(probe(1) < 0.9 * u_inf, "no deficit near wall: {}", probe(1));
    assert!(
        probe(d.l - 2) > 0.97 * u_inf,
        "far field disturbed: {}",
        probe(d.l - 2)
    );
    // Monotone-ish recovery away from the wall at low altitude.
    assert!(probe(1) < probe(3));
}

#[test]
fn identical_with_local_time_stepping() {
    let workers = Workers::new(3);
    let config = SolverConfig::supersonic().with_local_time_stepping(2.0);
    let (vz, rz) = run_both(
        config,
        // Nonuniform spacing so the local dt actually varies per point.
        Metrics::cartesian(Dims::new(9, 8, 9), (0.1, 0.3, 0.7)),
        &ZoneBcs::projectile(),
        5,
        &workers,
    );
    assert_eq!(vz.q.max_abs_diff(&rz.q), 0.0);
}

#[test]
fn local_time_stepping_converges_no_slower() {
    // The standard claim: local dt reaches steady state in no more
    // steps than a conservatively small global dt.
    let d = Dims::new(10, 9, 8);
    let bcs = ZoneBcs::all_freestream();
    let run = |config: SolverConfig| {
        let (mut zone, mut stepper) =
            RiscStepper::new_zone(config, Metrics::cartesian(d, (0.1, 0.4, 0.8)));
        let c = Ijk::new(5, 4, 4);
        let mut q = zone.q.get(c);
        q[0] *= 1.04;
        zone.q.set(c, q);
        let workers = Workers::new(2);
        for _ in 0..30 {
            stepper.step(&mut zone, &bcs, &workers, None);
        }
        zone.freestream_deviation()
    };
    let mut global = SolverConfig::supersonic();
    global.dt = 0.01; // conservative global step for the finest spacing
    let global_dev = run(global);
    let local_dev = run(SolverConfig::supersonic().with_local_time_stepping(1.5));
    assert!(
        local_dev <= global_dev * 1.05,
        "local {local_dev} vs global {global_dev}"
    );
}

#[test]
fn worker_count_is_invisible_to_the_numerics() {
    let d = Dims::new(9, 10, 8);
    let bcs = ZoneBcs::projectile();
    let mut fields = Vec::new();
    for nw in [1usize, 2, 3, 7] {
        let workers = Workers::new(nw);
        let (_, rz) = run_both(
            SolverConfig::supersonic(),
            Metrics::cartesian(d, (0.25, 0.25, 0.25)),
            &bcs,
            4,
            &workers,
        );
        fields.push(rz.q);
    }
    for f in &fields[1..] {
        assert_eq!(fields[0].max_abs_diff(f), 0.0);
    }
}

#[test]
fn perturbation_decays_in_both_implementations() {
    // The convergence property itself, both ways (the quantity the
    // paper refuses to let parallelization change).
    let d = Dims::new(10, 9, 8);
    let workers = Workers::new(2);
    let (mut vz, mut vstep) = VectorStepper::new_zone(
        SolverConfig::supersonic(),
        Metrics::cartesian(d, (0.25, 0.25, 0.25)),
    );
    let (mut rz, mut rstep) = RiscStepper::new_zone(
        SolverConfig::supersonic(),
        Metrics::cartesian(d, (0.25, 0.25, 0.25)),
    );
    let bump = |z: &mut ZoneSolver| {
        let c = Ijk::new(5, 4, 4);
        let mut q = z.q.get(c);
        q[0] *= 1.04;
        q[4] *= 1.04;
        z.q.set(c, q);
    };
    bump(&mut vz);
    bump(&mut rz);
    let initial = vz.freestream_deviation();
    let bcs = ZoneBcs::all_freestream();
    for _ in 0..40 {
        vstep.step(&mut vz, &bcs);
        rstep.step(&mut rz, &bcs, &workers, None);
    }
    assert!(vz.freestream_deviation() < 0.3 * initial);
    assert!(rz.freestream_deviation() < 0.3 * initial);
    assert_eq!(vz.q.max_abs_diff(&rz.q), 0.0);
}
