//! Integration tests: aerodynamic observables on body-fitted grids —
//! the quantities the paper's production F3D runs were for.

use f3d::bc::{BcKind, Face, ZoneBcs};
use f3d::forces::pressure_force;
use f3d::risc_impl::RiscStepper;
use f3d::solver::{SolverConfig, ZoneSolver};
use f3d::state::FlowState;
use llp::Workers;
use mesh::{Arrangement, Axis, Dims, Layout, Zone};

fn projectile_case(alpha: f64, steps: usize) -> ZoneSolver {
    let d = Dims::new(14, 13, 10);
    let grid = Zone::cylinder_segment(d, 6.0, 1.0, 7.0);
    let config = SolverConfig {
        flow: FlowState::freestream(2.0, alpha),
        dt: 0.02,
        eps2: 0.12,
        eps_imp: 0.5,
        viscosity: 0.0,
        prandtl: 0.72,
        local_cfl: None,
    };
    let bcs = ZoneBcs::all_freestream()
        .with(
            Face {
                axis: Axis::L,
                high: false,
            },
            BcKind::SlipWall,
        )
        .with(
            Face {
                axis: Axis::J,
                high: true,
            },
            BcKind::Extrapolate,
        );
    let mut zone = ZoneSolver::freestream(
        config,
        grid.metrics(),
        Layout::jkl(),
        Arrangement::ComponentInner,
    );
    let mut stepper = RiscStepper::for_zone(&zone);
    let workers = Workers::new(2);
    for _ in 0..steps {
        stepper.step(&mut zone, &bcs, &workers, None);
    }
    zone
}

#[test]
fn incidence_produces_lift() {
    let at_alpha = projectile_case(0.06, 50);
    let f = pressure_force(
        &at_alpha,
        Face {
            axis: Axis::L,
            high: false,
        },
    );
    let (_, lift) = f.drag_lift(&at_alpha, 2.0 * 6.0);
    assert!(lift.is_finite());
    assert!(lift > 1e-4, "no lift at incidence: {lift}");
}

#[test]
fn lift_grows_with_incidence() {
    let small = projectile_case(0.03, 50);
    let large = projectile_case(0.08, 50);
    let face = Face {
        axis: Axis::L,
        high: false,
    };
    let (_, cl_small) = pressure_force(&small, face).drag_lift(&small, 12.0);
    let (_, cl_large) = pressure_force(&large, face).drag_lift(&large, 12.0);
    assert!(
        cl_large > cl_small,
        "lift not increasing: {cl_small} -> {cl_large}"
    );
}

#[test]
fn zero_incidence_half_body_carries_no_sideforce() {
    // At alpha = 0 the flow is symmetric about the x axis; the
    // half-cylinder (theta in [0, pi]) sees symmetric pressure, so the
    // y component (in-plane of the half-arc's symmetry) vanishes while
    // x (axial) stays small.
    let zone = projectile_case(0.0, 40);
    let f = pressure_force(
        &zone,
        Face {
            axis: Axis::L,
            high: false,
        },
    );
    let fs = zone.config.flow.primitive();
    let q_area = 0.5 * fs.rho * fs.speed() * fs.speed() * 12.0;
    assert!(
        f.force[1].abs() / q_area < 5e-3,
        "sideforce at zero incidence: {}",
        f.force[1] / q_area
    );
}

#[test]
fn forces_are_worker_count_independent() {
    // The observable inherits the solver's reproducibility.
    let face = Face {
        axis: Axis::L,
        high: false,
    };
    let a = projectile_case(0.05, 20);
    let fa = pressure_force(&a, face);
    let b = projectile_case(0.05, 20);
    let fb = pressure_force(&b, face);
    assert_eq!(fa.force, fb.force);
}
