//! Integration tests across the tooling stack: llp ↔ perfmodel
//! consistency, cachesim ↔ smpsim contention inputs, profiler ↔ advisor
//! on a real solver run.

use f3d::bc::ZoneBcs;
use f3d::risc_impl::RiscStepper;
use f3d::solver::SolverConfig;
use llp::{Advisor, LoopDecision, LoopProfiler, StaticSchedule, Workers};
use mesh::{Axis, Dims, Layout, Metrics};
use perfmodel::overhead::OverheadBound;

#[test]
fn llp_schedule_matches_perfmodel_everywhere() {
    // The scheduler IS the stair-step model: exhaustive agreement over
    // a broad (n, p) grid.
    for n in 1..=200usize {
        for p in 1..=64usize {
            let sched = StaticSchedule::new(n, p);
            let model = perfmodel::ideal_speedup(n as u64, p as u32);
            assert!((sched.ideal_speedup() - model).abs() < 1e-12, "n={n} p={p}");
            assert_eq!(
                sched.max_chunk() as u64,
                perfmodel::max_units_per_processor(n as u64, p as u32)
            );
        }
    }
}

#[test]
fn cachesim_sharing_feeds_smpsim_contention_consistently() {
    // Slab-parallel patterns must produce near-zero contention inputs;
    // strided-parallel patterns must not.
    // Large enough that pages ≫ chunk boundaries (the paper's zones are
    // far larger still); with tiny arrays even slab-parallel loops
    // share pages at the chunk seams.
    let dims = Dims::new(64, 64, 64);
    let slab = cachesim::page_sharing(dims, Layout::jkl(), Axis::L, 8, 16 << 10);
    let strided = cachesim::page_sharing(dims, Layout::jkl(), Axis::J, 8, 16 << 10);
    assert!(slab.shared_fraction() < 0.2);
    assert!(strided.shared_fraction() > 0.95);
    let coeff = 0.5;
    let m_slab = smpsim::contention_multiplier(slab.shared_fraction(), 64, coeff);
    let m_strided = smpsim::contention_multiplier(strided.shared_fraction(), 64, coeff);
    assert!(m_slab < 8.0, "{m_slab}");
    assert!(m_strided > 20.0, "{m_strided}");
}

#[test]
fn profiled_solver_run_drives_the_advisor() {
    // End-to-end Section 4 workflow on the real solver: profile a run,
    // feed the advisor, and get the paper's decisions back — main
    // sweeps worth parallelizing on a small SMP, BCs never.
    // Large enough that each sweep invocation clears the Table-1
    // minimum-work bound below with ~2x headroom on a fast host; at
    // 16x14x12 the per-invocation j_factor work sat within noise of
    // the 800k-cycle threshold.
    let d = Dims::new(20, 18, 16);
    let (mut zone, mut stepper) = RiscStepper::new_zone(
        SolverConfig::supersonic(),
        Metrics::cartesian(d, (0.2, 0.2, 0.2)),
    );
    let workers = Workers::new(2);
    let profiler = LoopProfiler::new();
    for _ in 0..3 {
        stepper.step(&mut zone, &ZoneBcs::projectile(), &workers, Some(&profiler));
    }
    let report = profiler.report();
    assert!(report.len() >= 7);
    // The sweeps dominate the profile; BC is a sliver.
    let bc = report.iter().find(|r| r.name == "bc").unwrap();
    assert!(bc.fraction_of_total < 0.1, "{}", bc.fraction_of_total);

    // Judge for a small cheap-sync SMP (host-scale work is tiny, so the
    // bound must be scaled to the host too: 1 GHz, 2k-cycle sync, 4p).
    let advisor = Advisor::new(1e9, OverheadBound::paper_default(2_000), 4);
    let advice = advisor.advise(&report);
    let decision_of = |name: &str| {
        advice
            .loops
            .iter()
            .find(|l| l.name == name)
            .unwrap_or_else(|| panic!("loop {name} missing"))
            .decision
            .clone()
    };
    assert!(
        matches!(decision_of("j_factor"), LoopDecision::Parallelize { .. }),
        "{:?}",
        decision_of("j_factor")
    );
    assert!(
        matches!(decision_of("k_factor"), LoopDecision::Parallelize { .. }),
        "{:?}",
        decision_of("k_factor")
    );
    // BC: too little work even on the friendliest machine here.
    assert!(
        !matches!(decision_of("bc"), LoopDecision::Parallelize { .. }),
        "{:?}",
        decision_of("bc")
    );
    assert!(advice.predicted_speedup > 1.5);
}

#[test]
fn sync_events_measured_equal_trace_prediction() {
    // The llp pool's measured synchronization events per step match the
    // analytic trace's sync_events() for the same single-zone schedule.
    let d = Dims::new(8, 9, 10);
    let (mut zone, mut stepper) = RiscStepper::new_zone(
        SolverConfig::subsonic(),
        Metrics::cartesian(d, (0.3, 0.3, 0.3)),
    );
    let workers = Workers::new(2);
    workers.reset_counters();
    stepper.step(&mut zone, &ZoneBcs::all_freestream(), &workers, None);
    let measured = workers.sync_event_count();

    let grid = mesh::MultiZoneGrid::chained(vec![mesh::ZoneSpec {
        name: "z".into(),
        dims: d,
    }]);
    let trace = f3d::trace::risc_step_trace(&grid, &cachesim::presets::origin2000_r12k());
    // The trace models the L factor as one loop; the safe-Rust
    // implementation splits it into solve + scatter regions.
    assert_eq!(measured, trace.sync_events() + 1);
}

#[test]
fn fusion_reduces_sync_events_in_practice() {
    let workers = Workers::new(3);
    workers.reset_counters();
    llp::FusedRegion::over(50)
        .then(|_| {})
        .then(|_| {})
        .then(|_| {})
        .then(|_| {})
        .run(&workers);
    assert_eq!(workers.sync_event_count(), 1);
    workers.reset_counters();
    llp::FusedRegion::over(50)
        .then(|_| {})
        .then(|_| {})
        .then(|_| {})
        .then(|_| {})
        .run_unfused(&workers);
    assert_eq!(workers.sync_event_count(), 4);
}

#[test]
fn umbrella_crate_reexports_everything() {
    // llp_suite is the single-dependency entry point.
    let _ = llp_suite::perfmodel::ideal_speedup(15, 4);
    let _ = llp_suite::mesh::Dims::new(2, 2, 2);
    let _ = llp_suite::llp::Workers::serial();
    let _ = llp_suite::cachesim::presets::origin2000_r12k();
    let _ = llp_suite::smpsim::presets::origin2000_r12k_128();
    let _ = llp_suite::f3d::solver::SolverConfig::supersonic();
}
