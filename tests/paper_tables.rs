//! Integration tests: the paper's tables and figures, regenerated
//! end-to-end through the full stack (f3d trace → smpsim machine) and
//! checked against the paper's *shape* claims.

use f3d::trace::{risc_step_trace, vector_step_trace};
use mesh::MultiZoneGrid;
use smpsim::presets::{exemplar_spp1000_16, hp_v2500_16, hpc10000_64, origin2000_r12k_128};

#[test]
fn table4_one_million_shape() {
    let sgi = origin2000_r12k_128();
    let grid = MultiZoneGrid::paper_one_million();
    let trace = risc_step_trace(&grid, &sgi.memory);
    let exec = sgi.executor();

    let s = |p: u32| exec.execute(&trace, p).seconds;
    // Monotone improvement overall.
    assert!(s(16) < s(1));
    assert!(s(32) < s(16));
    assert!(s(48) < s(32));
    // The paper's plateau: "nearly flat performance between 48 and 64
    // processors for the l-million grid point test case".
    let plateau_change = (s(48) / s(64) - 1.0).abs();
    assert!(plateau_change < 0.05, "48->64 changed by {plateau_change}");
    // Beyond the L extent (70) a jump happens again.
    assert!(s(72) < s(64) * 0.98, "no jump past 70 processors");
}

#[test]
fn table4_fifty_nine_million_shape() {
    let sgi = origin2000_r12k_128();
    let grid = MultiZoneGrid::paper_fifty_nine_million();
    let trace = risc_step_trace(&grid, &sgi.memory);
    let exec = sgi.executor();
    let steps_hr = |p: u32| exec.execute(&trace, p).time_steps_per_hour();

    // The 59M case scales to the full machine (paper: 153 steps/hr at
    // 124 vs 2.3 at 1 — a 66x gain).
    let gain = steps_hr(124) / steps_hr(1);
    assert!(gain > 30.0, "only {gain}x at 124 processors");
    // Plateau between 88 and 104 (ceil(350/P) = 4 on both).
    let sec = |p: u32| exec.execute(&trace, p).seconds;
    let plateau_change = (sec(88) / sec(104) - 1.0).abs();
    assert!(plateau_change < 0.05, "88->104 changed by {plateau_change}");
    // Serial run is far slower than the 1M case (59x the points).
    let small = risc_step_trace(&MultiZoneGrid::paper_one_million(), &sgi.memory);
    let ratio = sec(1) / exec.execute(&small, 1).seconds;
    assert!((50.0..=70.0).contains(&ratio), "size ratio {ratio}");
}

#[test]
fn table4_sun_and_sgi_deliver_similar_per_processor() {
    // "the per processor delivered performance of the two systems is
    // actually very similar" despite 800 vs 600 peak.
    let sun = hpc10000_64();
    let sgi = origin2000_r12k_128();
    let grid = MultiZoneGrid::paper_one_million();
    let m_sun = sun
        .executor()
        .execute(&risc_step_trace(&grid, &sun.memory), 1)
        .mflops();
    let m_sgi = sgi
        .executor()
        .execute(&risc_step_trace(&grid, &sgi.memory), 1)
        .mflops();
    let ratio = m_sun / m_sgi;
    assert!((0.5..=1.6).contains(&ratio), "SUN {m_sun} vs SGI {m_sgi}");
    // Both far below peak (the paper's delivered-vs-peak point).
    assert!(m_sun < 0.6 * 800.0);
    assert!(m_sgi < 0.6 * 600.0);
}

#[test]
fn fig2_v2500_covers_left_edge_only() {
    let hp = hp_v2500_16();
    let grid = MultiZoneGrid::paper_one_million();
    let trace = risc_step_trace(&grid, &hp.memory);
    let exec = hp.executor();
    // Scales within its 16 processors...
    let s1 = exec.execute(&trace, 1).seconds;
    let s16 = exec.execute(&trace, 16).seconds;
    assert!(s1 / s16 > 8.0);
    // ...and stops there (the preset enforces the machine size).
    assert!(std::panic::catch_unwind(|| exec.execute(&trace, 17)).is_err());
}

#[test]
fn fig3_faster_clock_wins_everywhere() {
    let new = origin2000_r12k_128();
    let old = smpsim::presets::origin2000_r10k_128();
    let grid = MultiZoneGrid::paper_fifty_nine_million();
    let tn = risc_step_trace(&grid, &new.memory);
    let to = risc_step_trace(&grid, &old.memory);
    for p in [1u32, 32, 64, 104, 124] {
        let n = new.executor().execute(&tn, p).seconds;
        let o = old.executor().execute(&to, p).seconds;
        assert!(n < o, "300 MHz not faster at P={p}: {n} vs {o}");
    }
}

#[test]
fn serial_tuning_speedup_order_of_magnitude() {
    // Section 5: >10x on the Power Challenge from serial tuning alone.
    let pch = cachesim::presets::power_challenge_r8k();
    let grid = MultiZoneGrid::paper_one_million();
    // Compare the two implementations' single-processor times via a
    // UMA executor (serial: no parallel model involvement).
    let m = smpsim::presets::power_challenge_16();
    let v = m
        .executor()
        .execute(&vector_step_trace(&grid, &pch), 1)
        .seconds;
    let r = m
        .executor()
        .execute(&risc_step_trace(&grid, &pch), 1)
        .seconds;
    let speedup = v / r;
    assert!((8.0..=25.0).contains(&speedup), "tuning speedup {speedup}");
}

#[test]
fn exemplar_vector_code_is_unusable() {
    // Section 5: on the SPP-1000, 10 steps of a 3M case: tuned 70 min,
    // vector killed after running "the better part of a day".
    let spp = exemplar_spp1000_16();
    // A ~3M-point single-zone stand-in.
    let grid = MultiZoneGrid::chained(vec![mesh::ZoneSpec {
        name: "z".into(),
        dims: mesh::Dims::new(120, 160, 156),
    }]);
    let v10 = spp
        .executor()
        .execute(&vector_step_trace(&grid, &spp.memory), 1)
        .seconds
        * 10.0;
    let r10 = spp
        .executor()
        .execute(&risc_step_trace(&grid, &spp.memory), 1)
        .seconds
        * 10.0;
    assert!(r10 < 3.0 * 3600.0, "tuned took {} h", r10 / 3600.0);
    assert!(v10 > 6.0 * 3600.0, "vector took only {} h", v10 / 3600.0);
}

#[test]
fn parallel_bc_loses_under_load_at_scale() {
    // The Section 4 dilemma, resolved the paper's way: on a heavily
    // loaded machine (sync costs in the upper half of the paper's
    // range), parallelizing the BC face loops LOSES at high processor
    // counts; on an idle machine it ekes out a small win.
    use f3d::trace::risc_step_trace_parallel_bc;
    let sgi = origin2000_r12k_128();
    let grid = MultiZoneGrid::paper_one_million();
    let serial_bc = risc_step_trace(&grid, &sgi.memory);
    let parallel_bc = risc_step_trace_parallel_bc(&grid, &sgi.memory);

    let idle = smpsim::Machine::new(sgi.machine);
    let loaded = smpsim::Machine::new(sgi.machine.under_load(30.0));

    let idle_serial = idle.execute(&serial_bc, 124).seconds;
    let idle_parallel = idle.execute(&parallel_bc, 124).seconds;
    assert!(
        idle_parallel < idle_serial,
        "idle machine should favor parallel BC"
    );

    let loaded_serial = loaded.execute(&serial_bc, 124).seconds;
    let loaded_parallel = loaded.execute(&parallel_bc, 124).seconds;
    assert!(
        loaded_parallel > loaded_serial,
        "loaded machine should favor serial BC: {loaded_parallel} vs {loaded_serial}"
    );
}

#[test]
fn mlp_overtakes_loop_level_past_the_stair_ceiling() {
    // Section 8 (Taft): complementary techniques. Below the per-zone
    // loop extents, pure loop-level wins; past them, MLP keeps scaling.
    use f3d::trace::{injection_trace, risc_zone_traces};
    use llp::partition_processors;
    let sgi = origin2000_r12k_128();
    let grid = MultiZoneGrid::paper_one_million();
    let flat = risc_step_trace(&grid, &sgi.memory);
    let zones = risc_zone_traces(&grid, &sgi.memory);
    let tail = injection_trace(&grid, &sgi.memory);
    let weights: Vec<f64> = grid
        .zones()
        .iter()
        .map(|z| z.dims.points() as f64)
        .collect();
    let exec = sgi.executor();

    let mlp_seconds = |p: u32| {
        let part: Vec<u32> = partition_processors(p as usize, &weights)
            .into_iter()
            .map(|x| u32::try_from(x).expect("fits"))
            .collect();
        exec.execute_mlp(&zones, &part).seconds + exec.execute(&tail, 1).seconds
    };
    // At 8 processors: loop-level wins (MLP wastes procs on zone 1).
    assert!(exec.execute(&flat, 8).seconds < mlp_seconds(8));
    // At 64 (past the 48..64 plateau): MLP wins.
    assert!(mlp_seconds(64) < exec.execute(&flat, 64).seconds);
}

#[test]
fn tables_1_2_3_match_paper_exactly() {
    // The analytic tables are asserted value-by-value in perfmodel's
    // unit tests; here check the generators stay wired to the binaries'
    // expectations (row counts and a spot value each).
    assert_eq!(perfmodel::overhead::table1().len(), 4);
    assert_eq!(perfmodel::overhead::table1()[3].1[2], 12_800_000_000);
    assert_eq!(perfmodel::work_per_sync::table2().len(), 9);
    assert_eq!(perfmodel::stairstep::table3().len(), 15);
}
